"""Frequent itemset mining substrates.

Provides the pattern mining machinery the TRANSLATOR algorithms and the
baselines are built on:

* :mod:`~repro.mining.eclat` — frequent itemset mining with tidset
  intersection (Zaki et al., 1997), the search backbone the paper's exact
  rule search is modelled on.
* :mod:`~repro.mining.apriori` / :mod:`~repro.mining.fpgrowth` —
  interchangeable level-wise and pattern-growth backends (test-verified
  to agree with ECLAT).
* :mod:`~repro.mining.closed` — closed frequent itemset mining via
  prefix-preserving closure extension (LCM-style).
* :mod:`~repro.mining.twoview` — closed frequent *two-view* itemsets, the
  candidate sets consumed by TRANSLATOR-SELECT and TRANSLATOR-GREEDY, plus
  a helper for tuning ``minsup`` to a candidate budget.
* :mod:`~repro.mining.sampling` — threshold-free randomized candidate
  generation by direct cross-view pattern sampling (an extension; compared
  against mined candidates in ablation A2b).
"""

from repro.mining.apriori import apriori
from repro.mining.eclat import eclat, frequent_items
from repro.mining.fpgrowth import fpgrowth
from repro.mining.closed import closed_itemsets
from repro.mining.sampling import sample_candidates, sample_pattern
from repro.mining.twoview import (
    TwoViewCandidate,
    auto_minsup,
    two_view_candidates,
)

__all__ = [
    "apriori",
    "eclat",
    "fpgrowth",
    "frequent_items",
    "closed_itemsets",
    "sample_candidates",
    "sample_pattern",
    "TwoViewCandidate",
    "auto_minsup",
    "two_view_candidates",
]
