"""Closed frequent itemset mining.

An itemset is *closed* when no proper superset has the same support.
TRANSLATOR-SELECT and TRANSLATOR-GREEDY consume closed frequent two-view
itemsets as candidates (paper, Section 5.3), so this miner is a core
substrate of the reproduction.

The implementation uses prefix-preserving closure extension (the scheme of
LCM / CHARM descendants): every closed set is generated exactly once, from
its unique parent, so no duplicate-detection hash table over all results
is needed and memory stays linear in the recursion depth.

Like :mod:`repro.mining.eclat`, the miner runs on one of two tidset
kernels (``kernel`` parameter): packed uint64 bitsets (the ``"auto"``
default), where a closure test over all items is one vectorised
``tids & ~item_words`` against the packed item matrix, or plain Boolean
arrays (the seed representation, kept as a reference).  Supports and
closures are exact either way, so the mined itemsets are identical.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.bitset import BitMatrix, popcount
from repro.mining.eclat import _resolve_packed

__all__ = ["closed_itemsets", "closure"]

Itemset = tuple[int, ...]

_KERNELS = ("auto", "bool", "bitset")


def closure(matrix: np.ndarray, tid_mask: np.ndarray) -> np.ndarray:
    """Return the closure of a transaction set as a Boolean item mask.

    The closure is the set of items contained in *every* transaction of
    ``tid_mask``.  For an empty transaction set the closure is the full
    item universe by convention.
    """
    if not tid_mask.any():
        return np.ones(matrix.shape[1], dtype=bool)
    return matrix[tid_mask].all(axis=0)


def _closure_packed(packed: BitMatrix, tid_words: np.ndarray, support: int) -> np.ndarray:
    """Packed-kernel closure: item ``i`` is in the closure iff its
    transaction set covers ``tid_words`` (no bit of ``tids`` survives
    ``& ~item``)."""
    if support == 0:
        return np.ones(packed.n_items, dtype=bool)
    uncovered = tid_words[None, :] & ~packed.words
    return ~uncovered.any(axis=1)


def closed_itemsets(
    matrix: np.ndarray,
    minsup: int,
    max_size: int | None = None,
    items: Sequence[int] | None = None,
    max_itemsets: int | None = None,
    kernel: str = "auto",
    bits: BitMatrix | None = None,
) -> list[tuple[Itemset, int]]:
    """Mine all closed frequent itemsets of ``matrix``.

    Parameters mirror :func:`repro.mining.eclat.eclat` (including the
    ``kernel`` selector and the optional pre-packed ``bits`` injection).
    The empty itemset is reported only when it is closed (i.e. no item
    occurs in every transaction) — callers interested in rules ignore it
    anyway.

    Returns ``(itemset, support)`` pairs; itemsets are sorted index tuples.
    """
    if kernel not in _KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {_KERNELS}")
    array = np.asarray(matrix)
    if array.dtype != bool:
        array = array.astype(bool)
    if array.ndim != 2:
        raise ValueError("matrix must be 2-dimensional")
    if minsup < 1:
        raise ValueError("minsup must be at least 1 (absolute support)")
    n_transactions, n_items = array.shape
    universe = np.zeros(n_items, dtype=bool)
    universe[list(range(n_items)) if items is None else list(items)] = True
    bitset = kernel != "bool"
    packed = _resolve_packed(array, bitset, bits)

    results: list[tuple[Itemset, int]] = []

    def check_budget() -> None:
        if max_itemsets is not None and len(results) > max_itemsets:
            raise RuntimeError(
                f"closed_itemsets exceeded max_itemsets={max_itemsets}; raise minsup"
            )

    if bitset:
        item_masks = [packed.row(item) for item in range(n_items)]
    else:
        item_masks = [array[:, item] for item in range(n_items)]
    supports = array.sum(axis=0)

    def expand(closure_mask: np.ndarray, tid_mask: np.ndarray, support: int, core_item: int) -> None:
        """Recurse over prefix-preserving closure extensions of the current set."""
        itemset = tuple(np.flatnonzero(closure_mask).tolist())
        if itemset and (max_size is None or len(itemset) <= max_size):
            results.append((itemset, support))
            check_budget()
        if max_size is not None and len(itemset) >= max_size:
            return
        for item in range(core_item + 1, n_items):
            if closure_mask[item] or not universe[item]:
                continue
            if supports[item] < minsup:
                continue
            new_tids = tid_mask & item_masks[item]
            new_support = popcount(new_tids) if bitset else int(new_tids.sum())
            if new_support < minsup:
                continue
            if bitset:
                new_closure = _closure_packed(packed, new_tids, new_support) & universe
            else:
                new_closure = closure(array, new_tids) & universe
            # Prefix-preserving test: the closure must not add any item
            # smaller than the extension item that was not already present.
            prefix_items = new_closure[:item] & ~closure_mask[:item]
            if prefix_items.any():
                continue
            expand(new_closure, new_tids, new_support, item)

    if n_transactions < minsup:
        return []
    if bitset:
        all_tids = packed.support(())
        root_support = popcount(all_tids)
        root_closure = _closure_packed(packed, all_tids, root_support) & universe
    else:
        all_tids = np.ones(n_transactions, dtype=bool)
        root_support = int(all_tids.sum())
        root_closure = closure(array, all_tids) & universe
    expand(root_closure, all_tids, root_support, -1)
    return results
