"""Closed frequent itemset mining.

An itemset is *closed* when no proper superset has the same support.
TRANSLATOR-SELECT and TRANSLATOR-GREEDY consume closed frequent two-view
itemsets as candidates (paper, Section 5.3), so this miner is a core
substrate of the reproduction.

The implementation uses prefix-preserving closure extension (the scheme of
LCM / CHARM descendants): every closed set is generated exactly once, from
its unique parent, so no duplicate-detection hash table over all results
is needed and memory stays linear in the recursion depth.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["closed_itemsets", "closure"]

Itemset = tuple[int, ...]


def closure(matrix: np.ndarray, tid_mask: np.ndarray) -> np.ndarray:
    """Return the closure of a transaction set as a Boolean item mask.

    The closure is the set of items contained in *every* transaction of
    ``tid_mask``.  For an empty transaction set the closure is the full
    item universe by convention.
    """
    if not tid_mask.any():
        return np.ones(matrix.shape[1], dtype=bool)
    return matrix[tid_mask].all(axis=0)


def closed_itemsets(
    matrix: np.ndarray,
    minsup: int,
    max_size: int | None = None,
    items: Sequence[int] | None = None,
    max_itemsets: int | None = None,
) -> list[tuple[Itemset, int]]:
    """Mine all closed frequent itemsets of ``matrix``.

    Parameters mirror :func:`repro.mining.eclat.eclat`.  The empty itemset
    is reported only when it is closed (i.e. no item occurs in every
    transaction) — callers interested in rules ignore it anyway.

    Returns ``(itemset, support)`` pairs; itemsets are sorted index tuples.
    """
    array = np.asarray(matrix)
    if array.dtype != bool:
        array = array.astype(bool)
    if array.ndim != 2:
        raise ValueError("matrix must be 2-dimensional")
    if minsup < 1:
        raise ValueError("minsup must be at least 1 (absolute support)")
    n_transactions, n_items = array.shape
    universe = np.zeros(n_items, dtype=bool)
    universe[list(range(n_items)) if items is None else list(items)] = True

    results: list[tuple[Itemset, int]] = []

    def check_budget() -> None:
        if max_itemsets is not None and len(results) > max_itemsets:
            raise RuntimeError(
                f"closed_itemsets exceeded max_itemsets={max_itemsets}; raise minsup"
            )

    item_masks = [array[:, item] for item in range(n_items)]
    supports = array.sum(axis=0)

    def expand(closure_mask: np.ndarray, tid_mask: np.ndarray, core_item: int) -> None:
        """Recurse over prefix-preserving closure extensions of the current set."""
        itemset = tuple(np.flatnonzero(closure_mask).tolist())
        if itemset and (max_size is None or len(itemset) <= max_size):
            results.append((itemset, int(tid_mask.sum())))
            check_budget()
        if max_size is not None and len(itemset) >= max_size:
            return
        for item in range(core_item + 1, n_items):
            if closure_mask[item] or not universe[item]:
                continue
            if supports[item] < minsup:
                continue
            new_tids = tid_mask & item_masks[item]
            if int(new_tids.sum()) < minsup:
                continue
            new_closure = closure(array, new_tids) & universe
            # Prefix-preserving test: the closure must not add any item
            # smaller than the extension item that was not already present.
            prefix_items = new_closure[:item] & ~closure_mask[:item]
            if prefix_items.any():
                continue
            expand(new_closure, new_tids, item)

    all_tids = np.ones(n_transactions, dtype=bool)
    if n_transactions < minsup:
        return []
    root_closure = closure(array, all_tids) & universe
    expand(root_closure, all_tids, -1)
    return results
