"""ECLAT frequent itemset mining.

Depth-first search over the itemset lattice with vertical (tidset)
representation: every search node keeps the transaction set of its
itemset, and extending an itemset by one item is a single vectorised AND
(Zaki et al., "New algorithms for fast discovery of association rules",
KDD 1997).  The paper's exact rule search (Section 5.2) is built on the
same traversal; this module provides the plain frequent/condensed variants
used by the baselines and candidate generators.

Two interchangeable kernels hold the tidsets (``kernel`` parameter):

* ``"bitset"`` (the ``"auto"`` default) — packed uint64 words
  (:mod:`repro.core.bitset`); an intersection touches ``n/64`` words and a
  support count is a popcount.
* ``"bool"`` — plain Boolean arrays, the seed implementation's
  representation, kept as a differentially-testable reference.

Supports are exact integers either way, so both kernels return the same
itemsets in the same order.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.bitset import BitMatrix, popcount

__all__ = ["frequent_items", "eclat"]

Itemset = tuple[int, ...]

_KERNELS = ("auto", "bool", "bitset")


def _validate(matrix: np.ndarray, minsup: int, kernel: str) -> np.ndarray:
    if kernel not in _KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {_KERNELS}")
    array = np.asarray(matrix)
    if array.ndim != 2:
        raise ValueError("matrix must be 2-dimensional")
    if array.dtype != bool:
        array = array.astype(bool)
    if minsup < 1:
        raise ValueError("minsup must be at least 1 (absolute support)")
    return array


def _resolve_packed(
    array: np.ndarray, bitset: bool, bits: BitMatrix | None
) -> BitMatrix | None:
    """Validate injected pre-packed columns or pack fresh ones."""
    if bits is None:
        return BitMatrix.from_bool_columns(array) if bitset else None
    if not bitset:
        raise ValueError("pre-packed bits require a bitset kernel")
    if bits.n_bits != array.shape[0] or bits.n_items != array.shape[1]:
        raise ValueError(
            f"bits shape ({bits.n_items} items, {bits.n_bits} bits) does not "
            f"match matrix shape {array.shape}"
        )
    return bits


def frequent_items(matrix: np.ndarray, minsup: int) -> list[tuple[int, int]]:
    """Return ``(item, support)`` pairs of frequent single items.

    ``minsup`` is an absolute transaction count.
    """
    array = _validate(matrix, minsup, "auto")
    counts = array.sum(axis=0)
    return [
        (int(item), int(count))
        for item, count in enumerate(counts)
        if count >= minsup
    ]


def eclat(
    matrix: np.ndarray,
    minsup: int,
    max_size: int | None = None,
    items: Sequence[int] | None = None,
    max_itemsets: int | None = None,
    kernel: str = "auto",
    bits: BitMatrix | None = None,
) -> list[tuple[Itemset, int]]:
    """Mine all frequent itemsets of ``matrix``.

    Parameters
    ----------
    matrix:
        Boolean transaction-by-item matrix.
    minsup:
        Absolute minimum support (``>= 1``).
    max_size:
        Optional cap on itemset cardinality.
    items:
        Optional restriction of the item universe (column indices).
    max_itemsets:
        Optional safety cap; a ``RuntimeError`` is raised when the output
        would exceed it (guards against pattern explosion in test code).
    kernel:
        Tidset representation: ``"bitset"`` (packed words), ``"bool"``
        (plain Boolean arrays) or ``"auto"``.  The mined itemsets are
        identical either way.
    bits:
        Optional pre-packed :class:`BitMatrix` of ``matrix``'s columns,
        skipping the internal repack (the multi-view translator packs
        each view once and shares the columns across all pairs).  Must
        match ``matrix``'s shape; requires a bitset kernel.  Packing is
        deterministic, so injected bits are bit-identical to a fresh
        pack.

    Returns
    -------
    list of ``(itemset, support)`` with itemsets as sorted index tuples.
    The empty itemset is not reported.
    """
    array = _validate(matrix, minsup, kernel)
    universe = list(range(array.shape[1])) if items is None else sorted(items)
    bitset = kernel != "bool"
    packed = _resolve_packed(array, bitset, bits)
    results: list[tuple[Itemset, int]] = []

    def check_budget() -> None:
        if max_itemsets is not None and len(results) > max_itemsets:
            raise RuntimeError(
                f"eclat exceeded max_itemsets={max_itemsets}; raise minsup"
            )

    # Seed nodes: frequent single items with their tid masks.
    seeds: list[tuple[int, np.ndarray]] = []
    for item in universe:
        mask = packed.row(item) if bitset else array[:, item]
        support = popcount(mask) if bitset else int(mask.sum())
        if support >= minsup:
            seeds.append((item, mask))
            results.append(((item,), support))
            check_budget()

    def extend(prefix: Itemset, mask: np.ndarray, start: int) -> None:
        if max_size is not None and len(prefix) >= max_size:
            return
        for position in range(start, len(seeds)):
            item, item_mask = seeds[position]
            new_mask = mask & item_mask
            support = popcount(new_mask) if bitset else int(new_mask.sum())
            if support < minsup:
                continue
            itemset = prefix + (item,)
            results.append((itemset, support))
            check_budget()
            extend(itemset, new_mask, position + 1)

    for position, (item, mask) in enumerate(seeds):
        extend((item,), mask, position + 1)
    return results
