"""Apriori frequent itemset mining (Agrawal & Srikant, 1994).

The breadth-first, generate-and-test classic: level ``k+1`` candidates
are joined from frequent level-``k`` itemsets sharing a ``k-1`` prefix,
pruned by the a-priori property (all ``k``-subsets must be frequent), and
counted against the data in one vectorised pass per level.

Functionally interchangeable with :func:`repro.mining.eclat.eclat` (the
test suite asserts identical output); provided because the association
rule baseline the paper references (Agrawal et al., 1993) is historically
Apriori-based, and because the level-wise structure makes it the natural
backend when a maximum itemset size is known upfront.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["apriori"]

Itemset = tuple[int, ...]


def _join_level(frequent: list[Itemset]) -> list[Itemset]:
    """Generate k+1 candidates from frequent k-itemsets (prefix join)."""
    candidates: list[Itemset] = []
    by_prefix: dict[Itemset, list[int]] = {}
    for itemset in frequent:
        by_prefix.setdefault(itemset[:-1], []).append(itemset[-1])
    for prefix, tails in by_prefix.items():
        tails.sort()
        for first_index in range(len(tails)):
            for second_index in range(first_index + 1, len(tails)):
                candidates.append(prefix + (tails[first_index], tails[second_index]))
    return candidates


def _prune_candidates(
    candidates: list[Itemset], frequent_previous: set[Itemset]
) -> list[Itemset]:
    """A-priori pruning: every k-subset of a candidate must be frequent."""
    pruned: list[Itemset] = []
    for candidate in candidates:
        if all(
            candidate[:drop] + candidate[drop + 1 :] in frequent_previous
            for drop in range(len(candidate))
        ):
            pruned.append(candidate)
    return pruned


def apriori(
    matrix: np.ndarray,
    minsup: int,
    max_size: int | None = None,
    items: Sequence[int] | None = None,
    max_itemsets: int | None = None,
) -> list[tuple[Itemset, int]]:
    """Mine all frequent itemsets level by level.

    Parameters and output format mirror
    :func:`repro.mining.eclat.eclat`; the two must (and, per the tests,
    do) produce identical results.
    """
    array = np.asarray(matrix)
    if array.ndim != 2:
        raise ValueError("matrix must be 2-dimensional")
    if array.dtype != bool:
        array = array.astype(bool)
    if minsup < 1:
        raise ValueError("minsup must be at least 1 (absolute support)")
    universe = list(range(array.shape[1])) if items is None else sorted(items)

    results: list[tuple[Itemset, int]] = []

    def check_budget() -> None:
        if max_itemsets is not None and len(results) > max_itemsets:
            raise RuntimeError(
                f"apriori exceeded max_itemsets={max_itemsets}; raise minsup"
            )

    counts = array.sum(axis=0)
    level: list[Itemset] = []
    for item in universe:
        support = int(counts[item])
        if support >= minsup:
            level.append((item,))
            results.append(((item,), support))
            check_budget()

    size = 1
    while level and (max_size is None or size < max_size):
        size += 1
        candidates = _prune_candidates(_join_level(level), set(level))
        next_level: list[Itemset] = []
        for candidate in candidates:
            support = int(array[:, candidate].all(axis=1).sum())
            if support >= minsup:
                next_level.append(candidate)
                results.append((candidate, support))
                check_budget()
        level = next_level
    return results
