"""Two-view pattern sampling: a randomized candidate generator.

TRANSLATOR-SELECT and TRANSLATOR-GREEDY consume a candidate set of
cross-view itemsets.  The paper mines *closed frequent two-view itemsets*,
which requires choosing ``minsup`` and can explode on dense data.  This
module provides an alternative, threshold-free candidate source based on
**direct pattern sampling** in the spirit of Boley et al. (KDD 2011):
itemsets are drawn with probability proportional to a frequency-based
utility, without materialising the pattern space.

The sampler draws cross-view patterns in three steps:

1. sample a *seed transaction* ``t`` with probability proportional to a
   transaction weight (by default ``2^|t_L|-1`` times ``2^|t_R|-1``
   capped, i.e. proportional to the number of non-empty cross-view
   sub-patterns it contains, which realises area-proportional sampling of
   the pattern lattice restricted to spanning itemsets);
2. sample a non-empty random subset of ``t_L`` and of ``t_R``;
3. optionally *intersect* with a second transaction drawn from the
   support of the current pattern, which biases samples towards patterns
   with support at least two and tends to produce more general patterns.

Duplicates are merged and supports computed exactly, so the output is
directly usable wherever :func:`repro.mining.twoview.two_view_candidates`
output is (both produce :class:`TwoViewCandidate` lists).  Ablation
benchmark A2b compares sampled versus mined candidates as SELECT input.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import TwoViewDataset
from repro.mining.twoview import TwoViewCandidate

__all__ = ["sample_candidates", "sample_pattern"]

# Cap on the exponent of per-transaction sub-pattern counts: weights are
# only ever used relatively, and 2^60 already dwarfs any realistic
# transaction mix without overflowing float64.
_MAX_EXPONENT = 60


def _transaction_weights(dataset: TwoViewDataset) -> np.ndarray:
    """Weight of each transaction = number of spanning sub-patterns.

    A transaction with ``a`` left items and ``b`` right items contains
    ``(2^a - 1) * (2^b - 1)`` spanning (non-empty on both sides)
    sub-patterns.  Exponents are capped to keep the weights finite; the
    cap only matters for transactions with more than ``_MAX_EXPONENT``
    items per view, where relative differences are astronomically large
    anyway.
    """
    left_sizes = dataset.left.sum(axis=1).astype(float)
    right_sizes = dataset.right.sum(axis=1).astype(float)
    left_counts = np.exp2(np.minimum(left_sizes, _MAX_EXPONENT)) - 1.0
    right_counts = np.exp2(np.minimum(right_sizes, _MAX_EXPONENT)) - 1.0
    return left_counts * right_counts


def _sample_nonempty_subset(
    items: np.ndarray, rng: np.random.Generator
) -> tuple[int, ...]:
    """Uniformly sample a non-empty subset of ``items`` (column indices)."""
    while True:
        mask = rng.random(items.size) < 0.5
        if mask.any():
            return tuple(int(item) for item in items[mask])


def sample_pattern(
    dataset: TwoViewDataset,
    rng: np.random.Generator,
    weights: np.ndarray | None = None,
    generalise: bool = True,
) -> tuple[tuple[int, ...], tuple[int, ...]] | None:
    """Draw one cross-view pattern ``(lhs, rhs)``; ``None`` if impossible.

    ``weights`` optionally passes precomputed transaction weights (reused
    across draws by :func:`sample_candidates`).  With ``generalise``
    enabled, the subset drawn from the seed transaction is intersected
    with a second transaction sampled from the subset's support, which
    skews the distribution toward patterns of support >= 2 — the ones a
    translation rule can actually generalise over.
    """
    if weights is None:
        weights = _transaction_weights(dataset)
    total = float(weights.sum())
    if total <= 0:
        return None
    row = int(rng.choice(dataset.n_transactions, p=weights / total))
    left_items = np.flatnonzero(dataset.left[row])
    right_items = np.flatnonzero(dataset.right[row])
    if left_items.size == 0 or right_items.size == 0:
        return None
    lhs = _sample_nonempty_subset(left_items, rng)
    rhs = _sample_nonempty_subset(right_items, rng)
    if generalise:
        support = np.flatnonzero(dataset.joint_support_mask(lhs, rhs))
        other = int(rng.choice(support))
        if other != row:
            lhs_mask = dataset.left[other, list(lhs)]
            rhs_mask = dataset.right[other, list(rhs)]
            narrowed_lhs = tuple(item for item, keep in zip(lhs, lhs_mask) if keep)
            narrowed_rhs = tuple(item for item, keep in zip(rhs, rhs_mask) if keep)
            if narrowed_lhs and narrowed_rhs:
                lhs, rhs = narrowed_lhs, narrowed_rhs
    return lhs, rhs


def sample_candidates(
    dataset: TwoViewDataset,
    n_samples: int,
    rng: np.random.Generator | int | None = None,
    generalise: bool = True,
    min_support: int = 1,
) -> list[TwoViewCandidate]:
    """Sample a candidate set of distinct cross-view itemsets.

    Parameters
    ----------
    dataset:
        The two-view dataset to sample from.
    n_samples:
        Number of draws.  The returned list is usually shorter: duplicate
        draws are merged and patterns below ``min_support`` dropped.
    rng:
        Seed or generator for reproducible sampling.
    generalise:
        Apply the two-transaction intersection step (see module docs).
    min_support:
        Discard sampled patterns with fewer supporting transactions.

    Returns
    -------
    Distinct candidates sorted by descending support then itemsets, the
    same contract as :func:`repro.mining.twoview.two_view_candidates`.
    """
    if n_samples < 0:
        raise ValueError("n_samples must be non-negative")
    if min_support < 1:
        raise ValueError("min_support must be at least 1")
    generator = np.random.default_rng(rng)
    weights = _transaction_weights(dataset)
    seen: dict[tuple[tuple[int, ...], tuple[int, ...]], int] = {}
    for __ in range(n_samples):
        pattern = sample_pattern(dataset, generator, weights=weights, generalise=generalise)
        if pattern is None:
            continue
        lhs, rhs = (tuple(sorted(pattern[0])), tuple(sorted(pattern[1])))
        if (lhs, rhs) in seen:
            continue
        support = int(dataset.joint_support_mask(lhs, rhs).sum())
        if support >= min_support:
            seen[(lhs, rhs)] = support
    candidates = [
        TwoViewCandidate(lhs, rhs, support) for (lhs, rhs), support in seen.items()
    ]
    candidates.sort(key=lambda candidate: (-candidate.support, candidate.lhs, candidate.rhs))
    return candidates
