"""Two-view candidate itemset mining.

TRANSLATOR-SELECT and TRANSLATOR-GREEDY draw their rules from *two-view
frequent itemsets*: itemsets ``Z`` with ``|supp(Z)| >= minsup``,
``Z ∩ I_L ≠ ∅`` and ``Z ∩ I_R ≠ ∅`` (paper, Section 5.3).  The paper uses
the closed variant to keep candidate sets manageable and tunes ``minsup``
per dataset so the number of candidates lands between 10K and 200K
(Section 6.1); :func:`auto_minsup` automates that tuning.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.bitset import BitMatrix
from repro.data.dataset import TwoViewDataset
from repro.mining.closed import closed_itemsets
from repro.mining.eclat import eclat

__all__ = ["TwoViewCandidate", "joint_bits", "two_view_candidates", "auto_minsup"]


@dataclasses.dataclass(frozen=True)
class TwoViewCandidate:
    """A cross-view itemset split into its two view projections.

    ``lhs`` holds left-view column indices, ``rhs`` right-view column
    indices (both local to their view), and ``support`` the number of
    transactions containing the full itemset across both views.
    """

    lhs: tuple[int, ...]
    rhs: tuple[int, ...]
    support: int

    @property
    def size(self) -> int:
        """Total number of items."""
        return len(self.lhs) + len(self.rhs)


def joint_bits(left_bits: BitMatrix, right_bits: BitMatrix) -> BitMatrix:
    """Stitch per-view packed columns into the joint item matrix.

    Packing is column-wise, so concatenating the word rows of two views
    packed over the same transactions is bit-identical to packing
    ``dataset.joined()`` from scratch — this is what lets the multi-view
    translator pack each view once and reuse the columns for every pair.
    """
    if left_bits.n_bits != right_bits.n_bits:
        raise ValueError(
            f"views pack different transaction counts: "
            f"{left_bits.n_bits} != {right_bits.n_bits}"
        )
    return BitMatrix(
        np.concatenate([left_bits.words, right_bits.words], axis=0),
        left_bits.n_bits,
    )


def two_view_candidates(
    dataset: TwoViewDataset,
    minsup: int,
    closed: bool = True,
    max_size: int | None = None,
    max_candidates: int | None = None,
    kernel: str = "auto",
    bits: BitMatrix | None = None,
) -> list[TwoViewCandidate]:
    """Mine frequent two-view itemsets of ``dataset``.

    Parameters
    ----------
    dataset:
        The two-view dataset.
    minsup:
        Absolute minimum support.
    closed:
        Mine closed itemsets (the paper's choice) or all frequent itemsets
        (used by ablation A2).
    max_size:
        Optional cap on total itemset cardinality.
    max_candidates:
        Safety cap forwarded to the underlying miner; note it bounds the
        number of *mined* itemsets, of which only the spanning ones are
        returned.
    kernel:
        Tidset kernel forwarded to the miner (``"auto"``/``"bitset"``/
        ``"bool"``); the candidates are identical either way.
    bits:
        Optional pre-packed columns of the *joint* matrix (left items
        first; see :func:`joint_bits`), forwarded to the miner so it
        skips its internal repack.  Candidates are bit-identical with or
        without the injection.

    Returns
    -------
    Candidates sorted by descending support, then ascending itemset.
    """
    joint, __ = dataset.joined()
    miner = closed_itemsets if closed else eclat
    mined = miner(
        joint,
        minsup,
        max_size=max_size,
        max_itemsets=max_candidates,
        kernel=kernel,
        bits=bits,
    )
    n_left = dataset.n_left
    candidates: list[TwoViewCandidate] = []
    for itemset, support in mined:
        lhs = tuple(item for item in itemset if item < n_left)
        rhs = tuple(item - n_left for item in itemset if item >= n_left)
        if lhs and rhs:
            candidates.append(TwoViewCandidate(lhs, rhs, support))
    candidates.sort(key=lambda candidate: (-candidate.support, candidate.lhs, candidate.rhs))
    return candidates


def auto_minsup(
    dataset: TwoViewDataset,
    target_candidates: int = 10_000,
    closed: bool = True,
    max_size: int | None = None,
    start_fraction: float = 0.5,
    kernel: str = "auto",
    bits: BitMatrix | None = None,
) -> tuple[int, list[TwoViewCandidate]]:
    """Find a ``minsup`` yielding at most ``target_candidates`` candidates.

    Mirrors the paper's per-dataset tuning ("we fix minsup such that the
    number of candidates remains manageable").  Starting from
    ``start_fraction * |D|``, the threshold is halved while the candidate
    count stays under the budget, and the last threshold still within
    budget is returned together with its candidates.  The search never goes
    below ``minsup = 1``.
    """
    if target_candidates < 1:
        raise ValueError("target_candidates must be positive")
    n = dataset.n_transactions
    minsup = max(1, int(round(start_fraction * n)))
    best: tuple[int, list[TwoViewCandidate]] | None = None
    while True:
        try:
            candidates = two_view_candidates(
                dataset,
                minsup,
                closed=closed,
                max_size=max_size,
                max_candidates=max(10 * target_candidates, 100_000),
                kernel=kernel,
                bits=bits,
            )
        except RuntimeError:
            # Mining itself exploded: stop lowering the threshold.
            break
        if len(candidates) <= target_candidates:
            best = (minsup, candidates)
        else:
            break
        if minsup == 1:
            break
        minsup = max(1, minsup // 2)
    if best is None:
        # Even the highest threshold exceeded the budget: mine at the
        # starting threshold and truncate to the most supported candidates.
        minsup = max(1, int(round(start_fraction * n)))
        candidates = two_view_candidates(
            dataset, minsup, closed=closed, max_size=max_size, kernel=kernel, bits=bits
        )
        return minsup, candidates[:target_candidates]
    return best
