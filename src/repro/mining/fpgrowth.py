"""FP-Growth frequent itemset mining (Han, Pei & Yin, 2000).

Pattern-growth mining without candidate generation: transactions are
compressed into an FP-tree (a prefix tree over items sorted by descending
frequency, with per-item node chains), and frequent itemsets are grown by
recursively building *conditional* FP-trees for each item's prefix paths.

Provided as the third interchangeable mining backend next to ECLAT and
Apriori (the test suite asserts all three agree); FP-Growth is typically
the fastest of the three on dense data with long patterns, which is
exactly the regime of the paper's denser datasets (House, Tictactoe).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

__all__ = ["fpgrowth"]

Itemset = tuple[int, ...]


@dataclasses.dataclass
class _Node:
    """One FP-tree node: an item with a count, parent link and children."""

    item: int
    count: int
    parent: "_Node | None"
    children: dict[int, "_Node"] = dataclasses.field(default_factory=dict)


class _FPTree:
    """An FP-tree with its header table (item -> list of nodes)."""

    def __init__(self) -> None:
        self.root = _Node(item=-1, count=0, parent=None)
        self.header: dict[int, list[_Node]] = {}

    def insert(self, items: Sequence[int], count: int) -> None:
        """Insert an ordered transaction with multiplicity ``count``."""
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _Node(item=item, count=0, parent=node)
                node.children[item] = child
                self.header.setdefault(item, []).append(child)
            child.count += count
            node = child

    def prefix_paths(self, item: int) -> list[tuple[list[int], int]]:
        """Conditional pattern base of ``item``: (path, count) pairs."""
        paths: list[tuple[list[int], int]] = []
        for node in self.header.get(item, []):
            path: list[int] = []
            ancestor = node.parent
            while ancestor is not None and ancestor.item != -1:
                path.append(ancestor.item)
                ancestor = ancestor.parent
            path.reverse()
            if path:
                paths.append((path, node.count))
        return paths

    def item_counts(self) -> dict[int, int]:
        """Total count per item over all node chains."""
        return {
            item: sum(node.count for node in nodes)
            for item, nodes in self.header.items()
        }


def _build_tree(
    transactions: list[tuple[list[int], int]],
    counts: dict[int, int],
    minsup: int,
) -> _FPTree:
    """Build an FP-tree keeping only frequent items, ordered by frequency."""
    frequent = {item for item, count in counts.items() if count >= minsup}
    order = {
        item: rank
        for rank, item in enumerate(
            sorted(frequent, key=lambda item: (-counts[item], item))
        )
    }
    tree = _FPTree()
    for items, count in transactions:
        kept = sorted(
            (item for item in items if item in frequent),
            key=lambda item: order[item],
        )
        if kept:
            tree.insert(kept, count)
    return tree


def _mine_tree(
    tree: _FPTree,
    suffix: Itemset,
    minsup: int,
    max_size: int | None,
    results: list[tuple[Itemset, int]],
    max_itemsets: int | None,
) -> None:
    counts = tree.item_counts()
    for item in sorted(counts, key=lambda item: (counts[item], -item)):
        support = counts[item]
        if support < minsup:
            continue
        itemset = tuple(sorted(suffix + (item,)))
        results.append((itemset, support))
        if max_itemsets is not None and len(results) > max_itemsets:
            raise RuntimeError(
                f"fpgrowth exceeded max_itemsets={max_itemsets}; raise minsup"
            )
        if max_size is not None and len(itemset) >= max_size:
            continue
        conditional_base = tree.prefix_paths(item)
        if not conditional_base:
            continue
        conditional_counts: dict[int, int] = {}
        for path, count in conditional_base:
            for path_item in path:
                conditional_counts[path_item] = (
                    conditional_counts.get(path_item, 0) + count
                )
        conditional_tree = _build_tree(conditional_base, conditional_counts, minsup)
        _mine_tree(
            conditional_tree, itemset, minsup, max_size, results, max_itemsets
        )


def fpgrowth(
    matrix: np.ndarray,
    minsup: int,
    max_size: int | None = None,
    items: Sequence[int] | None = None,
    max_itemsets: int | None = None,
) -> list[tuple[Itemset, int]]:
    """Mine all frequent itemsets with pattern growth.

    Parameters and output mirror :func:`repro.mining.eclat.eclat`; results
    are returned sorted by itemset for deterministic comparisons.
    """
    array = np.asarray(matrix)
    if array.ndim != 2:
        raise ValueError("matrix must be 2-dimensional")
    if array.dtype != bool:
        array = array.astype(bool)
    if minsup < 1:
        raise ValueError("minsup must be at least 1 (absolute support)")
    universe = set(range(array.shape[1])) if items is None else set(items)

    transactions: list[tuple[list[int], int]] = []
    counts: dict[int, int] = {}
    for row in array:
        present = [int(item) for item in np.flatnonzero(row) if item in universe]
        if present:
            transactions.append((present, 1))
            for item in present:
                counts[item] = counts.get(item, 0) + 1

    tree = _build_tree(transactions, counts, minsup)
    results: list[tuple[Itemset, int]] = []
    _mine_tree(tree, (), minsup, max_size, results, max_itemsets)
    results.sort()
    return results
