"""Out-of-core packed column store (``RPROCOL1``).

The exact engine packs each item column into 64-bit transaction words
and runs fused AND+popcount over them — but it holds every word in RAM,
which caps it at benchmark scale.  This module moves the packed columns
to disk in a binary column file that is written once by an *ingest*
step and then streamed **word-block by word-block** through the same
numpy / native popcount kernels, so a discovery query's peak RSS is
O(block), not O(rows).

Layout (one file, magic ``RPROCOL1``, version 1) — the conventions are
shared with the serving sidecar (``RPROBIN1`` in
:mod:`repro.serve.binfmt`): a fixed prelude, a JSON header, then
64-byte-aligned binary payload::

    [ 0:48)      prelude  <8sII32s: magic, version, header length H,
                 SHA-256 of the header bytes
    [48:48+H)    JSON header (utf-8)
    [P:...)      payload, P = align64(48 + H); every offset in the
                 header is relative to P

The payload is **block-major**: block ``b`` covers transactions
``[b*64*block_words, (b+1)*64*block_words)`` and stores the left view's
``(n_left, block_words)`` uint64 words followed by the right view's
``(n_right, block_words)`` words, contiguously, each block start
64-byte aligned.  A scan touches one block at a time; a block is the
unit of IO, of kernel dispatch and of integrity checking — the header
carries a SHA-256 digest *per block* (and per sketch section), so
verification cost is also O(block) and a truncated or bit-flipped file
raises :class:`~repro.serve.artifact.ArtifactCorruptError` before a
single damaged word reaches a kernel.

The header additionally stores the **exact** per-column supports and
the engine's fixed-point scale (``quant_bits``, derived with the same
magnitude bound :class:`repro.core.search.ExactRuleSearch` uses), which
is what lets :mod:`repro.corpus.discover` compute MDL gains over the
store that are bit-identical to the in-RAM exact engine.  Ingest is
two-phase for exactly this reason: blocks are streamed to a temporary
payload first while supports and sketches accumulate, then — once the
final counts fix the code lengths — the temporary payload is re-read
block by block to compute the per-transaction bound maxima the scale
depends on, and the finished file is composed atomically
(temp + fsync + rename).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import struct
import tempfile
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro import obs as _obs

from repro.core.bitset import BitMatrix, and_popcount_rows, n_words_for
from repro.data.dataset import TwoViewDataset
from repro.resilience.faults import fault_point
from repro.serve.artifact import ArtifactCorruptError, ArtifactError, _fsync_directory

from .sketch import ColumnSketches, SketchBuilder

__all__ = [
    "STORE_MAGIC",
    "STORE_VERSION",
    "ColumnStore",
    "ingest_chunks",
    "ingest_dataset",
]

#: Magic bytes identifying a packed column store file.
STORE_MAGIC = b"RPROCOL1"
#: Current store format version.
STORE_VERSION = 1

_PRELUDE = struct.Struct("<8sII32s")
_ALIGN = 64
_WORD_BYTES = 8
_MAX_DIM = 100_000_000
_MAX_HEADER = 256 * 1024 * 1024
# Mirrors the engine's fixed-point scale clamp (search._MAX_FRACTION_BITS).
_MAX_FRACTION_BITS = 42
_SECTION_DTYPES = {"uint64": np.uint64, "int64": np.int64}


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _corrupt(path: Path, reason: str) -> ArtifactCorruptError:
    return ArtifactCorruptError(f"column store {path} is corrupt: {reason}")


def _header_int(meta: dict, field: str, path: Path, minimum: int = 0) -> int:
    value = meta.get(field)
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise _corrupt(path, f"header field {field!r} is invalid: {value!r}")
    if value > max(_MAX_DIM, _MAX_HEADER):
        raise _corrupt(path, f"header field {field!r} is implausibly large")
    return value


def _weights_from_counts(counts: np.ndarray, n_transactions: int) -> np.ndarray:
    """Per-item code lengths from exact supports, zero for empty columns.

    Bit-for-bit the engine's empty-state weights: the same
    ``-log2(count / n)`` :class:`repro.core.encoding.CodeLengthModel`
    computes, with the infinite lengths of zero-support columns zeroed
    the way :class:`repro.core.state.CoverState` zeroes them.
    """
    counts = np.asarray(counts, dtype=np.int64).astype(float)
    with np.errstate(divide="ignore"):
        lengths = -np.log2(counts / float(n_transactions))
    return np.where(np.isfinite(lengths), lengths, 0.0)


def quantization_bits(
    tub_max: float, weights_left: np.ndarray, weights_right: np.ndarray, n: int
) -> int:
    """The engine's fixed-point fraction-bit count for an empty cover state.

    Reproduces ``repro.core.search._Quantized``: the scale is chosen so
    the largest possible intermediate sum stays below ``2^51`` where
    float64 integer arithmetic is exact.  ``tub_max`` is the maximum
    per-transaction code-length bound of the left view plus that of the
    right view.
    """
    magnitude = (n + 1.0) * (
        tub_max + float(weights_left.sum()) + float(weights_right.sum()) + 4.0
    )
    return max(0, min(_MAX_FRACTION_BITS, 51 - math.frexp(magnitude)[1]))


class _BlockAccumulator:
    """Packs buffered Boolean rows into aligned word blocks on a temp file."""

    def __init__(self, stream, n_left: int, n_right: int, block_words: int) -> None:
        self.stream = stream
        self.n_left = n_left
        self.n_right = n_right
        self.block_words = block_words
        self.rows_per_block = 64 * block_words
        self.block_nbytes = (n_left + n_right) * block_words * _WORD_BYTES
        self.blocks: list[dict] = []
        self.offset = 0  # relative payload offset of the next byte

    def _pad_to(self, target: int) -> None:
        if target > self.offset:
            self.stream.write(b"\0" * (target - self.offset))
            self.offset = target

    def add_block(self, left_rows: np.ndarray, right_rows: np.ndarray) -> None:
        rows = left_rows.shape[0]
        words = np.zeros(
            (self.n_left + self.n_right, self.block_words), dtype=np.uint64
        )
        packed_width = n_words_for(rows)
        words[: self.n_left, :packed_width] = BitMatrix.from_bool_columns(
            left_rows
        ).words
        words[self.n_left :, :packed_width] = BitMatrix.from_bool_columns(
            right_rows
        ).words
        raw = words.tobytes()
        start = _align(self.offset)
        self._pad_to(start)
        self.stream.write(raw)
        self.offset = start + len(raw)
        self.blocks.append(
            {
                "offset": start,
                "nbytes": len(raw),
                "digest": hashlib.sha256(raw).hexdigest(),
            }
        )


def ingest_chunks(
    chunks: Iterable[tuple[np.ndarray, np.ndarray]],
    path: str | Path,
    *,
    n_transactions: int,
    n_left: int,
    n_right: int,
    left_names: list[str] | None = None,
    right_names: list[str] | None = None,
    name: str = "corpus",
    block_words: int = 128,
    sample_size: int = 2048,
    n_hashes: int = 8,
    seed: int = 0,
) -> str:
    """Stream ``(left, right)`` Boolean row chunks into a column store.

    ``chunks`` yields aligned pairs of ``(rows, n_left)`` / ``(rows,
    n_right)`` Boolean arrays covering the corpus top to bottom; the
    full corpus is never materialised — peak memory is O(chunk +
    block).  Two phases: chunks are packed into 64-byte-aligned word
    blocks on a temporary payload file while exact supports, the row
    sample and minhash signatures accumulate; the temporary payload is
    then re-read block by block to compute the per-transaction bound
    maxima that fix ``quant_bits`` (the engine-identical fixed-point
    scale), and the final file is written atomically.  Returns the
    header's SHA-256 hex digest.

    Example::

        >>> import numpy as np, tempfile, os
        >>> from repro.corpus import ColumnStore, ingest_chunks
        >>> rng = np.random.default_rng(0)
        >>> def chunks():
        ...     for _ in range(4):
        ...         yield rng.random((25, 3)) < 0.4, rng.random((25, 2)) < 0.4
        >>> path = os.path.join(tempfile.mkdtemp(), "corpus.col")
        >>> _ = ingest_chunks(chunks(), path, n_transactions=100,
        ...                   n_left=3, n_right=2, block_words=1)
        >>> ColumnStore(path).n_blocks
        2
    """
    path = Path(path)
    if n_transactions <= 0 or n_left <= 0 or n_right <= 0:
        raise ValueError("n_transactions, n_left and n_right must be positive")
    if max(n_transactions, n_left, n_right) > _MAX_DIM:
        raise ValueError("corpus dimensions exceed the format limit")
    if block_words <= 0:
        raise ValueError("block_words must be positive")
    if n_transactions >= 2**31:
        raise ValueError("minhash sketches require n_transactions < 2**31")

    left_names = list(left_names or (f"L{i}" for i in range(n_left)))
    right_names = list(right_names or (f"R{i}" for i in range(n_right)))
    if len(left_names) != n_left or len(right_names) != n_right:
        raise ValueError("item name lists do not match the view widths")

    rows_per_block = 64 * block_words
    builder = SketchBuilder(
        n_transactions=n_transactions,
        n_left=n_left,
        n_right=n_right,
        sample_size=sample_size,
        n_hashes=n_hashes,
        seed=seed,
        rows_per_block=rows_per_block,
    )
    counts_left = np.zeros(n_left, dtype=np.int64)
    counts_right = np.zeros(n_right, dtype=np.int64)

    path.parent.mkdir(parents=True, exist_ok=True)
    payload_fd, payload_tmp = tempfile.mkstemp(
        dir=path.parent, prefix=".ingest-", suffix=".payload"
    )
    final_tmp: str | None = None
    try:
        with os.fdopen(payload_fd, "wb") as payload_stream:
            acc = _BlockAccumulator(payload_stream, n_left, n_right, block_words)
            pending_left: list[np.ndarray] = []
            pending_right: list[np.ndarray] = []
            pending_rows = 0
            seen_rows = 0

            def flush(final: bool) -> None:
                nonlocal pending_left, pending_right, pending_rows
                while pending_rows >= rows_per_block or (final and pending_rows):
                    left = (
                        pending_left[0]
                        if len(pending_left) == 1
                        else np.concatenate(pending_left)
                    )
                    right = (
                        pending_right[0]
                        if len(pending_right) == 1
                        else np.concatenate(pending_right)
                    )
                    take = min(rows_per_block, pending_rows)
                    acc.add_block(left[:take], right[:take])
                    pending_left = [left[take:]] if take < pending_rows else []
                    pending_right = [right[take:]] if take < pending_rows else []
                    pending_rows -= take

            for left_chunk, right_chunk in chunks:
                left_chunk = np.ascontiguousarray(left_chunk, dtype=bool)
                right_chunk = np.ascontiguousarray(right_chunk, dtype=bool)
                if (
                    left_chunk.ndim != 2
                    or right_chunk.ndim != 2
                    or left_chunk.shape[0] != right_chunk.shape[0]
                    or left_chunk.shape[1] != n_left
                    or right_chunk.shape[1] != n_right
                ):
                    raise ValueError(
                        "chunk shapes must be (rows, n_left) / (rows, n_right) "
                        "with matching row counts"
                    )
                rows = left_chunk.shape[0]
                if seen_rows + rows > n_transactions:
                    raise ValueError("chunks supply more rows than n_transactions")
                counts_left += left_chunk.sum(axis=0)
                counts_right += right_chunk.sum(axis=0)
                builder.update(seen_rows, left_chunk, right_chunk)
                seen_rows += rows
                pending_left.append(left_chunk)
                pending_right.append(right_chunk)
                pending_rows += rows
                flush(final=False)
            flush(final=True)
            if seen_rows != n_transactions:
                raise ValueError(
                    f"chunks supplied {seen_rows} rows, expected {n_transactions}"
                )
            payload_stream.flush()

        # Phase 2: the counts are final, so the code lengths are final —
        # re-read the packed blocks to compute the per-transaction bound
        # maxima the engine's fixed-point scale depends on.
        weights_left = _weights_from_counts(counts_left, n_transactions)
        weights_right = _weights_from_counts(counts_right, n_transactions)
        tub_max = 0.0
        tub_max_left = 0.0
        tub_max_right = 0.0
        block_nbytes = acc.block_nbytes
        with open(payload_tmp, "rb") as payload_stream:
            for index, entry in enumerate(acc.blocks):
                payload_stream.seek(entry["offset"])
                raw = payload_stream.read(block_nbytes)
                words = np.frombuffer(raw, dtype=np.uint64).reshape(
                    n_left + n_right, block_words
                )
                lo = index * rows_per_block
                rows = min(rows_per_block, n_transactions - lo)
                left_bool = BitMatrix(
                    np.ascontiguousarray(words[:n_left, : n_words_for(rows)]), rows
                ).to_bool_columns()
                right_bool = BitMatrix(
                    np.ascontiguousarray(words[n_left:, : n_words_for(rows)]), rows
                ).to_bool_columns()
                tub_left = left_bool @ weights_left
                tub_right = right_bool @ weights_right
                if tub_left.size:
                    tub_max_left = max(tub_max_left, float(tub_left.max()))
                    tub_max_right = max(tub_max_right, float(tub_right.max()))
        tub_max = tub_max_left + tub_max_right
        bits = quantization_bits(tub_max, weights_left, weights_right, n_transactions)

        sketches = builder.finish()
        sections: list[dict] = []
        section_payload: list[bytes] = []
        offset = _align(acc.offset)
        section_base_pad = offset - acc.offset
        for sec_name, array in sketches.sections():
            raw = np.ascontiguousarray(array).tobytes()
            start = _align(offset)
            if start > offset:
                section_payload.append(b"\0" * (start - offset))
                offset = start
            section_payload.append(raw)
            sections.append(
                {
                    "name": sec_name,
                    "dtype": str(array.dtype),
                    "shape": list(array.shape),
                    "offset": start,
                    "nbytes": len(raw),
                    "digest": hashlib.sha256(raw).hexdigest(),
                }
            )
            offset += len(raw)
        payload_nbytes = offset

        header = {
            "format": STORE_MAGIC.decode("ascii"),
            "format_version": STORE_VERSION,
            "name": name,
            "n_transactions": n_transactions,
            "n_left": n_left,
            "n_right": n_right,
            "left_names": left_names,
            "right_names": right_names,
            "block_words": block_words,
            "rows_per_block": rows_per_block,
            "n_blocks": len(acc.blocks),
            "block_nbytes": block_nbytes,
            "payload_nbytes": payload_nbytes,
            "counts_left": [int(c) for c in counts_left],
            "counts_right": [int(c) for c in counts_right],
            "tub_max_left": tub_max_left,
            "tub_max_right": tub_max_right,
            "quant_bits": bits,
            "sketch": sketches.params(),
            "blocks": acc.blocks,
            "sections": sections,
        }
        encoded = json.dumps(header, sort_keys=True).encode("utf-8")
        digest = hashlib.sha256(encoded).hexdigest()
        prelude = _PRELUDE.pack(
            STORE_MAGIC, STORE_VERSION, len(encoded), bytes.fromhex(digest)
        )
        payload_start = _align(_PRELUDE.size + len(encoded))
        head = prelude + encoded
        head += b"\0" * (payload_start - len(head))
        head = bytes(fault_point("corpus.store.bytes", data=head))

        fd, final_tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".ingest-", suffix=".col"
        )
        with os.fdopen(fd, "wb") as out:
            out.write(head)
            with open(payload_tmp, "rb") as payload_stream:
                while True:
                    piece = payload_stream.read(1 << 20)
                    if not piece:
                        break
                    out.write(piece)
            if section_base_pad:
                out.write(b"\0" * section_base_pad)
            for piece in section_payload:
                out.write(piece)
            out.flush()
            os.fsync(out.fileno())
        os.replace(final_tmp, path)
        final_tmp = None
        _fsync_directory(path.parent)
        return digest
    finally:
        for leftover in (payload_tmp, final_tmp):
            if leftover is not None and os.path.exists(leftover):
                os.unlink(leftover)


def ingest_dataset(
    dataset: TwoViewDataset,
    path: str | Path,
    *,
    chunk_rows: int = 8192,
    **kwargs,
) -> str:
    """Ingest an in-memory :class:`TwoViewDataset` into a column store.

    Convenience wrapper over :func:`ingest_chunks` — slices the dataset
    into ``chunk_rows``-row chunks so the write path is identical to a
    true streaming ingest.  Keyword arguments are forwarded (block
    size, sketch parameters, ...).  Returns the header digest.
    """

    def slices() -> Iterator[tuple[np.ndarray, np.ndarray]]:
        for lo in range(0, dataset.n_transactions, chunk_rows):
            hi = min(lo + chunk_rows, dataset.n_transactions)
            yield dataset.left[lo:hi], dataset.right[lo:hi]

    kwargs.setdefault("name", getattr(dataset, "name", "corpus") or "corpus")
    kwargs.setdefault("left_names", list(dataset.left_names))
    kwargs.setdefault("right_names", list(dataset.right_names))
    return ingest_chunks(
        slices(),
        path,
        n_transactions=dataset.n_transactions,
        n_left=dataset.n_left,
        n_right=dataset.n_right,
        **kwargs,
    )


class ColumnStore:
    """Read side of an ``RPROCOL1`` packed column file.

    Opening validates the prelude and the header's SHA-256 and checks
    the file length against the header's payload size, so truncation is
    caught before any scan.  Block reads (:meth:`read_block`,
    :meth:`iter_blocks`) verify each block's own digest, so a bit-flip
    anywhere in the payload raises
    :class:`~repro.serve.artifact.ArtifactCorruptError` rather than
    mis-decoding — and the check costs O(block), like the read itself.

    The store is the out-of-core counterpart of
    :class:`repro.core.search.SearchCache`: :meth:`pair_overlaps`
    streams exact co-occurrence counts through the fused popcount
    kernels one block at a time, and :meth:`left_bits` /
    :meth:`right_bits` can materialise the packed columns for an
    in-RAM :meth:`repro.core.TranslatorExact.fit` when the corpus fits.

    Example::

        >>> from repro import SyntheticSpec, generate_planted
        >>> from repro.corpus import ColumnStore, ingest_dataset
        >>> import tempfile, os
        >>> data, _ = generate_planted(SyntheticSpec(n_transactions=200))
        >>> path = os.path.join(tempfile.mkdtemp(), "demo.col")
        >>> _ = ingest_dataset(data, path, block_words=1)
        >>> store = ColumnStore(path)
        >>> (store.n_transactions, store.n_blocks)
        (200, 4)
    """

    def __init__(self, path: str | Path, backend: str = "auto") -> None:
        self.path = Path(path)
        self.backend = backend
        fault_point("corpus.store.open")
        try:
            self._file = open(self.path, "rb")
        except OSError as error:
            raise ArtifactError(f"cannot open column store {self.path}: {error}")
        try:
            self._parse_header()
        except Exception:
            self._file.close()
            raise

    # -- header ---------------------------------------------------------
    def _parse_header(self) -> None:
        path = self.path
        prelude = self._file.read(_PRELUDE.size)
        if len(prelude) != _PRELUDE.size:
            raise _corrupt(path, "file shorter than the prelude")
        magic, version, header_len, digest = _PRELUDE.unpack(prelude)
        if magic != STORE_MAGIC:
            raise _corrupt(path, f"bad magic {magic!r}")
        if version != STORE_VERSION:
            raise ArtifactError(
                f"column store {path} has unsupported version {version}"
            )
        if not 0 < header_len <= _MAX_HEADER:
            raise _corrupt(path, f"implausible header length {header_len}")
        encoded = self._file.read(header_len)
        if len(encoded) != header_len:
            raise _corrupt(path, "truncated header")
        if hashlib.sha256(encoded).digest() != digest:
            raise _corrupt(path, "header hash mismatch")
        try:
            meta = json.loads(encoded.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _corrupt(path, f"undecodable header ({error})")
        if meta.get("format") != STORE_MAGIC.decode("ascii"):
            raise _corrupt(path, "header format field mismatch")

        self.name = str(meta.get("name", "corpus"))
        self.n_transactions = _header_int(meta, "n_transactions", path, minimum=1)
        self.n_left = _header_int(meta, "n_left", path, minimum=1)
        self.n_right = _header_int(meta, "n_right", path, minimum=1)
        self.block_words = _header_int(meta, "block_words", path, minimum=1)
        self.rows_per_block = _header_int(meta, "rows_per_block", path, minimum=1)
        self.n_blocks = _header_int(meta, "n_blocks", path, minimum=1)
        self.block_nbytes = _header_int(meta, "block_nbytes", path, minimum=8)
        self.quant_bits = _header_int(meta, "quant_bits", path)
        self.tub_max_left = float(meta.get("tub_max_left", 0.0))
        self.tub_max_right = float(meta.get("tub_max_right", 0.0))
        payload_nbytes = _header_int(meta, "payload_nbytes", path, minimum=8)
        if self.rows_per_block != 64 * self.block_words:
            raise _corrupt(path, "rows_per_block does not match block_words")
        expected_blocks = -(-self.n_transactions // self.rows_per_block)
        if self.n_blocks != expected_blocks:
            raise _corrupt(path, "block count does not match n_transactions")
        if self.block_nbytes != (
            (self.n_left + self.n_right) * self.block_words * _WORD_BYTES
        ):
            raise _corrupt(path, "block byte size does not match the views")

        self.left_names = [str(x) for x in meta.get("left_names", [])]
        self.right_names = [str(x) for x in meta.get("right_names", [])]
        if len(self.left_names) != self.n_left or len(self.right_names) != self.n_right:
            raise _corrupt(path, "item name lists do not match the view widths")
        counts_left = meta.get("counts_left")
        counts_right = meta.get("counts_right")
        if (
            not isinstance(counts_left, list)
            or not isinstance(counts_right, list)
            or len(counts_left) != self.n_left
            or len(counts_right) != self.n_right
        ):
            raise _corrupt(path, "support count tables do not match the views")
        self.counts_left = np.asarray(counts_left, dtype=np.int64)
        self.counts_right = np.asarray(counts_right, dtype=np.int64)
        if (
            self.counts_left.min(initial=0) < 0
            or self.counts_right.min(initial=0) < 0
            or self.counts_left.max(initial=0) > self.n_transactions
            or self.counts_right.max(initial=0) > self.n_transactions
        ):
            raise _corrupt(path, "support counts out of range")

        blocks = meta.get("blocks")
        if not isinstance(blocks, list) or len(blocks) != self.n_blocks:
            raise _corrupt(path, "block table does not match n_blocks")
        self._blocks = []
        for entry in blocks:
            if not isinstance(entry, dict):
                raise _corrupt(path, "malformed block table entry")
            offset = entry.get("offset")
            digest_hex = entry.get("digest")
            if (
                not isinstance(offset, int)
                or offset < 0
                or offset % _ALIGN
                or entry.get("nbytes") != self.block_nbytes
                or not isinstance(digest_hex, str)
                or len(digest_hex) != 64
            ):
                raise _corrupt(path, "malformed block table entry")
            if offset + self.block_nbytes > payload_nbytes:
                raise _corrupt(path, "block extends past the payload")
            self._blocks.append((offset, digest_hex))

        sections = meta.get("sections", [])
        if not isinstance(sections, list):
            raise _corrupt(path, "malformed section table")
        self._sections: dict[str, dict] = {}
        for entry in sections:
            if (
                not isinstance(entry, dict)
                or not isinstance(entry.get("name"), str)
                or entry.get("dtype") not in _SECTION_DTYPES
                or not isinstance(entry.get("shape"), list)
                or not isinstance(entry.get("offset"), int)
                or not isinstance(entry.get("nbytes"), int)
                or not isinstance(entry.get("digest"), str)
            ):
                raise _corrupt(path, "malformed section table entry")
            if entry["offset"] < 0 or entry["offset"] + entry["nbytes"] > payload_nbytes:
                raise _corrupt(path, "section extends past the payload")
            self._sections[entry["name"]] = entry

        self._sketch_params = meta.get("sketch", {})
        self._payload_start = _align(_PRELUDE.size + header_len)
        expected_size = self._payload_start + payload_nbytes
        actual_size = os.fstat(self._file.fileno()).st_size
        if actual_size < expected_size:
            raise _corrupt(
                path,
                f"file is {actual_size} bytes, header promises {expected_size}",
            )
        self._sketches: ColumnSketches | None = None

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Close the underlying file handle."""
        self._file.close()

    def __enter__(self) -> "ColumnStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- block access ---------------------------------------------------
    def _pread(self, offset: int, nbytes: int) -> bytes:
        return os.pread(self._file.fileno(), nbytes, self._payload_start + offset)

    def read_block(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """One verified block as ``(left_words, right_words)`` uint64 arrays.

        Shapes are ``(n_left, block_words)`` / ``(n_right, block_words)``;
        bit ``t`` of word ``w`` of row ``i`` is transaction
        ``block_lo + 64*w + t`` of item ``i``.  Raises
        :class:`~repro.serve.artifact.ArtifactCorruptError` if the bytes
        on disk do not match the block's recorded SHA-256.
        """
        if not 0 <= index < self.n_blocks:
            raise IndexError(f"block {index} out of range (n_blocks={self.n_blocks})")
        offset, digest_hex = self._blocks[index]
        raw = self._pread(offset, self.block_nbytes)
        raw = bytes(fault_point("corpus.store.block.bytes", data=raw))
        if len(raw) != self.block_nbytes:
            raise _corrupt(self.path, f"block {index} is truncated")
        if hashlib.sha256(raw).hexdigest() != digest_hex:
            raise _corrupt(self.path, f"block {index} hash mismatch")
        words = np.frombuffer(raw, dtype=np.uint64).reshape(
            self.n_left + self.n_right, self.block_words
        )
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.corpus_blocks(1, self.block_nbytes)
        return words[: self.n_left], words[self.n_left :]

    def iter_blocks(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield every verified block in transaction order (O(block) RSS)."""
        for index in range(self.n_blocks):
            yield self.read_block(index)

    def block_rows(self, index: int) -> int:
        """Number of live transactions in block ``index`` (last may be short)."""
        lo = index * self.rows_per_block
        return min(self.rows_per_block, self.n_transactions - lo)

    # -- scans ----------------------------------------------------------
    def pair_overlaps(self, left_items: np.ndarray, right_items: np.ndarray) -> np.ndarray:
        """Exact co-occurrence counts for item pairs, streamed block-wise.

        ``left_items`` / ``right_items`` are parallel index arrays; the
        result is the int64 count of transactions containing both items
        of each pair.  Each block is read, verified and popcounted
        through :func:`repro.core.bitset.and_popcount_rows` (numpy or
        the native fused kernel), then dropped — peak memory is
        O(len(pairs) + block).
        """
        fault_point("corpus.store.scan")
        left_items = np.asarray(left_items, dtype=np.intp)
        right_items = np.asarray(right_items, dtype=np.intp)
        totals = np.zeros(len(left_items), dtype=np.int64)
        for left_words, right_words in self.iter_blocks():
            both = left_words[left_items] & right_words[right_items]
            totals += and_popcount_rows(both, None, self.backend).astype(np.int64)
        return totals

    def column_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Exact per-column supports ``(counts_left, counts_right)``.

        These are stored in the header at ingest time (and are therefore
        free to read); :meth:`verify` recomputes them from the payload.
        """
        return self.counts_left.copy(), self.counts_right.copy()

    def verify(self) -> None:
        """Full integrity pass: every block digest plus support recount.

        Streams the whole payload once (still O(block) memory), checks
        each block and section digest, and recomputes the per-column
        supports, raising
        :class:`~repro.serve.artifact.ArtifactCorruptError` on any
        disagreement with the header.
        """
        counts_left = np.zeros(self.n_left, dtype=np.int64)
        counts_right = np.zeros(self.n_right, dtype=np.int64)
        for left_words, right_words in self.iter_blocks():
            counts_left += and_popcount_rows(left_words, None, self.backend).astype(
                np.int64
            )
            counts_right += and_popcount_rows(right_words, None, self.backend).astype(
                np.int64
            )
        if not np.array_equal(counts_left, self.counts_left) or not np.array_equal(
            counts_right, self.counts_right
        ):
            raise _corrupt(self.path, "payload supports disagree with the header")
        for entry in self._sections.values():
            self.section(entry["name"])

    # -- sketches -------------------------------------------------------
    def section(self, name: str) -> np.ndarray:
        """A verified sketch section as a numpy array (fresh copy)."""
        entry = self._sections.get(name)
        if entry is None:
            raise ArtifactError(f"column store {self.path} has no section {name!r}")
        raw = self._pread(entry["offset"], entry["nbytes"])
        if len(raw) != entry["nbytes"]:
            raise _corrupt(self.path, f"section {name!r} is truncated")
        if hashlib.sha256(raw).hexdigest() != entry["digest"]:
            raise _corrupt(self.path, f"section {name!r} hash mismatch")
        dtype = _SECTION_DTYPES[entry["dtype"]]
        array = np.frombuffer(raw, dtype=dtype)
        shape = tuple(int(x) for x in entry["shape"])
        if array.size != int(np.prod(shape, dtype=np.int64)):
            raise _corrupt(self.path, f"section {name!r} shape mismatch")
        return array.reshape(shape).copy()

    def sketches(self) -> ColumnSketches:
        """The per-column sketches (cached after the first read)."""
        if self._sketches is None:
            self._sketches = ColumnSketches.from_store_sections(
                params=self._sketch_params,
                n_transactions=self.n_transactions,
                counts_left=self.counts_left,
                counts_right=self.counts_right,
                sample_rows=self.section("sample.rows"),
                sample_left=self.section("sample.left"),
                sample_right=self.section("sample.right"),
                minhash_left=self.section("minhash.left"),
                minhash_right=self.section("minhash.right"),
                block_counts_left=self.section("blockcounts.left"),
                block_counts_right=self.section("blockcounts.right"),
            )
        return self._sketches

    # -- materialisation ------------------------------------------------
    def _side_bits(self, left: bool) -> BitMatrix:
        n_items = self.n_left if left else self.n_right
        total_words = n_words_for(self.n_transactions)
        words = np.zeros((n_items, total_words), dtype=np.uint64)
        for index in range(self.n_blocks):
            left_words, right_words = self.read_block(index)
            source = left_words if left else right_words
            lo_word = index * self.block_words
            width = min(self.block_words, total_words - lo_word)
            words[:, lo_word : lo_word + width] = source[:, :width]
        return BitMatrix(words, self.n_transactions)

    def left_bits(self) -> BitMatrix:
        """All left-view packed columns as one in-RAM :class:`BitMatrix`.

        This is the deliberate exit from out-of-core mode — use it (via
        ``TranslatorExact.fit(store=...)``) when the corpus fits in RAM
        and a full multi-item search is wanted.
        """
        return self._side_bits(left=True)

    def right_bits(self) -> BitMatrix:
        """All right-view packed columns as one in-RAM :class:`BitMatrix`."""
        return self._side_bits(left=False)

    def to_dataset(self) -> TwoViewDataset:
        """Materialise the full corpus as an in-RAM :class:`TwoViewDataset`.

        Peak memory is O(rows x items) — the whole point of the store is
        to avoid this during discovery queries; it exists for the
        ``fit(store=...)`` path and for tests.
        """
        left = self.left_bits().to_bool_columns()
        right = self.right_bits().to_bool_columns()
        return TwoViewDataset(
            left=left,
            right=right,
            left_names=list(self.left_names),
            right_names=list(self.right_names),
            name=self.name,
        )
