"""Per-column sketches: sound support/overlap upper bounds, cheap estimates.

Corpus-scale discovery cannot afford an exact block scan for every one
of the |I_L| x |I_R| candidate pairs, so the store carries two tiny
per-column summaries built during ingest:

* **per-block supports** — each column's exact popcount within every
  store block.  ``|x ∩ y| <= Σ_b min(|x ∩ b|, |y ∩ b|)`` is a *sound*
  upper bound on any overlap (the overlap inside a block can't exceed
  either column's support there).  It is never worse than
  ``min(supp(x), supp(y))`` and much tighter on corpora with temporal
  locality, where different items concentrate in different stretches of
  the stream.
* a **row sample** — the packed bits of every column restricted to a
  fixed random subset ``S`` of transactions.  Because ``S`` is a true
  subset of the rows, ``|x ∩ y| <= |x ∩ y ∩ S| + (n - |S|)`` is also
  sound; it only bites when ``|S|`` approaches ``n`` (small corpora),
  complementing the block bound.  The final bound is the minimum of
  both (and of the exact supports, stored outright in the header).
* **minhash signatures** — ``K`` permutation minima per column, giving
  the classic Jaccard *estimate*.  Estimates are never sound bounds, so
  they are used only to order candidates with equal upper bounds; they
  can never cause a rule to be missed.

The split mirrors the paper's stance on approximation (and Ver's
sketch-then-verify pipeline, arXiv:2106.01543): cheap signals may
*prune and order*, but every reported rule is re-verified exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.bitset import BitMatrix, n_words_for, popcount_rows

__all__ = [
    "ColumnSketches",
    "SketchBuilder",
]

_MERSENNE_PRIME = (1 << 31) - 1


class SketchBuilder:
    """Accumulates :class:`ColumnSketches` over streamed row chunks.

    Used by :func:`repro.corpus.store.ingest_chunks`: feed each chunk to
    :meth:`update` in row order, then :meth:`finish`.  Memory is
    O(sample + signatures), never O(rows).
    """

    def __init__(
        self,
        n_transactions: int,
        n_left: int,
        n_right: int,
        sample_size: int = 2048,
        n_hashes: int = 8,
        seed: int = 0,
        rows_per_block: int = 8192,
    ) -> None:
        if n_transactions >= 2**31:
            raise ValueError("minhash hashing requires n_transactions < 2**31")
        if rows_per_block <= 0:
            raise ValueError("rows_per_block must be positive")
        self.n_transactions = n_transactions
        self.n_left = n_left
        self.n_right = n_right
        self.seed = int(seed)
        self.n_hashes = int(n_hashes)
        self.rows_per_block = int(rows_per_block)
        n_blocks = -(-n_transactions // self.rows_per_block)
        self._block_left = np.zeros((n_blocks, n_left), dtype=np.int64)
        self._block_right = np.zeros((n_blocks, n_right), dtype=np.int64)
        rng = np.random.default_rng(self.seed)
        size = min(int(sample_size), n_transactions)
        self.sample_rows = np.sort(
            rng.choice(n_transactions, size=size, replace=False)
        ).astype(np.int64)
        self.hash_a = rng.integers(
            1, _MERSENNE_PRIME, size=self.n_hashes, dtype=np.int64
        )
        self.hash_b = rng.integers(
            0, _MERSENNE_PRIME, size=self.n_hashes, dtype=np.int64
        )
        self._sample_left = np.zeros((size, n_left), dtype=bool)
        self._sample_right = np.zeros((size, n_right), dtype=bool)
        # Minhash sentinel: the prime itself, larger than any hash value,
        # so an all-zero column keeps it and is recognisably empty.
        self._min_left = np.full((n_left, self.n_hashes), _MERSENNE_PRIME, np.int64)
        self._min_right = np.full((n_right, self.n_hashes), _MERSENNE_PRIME, np.int64)

    def update(self, start_row: int, left: np.ndarray, right: np.ndarray) -> None:
        """Fold one ``(rows, items)`` Boolean chunk starting at ``start_row``."""
        rows = left.shape[0]
        stop_row = start_row + rows
        position = start_row
        while position < stop_row:
            block = position // self.rows_per_block
            take = min(stop_row, (block + 1) * self.rows_per_block) - position
            offset = position - start_row
            self._block_left[block] += left[offset : offset + take].sum(axis=0)
            self._block_right[block] += right[offset : offset + take].sum(axis=0)
            position += take
        lo, hi = np.searchsorted(self.sample_rows, [start_row, stop_row])
        if hi > lo:
            local = self.sample_rows[lo:hi] - start_row
            self._sample_left[lo:hi] = left[local]
            self._sample_right[lo:hi] = right[local]
        if self.n_hashes and rows:
            hashes = (
                (np.arange(start_row, stop_row, dtype=np.int64)[:, None] + 1)
                * self.hash_a[None, :]
                + self.hash_b[None, :]
            ) % _MERSENNE_PRIME
            for k in range(self.n_hashes):
                column = hashes[:, k]
                masked_left = np.where(left, column[:, None], _MERSENNE_PRIME)
                masked_right = np.where(right, column[:, None], _MERSENNE_PRIME)
                np.minimum(
                    self._min_left[:, k],
                    masked_left.min(axis=0),
                    out=self._min_left[:, k],
                )
                np.minimum(
                    self._min_right[:, k],
                    masked_right.min(axis=0),
                    out=self._min_right[:, k],
                )

    def finish(self) -> "ColumnSketches":
        """Freeze the accumulators into immutable :class:`ColumnSketches`."""
        return ColumnSketches(
            n_transactions=self.n_transactions,
            sample_rows=self.sample_rows,
            sample_left=BitMatrix.from_bool_columns(self._sample_left).words,
            sample_right=BitMatrix.from_bool_columns(self._sample_right).words,
            minhash_left=self._min_left,
            minhash_right=self._min_right,
            block_counts_left=self._block_left,
            block_counts_right=self._block_right,
            hash_a=self.hash_a,
            hash_b=self.hash_b,
            seed=self.seed,
        )


class ColumnSketches:
    """Sample + minhash summaries of every column of a two-view corpus.

    The *sample* side yields **sound upper bounds**
    (:meth:`overlap_upper_bounds`, :meth:`support_upper_bound`): the
    overlap observed inside the sampled rows plus the number of
    unsampled rows can never undercount.  The *minhash* side yields
    **estimates only** (:meth:`overlap_estimates`), used to order
    candidates, never to prune them.
    """

    def __init__(
        self,
        n_transactions: int,
        sample_rows: np.ndarray,
        sample_left: np.ndarray,
        sample_right: np.ndarray,
        minhash_left: np.ndarray,
        minhash_right: np.ndarray,
        block_counts_left: np.ndarray,
        block_counts_right: np.ndarray,
        hash_a: np.ndarray,
        hash_b: np.ndarray,
        seed: int = 0,
    ) -> None:
        self.n_transactions = int(n_transactions)
        self.sample_rows = np.asarray(sample_rows, dtype=np.int64)
        self.sample_left = np.asarray(sample_left, dtype=np.uint64)
        self.sample_right = np.asarray(sample_right, dtype=np.uint64)
        self.minhash_left = np.asarray(minhash_left, dtype=np.int64)
        self.minhash_right = np.asarray(minhash_right, dtype=np.int64)
        self.block_counts_left = np.asarray(block_counts_left, dtype=np.int64)
        self.block_counts_right = np.asarray(block_counts_right, dtype=np.int64)
        self.hash_a = np.asarray(hash_a, dtype=np.int64)
        self.hash_b = np.asarray(hash_b, dtype=np.int64)
        self.seed = int(seed)
        self.sample_size = int(self.sample_rows.size)
        expected_words = n_words_for(self.sample_size)
        if (
            self.sample_left.ndim != 2
            or self.sample_right.ndim != 2
            or self.sample_left.shape[1] != expected_words
            or self.sample_right.shape[1] != expected_words
        ):
            raise ValueError("sample word matrices do not match the sample size")
        if (
            self.block_counts_left.ndim != 2
            or self.block_counts_right.ndim != 2
            or self.block_counts_left.shape[0] != self.block_counts_right.shape[0]
        ):
            raise ValueError("block count tables do not match")

    # -- serialization ---------------------------------------------------
    def params(self) -> dict:
        """JSON-ready sketch parameters for the store header."""
        return {
            "seed": self.seed,
            "sample_size": self.sample_size,
            "n_hashes": int(self.hash_a.size),
            "prime": _MERSENNE_PRIME,
        }

    def sections(self) -> list[tuple[str, np.ndarray]]:
        """Named binary sections for the store payload, in write order."""
        return [
            ("sample.rows", self.sample_rows),
            ("sample.left", self.sample_left),
            ("sample.right", self.sample_right),
            ("minhash.left", self.minhash_left),
            ("minhash.right", self.minhash_right),
            ("blockcounts.left", self.block_counts_left),
            ("blockcounts.right", self.block_counts_right),
        ]

    @classmethod
    def from_store_sections(
        cls,
        params: dict,
        n_transactions: int,
        counts_left: np.ndarray,
        counts_right: np.ndarray,
        sample_rows: np.ndarray,
        sample_left: np.ndarray,
        sample_right: np.ndarray,
        minhash_left: np.ndarray,
        minhash_right: np.ndarray,
        block_counts_left: np.ndarray,
        block_counts_right: np.ndarray,
    ) -> "ColumnSketches":
        """Rebuild sketches from verified store sections.

        ``counts_left`` / ``counts_right`` ride along unused here — the
        store keeps exact supports in its header; they are accepted so
        call sites can treat the header+sections bundle uniformly.
        """
        del counts_left, counts_right
        # The a/b hash parameters are reproducible from the recorded
        # seed — regenerating them keeps the header purely scalar.
        rng = np.random.default_rng(int(params.get("seed", 0)))
        size = int(params.get("sample_size", sample_rows.size))
        rng.choice(n_transactions, size=min(size, n_transactions), replace=False)
        n_hashes = int(params.get("n_hashes", minhash_left.shape[1]))
        hash_a = rng.integers(1, _MERSENNE_PRIME, size=n_hashes, dtype=np.int64)
        hash_b = rng.integers(0, _MERSENNE_PRIME, size=n_hashes, dtype=np.int64)
        return cls(
            n_transactions=n_transactions,
            sample_rows=sample_rows,
            sample_left=sample_left,
            sample_right=sample_right,
            minhash_left=minhash_left,
            minhash_right=minhash_right,
            block_counts_left=block_counts_left,
            block_counts_right=block_counts_right,
            hash_a=hash_a,
            hash_b=hash_b,
            seed=int(params.get("seed", 0)),
        )

    # -- sound bounds ----------------------------------------------------
    @property
    def slack(self) -> int:
        """Unsampled row count ``n - |S|`` — the sample bound's additive term."""
        return self.n_transactions - self.sample_size

    def support_upper_bound(self, sample_words: np.ndarray) -> int:
        """Sound upper bound on an itemset's support from its sample words.

        ``sample_words`` is the packed AND of the member columns'
        sample rows; the bound is the in-sample support plus one for
        every unsampled row.
        """
        inside = int(popcount_rows(sample_words[None, :])[0])
        return min(self.n_transactions, inside + self.slack)

    def overlap_upper_bounds(
        self, counts_left: np.ndarray, counts_right: np.ndarray
    ) -> np.ndarray:
        """Sound ``(n_left, n_right)`` upper bounds on all pair overlaps.

        The minimum of three sound bounds: the exact header supports
        ``min(supp(x), supp(y))``, the per-block support min-sum
        ``Σ_b min(|x ∩ b|, |y ∩ b|)``, and the sample bound
        ``overlap_in_sample + (n - |S|)``.  Computed with loops over
        blocks and left items, so peak memory is O(items² + block
        row), never O(rows x items) dense.
        """
        n_left = self.sample_left.shape[0]
        n_right = self.sample_right.shape[0]
        bounds = np.zeros((n_left, n_right), dtype=np.int64)
        # Per-block min-sum: the overlap inside a block is at most the
        # smaller of the two columns' supports there.
        for block_left, block_right in zip(
            self.block_counts_left, self.block_counts_right
        ):
            bounds += np.minimum(block_left[:, None], block_right[None, :])
        slack = self.slack
        for x in range(n_left):
            inside = popcount_rows(self.sample_right & self.sample_left[x])
            np.minimum(bounds[x], inside.astype(np.int64) + slack, out=bounds[x])
        np.minimum(bounds, np.asarray(counts_left, np.int64)[:, None], out=bounds)
        np.minimum(bounds, np.asarray(counts_right, np.int64)[None, :], out=bounds)
        return bounds

    # -- estimates (ordering only) --------------------------------------
    def overlap_estimates(
        self, counts_left: np.ndarray, counts_right: np.ndarray
    ) -> np.ndarray:
        """Minhash overlap *estimates* for all pairs (ordering heuristic).

        ``jaccard_hat * (supp(x) + supp(y)) / (1 + jaccard_hat)`` with
        ``jaccard_hat`` the fraction of matching signature minima.  Not
        a bound in either direction — callers must only use it to order
        candidates whose sound upper bounds tie.
        """
        k = self.minhash_left.shape[1]
        if k == 0:
            return np.zeros(
                (self.minhash_left.shape[0], self.minhash_right.shape[0]), float
            )
        matches = (
            self.minhash_left[:, None, :] == self.minhash_right[None, :, :]
        ).sum(axis=2)
        jaccard = matches / float(k)
        sums = (
            np.asarray(counts_left, np.float64)[:, None]
            + np.asarray(counts_right, np.float64)[None, :]
        )
        return jaccard * sums / (1.0 + jaccard)
