"""Corpus-scale discovery: out-of-core storage, sketches, anytime search.

The in-RAM engine (:mod:`repro.core`) is exact and fast but assumes the
two-view matrix fits in memory.  This package scales the *discovery
entry points* to corpora that do not, without ever compromising the
exactness contract:

* :mod:`repro.corpus.store` — ``RPROCOL1``, a packed, digest-verified
  column file written once by an ingest step and streamed block-by-block
  through the same popcount kernels the engine uses.  Peak RSS of a
  scan is O(one block), not O(corpus).
* :mod:`repro.corpus.sketch` — per-column row-sample and minhash
  summaries.  Sample overlaps give **sound upper bounds** that prune
  candidates; minhash estimates only order them.  Reported rules are
  always re-verified exactly.
* :mod:`repro.corpus.discover` — the threshold-algorithm top-k pair
  query over a store, bit-identical to a full exact scan.
* :mod:`repro.corpus.anytime` — node/time budgets over the exact
  search with checkpointed slices and honest gap bounds.

See ``docs/corpus.md`` for the file format and the soundness argument.
"""

from .anytime import AnytimeResult, AnytimeSearch
from .discover import TopKResult, exact_topk_pairs, topk_pairs
from .sketch import ColumnSketches, SketchBuilder
from .store import (
    STORE_MAGIC,
    STORE_VERSION,
    ColumnStore,
    ingest_chunks,
    ingest_dataset,
)

__all__ = [
    "STORE_MAGIC",
    "STORE_VERSION",
    "AnytimeResult",
    "AnytimeSearch",
    "ColumnSketches",
    "ColumnStore",
    "SketchBuilder",
    "TopKResult",
    "exact_topk_pairs",
    "ingest_chunks",
    "ingest_dataset",
    "topk_pairs",
]
