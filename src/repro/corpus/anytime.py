"""Anytime rule search: node *and* wall-clock budgets, reproducibly.

A ``max_nodes`` budget is deterministic — the same budget on the same
state always stops at the same node and returns the same incumbent.  A
wall-clock budget is not: how many nodes fit in a second depends on the
machine.  Mixing the two naively would make results irreproducible.

:class:`AnytimeSearch` squares that circle by running the search as a
sequence of deterministic node-budget **slices** over the checkpoint
machinery of :class:`repro.core.search.ExactRuleSearch`: each slice
extends the node budget by ``slice_nodes`` and resumes from the
previous slice's :class:`~repro.core.search.SearchCheckpoint`, and the
clock is consulted only *between* slices.  Every decision inside a
slice is bit-reproducible; the clock merely picks how many slices run.
Two runs that complete the same number of slices are bit-identical,
and any interrupted run reports the same honest ``gap_bound`` a
directly node-budgeted search would.
"""

from __future__ import annotations

import dataclasses
import time

from repro.core.rules import TranslationRule
from repro.core.search import ExactRuleSearch, SearchCache, SearchCheckpoint, SearchStats
from repro.core.state import CoverState

__all__ = [
    "AnytimeResult",
    "AnytimeSearch",
]


@dataclasses.dataclass
class AnytimeResult:
    """Outcome of one anytime best-rule search.

    Attributes
    ----------
    rule:
        Best rule found (``None`` if nothing with positive gain was
        reached within budget).
    gain:
        Exact MDL gain of ``rule`` in bits (0.0 when ``rule`` is None).
    stats:
        The underlying :class:`~repro.core.search.SearchStats`;
        ``stats.gap_bound`` bounds how much better the true optimum
        could be, and ``stats.complete`` records whether the search
        finished (in which case the gap is 0.0).
    n_slices:
        Node-budget slices executed; on a time-budgeted run this is the
        only machine-dependent quantity.
    elapsed:
        Wall-clock seconds spent across all slices.
    checkpoint:
        Resume point for continuing the interrupted search later
        (``None`` when the search completed).
    """

    rule: TranslationRule | None
    gain: float
    stats: SearchStats
    n_slices: int
    elapsed: float
    checkpoint: SearchCheckpoint | None


class AnytimeSearch:
    """Budgeted exact rule search with checkpointed wall-clock slicing.

    Parameters
    ----------
    state:
        The :class:`CoverState` to search over (never mutated).
    max_nodes:
        Optional *total* node budget across all slices.
    time_budget:
        Optional wall-clock budget in seconds, enforced at slice
        granularity: the search never starts a new slice after the
        budget is spent, so it can overshoot by at most one slice.
    slice_nodes:
        Nodes per deterministic slice.  Smaller slices track a time
        budget more tightly at the cost of more checkpoint
        rebuild/capture overhead; the value never affects *which* rule
        a node-budget stop returns, only the time-budget granularity.
    max_rule_size, kernel, backend, cache:
        Forwarded to :class:`ExactRuleSearch` (``kernel="bool"`` is
        rejected — slicing needs the bitset checkpoint machinery).
        Slices always run serially (``n_jobs=1``): a node budget is
        traversal-order dependent, so sharding could change the answer.
    """

    def __init__(
        self,
        state: CoverState,
        max_nodes: int | None = None,
        time_budget: float | None = None,
        slice_nodes: int = 4096,
        max_rule_size: int | None = None,
        kernel: str = "auto",
        backend: str = "auto",
        cache: SearchCache | None = None,
    ) -> None:
        if kernel == "bool":
            raise ValueError(
                "AnytimeSearch requires the bitset kernel (checkpointed slices)"
            )
        if slice_nodes <= 0:
            raise ValueError("slice_nodes must be positive")
        if max_nodes is not None and max_nodes <= 0:
            raise ValueError("max_nodes must be positive when given")
        if time_budget is not None and time_budget < 0:
            raise ValueError("time_budget must be non-negative when given")
        self.state = state
        self.max_nodes = max_nodes
        self.time_budget = time_budget
        self.slice_nodes = int(slice_nodes)
        self.max_rule_size = max_rule_size
        self.kernel = kernel
        self.backend = backend
        self.cache = cache

    def _make_search(
        self, budget: int | None, checkpoint: SearchCheckpoint | None
    ) -> ExactRuleSearch:
        return ExactRuleSearch(
            self.state,
            max_rule_size=self.max_rule_size,
            max_nodes=budget,
            kernel=self.kernel,
            backend=self.backend,
            cache=self.cache,
            n_jobs=1,
            checkpoint=checkpoint,
        )

    def run(self) -> AnytimeResult:
        """Execute slices until completion or a budget runs out."""
        start = time.perf_counter()
        if self.time_budget is None:
            # No clock: a single (possibly node-budgeted) search is
            # already deterministic — no slicing needed.
            search = self._make_search(self.max_nodes, None)
            rule, gain, stats = search.find_best_rule()
            return AnytimeResult(
                rule=rule,
                gain=gain,
                stats=stats,
                n_slices=1,
                elapsed=time.perf_counter() - start,
                checkpoint=search.last_checkpoint,
            )

        checkpoint: SearchCheckpoint | None = None
        visited = 0
        n_slices = 0
        while True:
            budget = visited + self.slice_nodes
            if self.max_nodes is not None:
                budget = min(budget, self.max_nodes)
            search = self._make_search(budget, checkpoint)
            rule, gain, stats = search.find_best_rule()
            n_slices += 1
            checkpoint = search.last_checkpoint
            visited = stats.nodes_visited
            elapsed = time.perf_counter() - start
            node_budget_spent = (
                self.max_nodes is not None and visited >= self.max_nodes
            )
            if stats.complete or node_budget_spent or elapsed >= self.time_budget:
                return AnytimeResult(
                    rule=rule,
                    gain=gain,
                    stats=stats,
                    n_slices=n_slices,
                    elapsed=elapsed,
                    checkpoint=None if stats.complete else checkpoint,
                )
