"""Sketch-pruned, exactly re-verified top-k pair discovery over a store.

The query answered here is the corpus-scale analogue of the exact
engine's seeding step (``ExactRuleSearch._seed_best_pair``): *the k
single-item pair rules of highest MDL gain against an empty
translation table*.  The implementation is a threshold-algorithm scan:

1. **Bound** every |I_L| x |I_R| candidate pair from the sketches —
   exact supports from the store header plus the sound sample overlap
   bound give, for each direction, an upper bound on the pair's
   quantized gain (gain is monotone in the overlap, all else exact).
2. **Order** candidates by descending bound, breaking bound ties with
   the minhash overlap estimate (an ordering heuristic only — it can
   reshuffle work, never the answer).
3. **Verify** candidates in batches: each batch's exact overlaps are
   streamed block-by-block through the store's popcount kernels, exact
   gains are computed, and a running top-k is maintained.  The scan
   stops as soon as the next candidate's *bound* cannot beat the k-th
   exact gain — every unscanned pair is provably outside the top k.

Gains use the store's recorded fixed-point scale (``quant_bits``, the
engine's own), so every reported gain is an exact integer multiple of
``2^-bits`` — which is what makes the pruned result **bit-identical**
to a full exact scan (:func:`exact_topk_pairs` is the dense in-RAM
reference used by the honesty tests and benchmark cells).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import obs as _obs
from repro.core.rules import TranslationRule
from repro.data.dataset import TwoViewDataset

from .store import ColumnStore, _weights_from_counts, quantization_bits

__all__ = [
    "TopKResult",
    "exact_topk_pairs",
    "topk_pairs",
]

_DIRECTIONS = ("->", "<-", "<->")


@dataclasses.dataclass
class TopKResult:
    """Top-k pair rules with exact gains, plus scan accounting.

    Attributes
    ----------
    rules:
        The top-k :class:`TranslationRule` objects, best first; ties
        broken by direction (``->`` before ``<-`` before ``<->``) then
        item indices — the exact engine's seeding order.
    gains:
        Exact MDL gain of each rule in bits (an integer multiple of
        ``2^-quant_bits``; never an estimate).
    quant_bits:
        The fixed-point scale the gains were computed at.
    n_pairs:
        Total candidate pairs, ``n_left * n_right``.
    n_scanned:
        Pairs whose exact overlap was actually computed; the rest were
        pruned by their sound upper bounds (either excluded outright —
        provably zero overlap or non-positive gain — or cut off by the
        threshold-algorithm stop).
    n_blocks_read:
        Verified block reads performed by the scan.
    """

    rules: list[TranslationRule]
    gains: list[float]
    quant_bits: int
    n_pairs: int
    n_scanned: int
    n_blocks_read: int

    @property
    def pruned_fraction(self) -> float:
        """Share of candidate pairs never exactly scanned."""
        if not self.n_pairs:
            return 0.0
        return 1.0 - self.n_scanned / self.n_pairs

    def fingerprint(self) -> list[list]:
        """Bit-exact comparison key: rules plus ``repr`` of each gain."""
        return [
            [list(rule.lhs), list(rule.rhs), rule.direction.value, repr(gain)]
            for rule, gain in zip(self.rules, self.gains)
        ]


def _pair_gains_q(
    overlap: np.ndarray,
    supp_left: np.ndarray,
    supp_right: np.ndarray,
    wq_left: np.ndarray,
    wq_right: np.ndarray,
    one: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Quantized pair gains (forward, backward, both), exact integer sums.

    Broadcasting closed forms of the engine's seed grids: covering the
    overlap earns each covered cell's code length, the off-support
    cells of the translated view become corrections, and the rule pays
    its own code plus usage cost (2 bits directed, 1 bit ``<->``).
    """
    forward_net = wq_right * (2.0 * overlap - supp_left)
    backward_net = wq_left * (2.0 * overlap - supp_right)
    length = wq_left + wq_right
    forward = forward_net - length - 2.0 * one
    backward = backward_net - length - 2.0 * one
    both = forward_net + backward_net - length - one
    return forward, backward, both


def _select_topk(entries: list[tuple[float, int, int, int]], k: int) -> list:
    entries.sort(key=lambda e: (-e[0], e[1], e[2], e[3]))
    return entries[:k]


def _as_result(
    selected: list, one: float, bits: int, n_pairs: int, n_scanned: int, blocks: int
) -> TopKResult:
    rules = [
        TranslationRule((x,), (y,), _DIRECTIONS[d]) for _, d, x, y in selected
    ]
    gains = [gain_q / one for gain_q, _, _, _ in selected]
    return TopKResult(
        rules=rules,
        gains=gains,
        quant_bits=bits,
        n_pairs=n_pairs,
        n_scanned=n_scanned,
        n_blocks_read=blocks,
    )


def exact_topk_pairs(
    dataset: TwoViewDataset, k: int = 10, quant_bits: int | None = None
) -> TopKResult:
    """Dense in-RAM reference: exact top-k pair rules via one big GEMM.

    Computes every pair overlap at once — O(rows x items) memory — and
    is the oracle the sketch-pruned :func:`topk_pairs` must match
    bit-for-bit.  ``quant_bits`` defaults to the engine's own scale for
    this dataset (pass a store's ``quant_bits`` when comparing against
    a store-backed scan).
    """
    counts_left = dataset.left.sum(axis=0).astype(np.int64)
    counts_right = dataset.right.sum(axis=0).astype(np.int64)
    n = dataset.n_transactions
    weights_left = _weights_from_counts(counts_left, n)
    weights_right = _weights_from_counts(counts_right, n)
    if quant_bits is None:
        tub_left = dataset.left @ weights_left
        tub_right = dataset.right @ weights_right
        tub_max = (float(tub_left.max()) if tub_left.size else 0.0) + (
            float(tub_right.max()) if tub_right.size else 0.0
        )
        quant_bits = quantization_bits(tub_max, weights_left, weights_right, n)
    one = float(1 << quant_bits)
    wq_left = np.rint(weights_left * one)
    wq_right = np.rint(weights_right * one)
    overlap = (
        dataset.left.T.astype(np.int64) @ dataset.right.astype(np.int64)
    ).astype(np.float64)
    gains = _pair_gains_q(
        overlap,
        counts_left.astype(np.float64)[:, None],
        counts_right.astype(np.float64)[None, :],
        wq_left[:, None],
        wq_right[None, :],
        one,
    )
    entries: list[tuple[float, int, int, int]] = []
    for rank, grid in enumerate(gains):
        xs, ys = np.nonzero((overlap > 0) & (grid > 0))
        for x, y in zip(xs.tolist(), ys.tolist()):
            entries.append((float(grid[x, y]), rank, x, y))
    n_pairs = dataset.n_left * dataset.n_right
    return _as_result(
        _select_topk(entries, k), one, quant_bits, n_pairs, n_pairs, 0
    )


def topk_pairs(
    store: ColumnStore,
    k: int = 10,
    batch_size: int = 1024,
    prune: bool = True,
) -> TopKResult:
    """Exact top-k pair rules over a column store, out of core.

    With ``prune=True`` (the default) the threshold-algorithm scan
    described in the module docstring runs: sketched bounds order the
    candidates, batches of ``batch_size`` pairs are verified exactly
    against the streamed blocks, and the scan stops once no unscanned
    pair's bound can reach the k-th exact gain.  ``prune=False``
    verifies every pair (the "full exact scan" baseline the benchmark
    compares against); both modes return bit-identical results.

    Peak memory is O(pair grids + one block) — the corpus rows are
    never resident.

    Example::

        >>> from repro import SyntheticSpec, generate_planted
        >>> from repro.corpus import ColumnStore, ingest_dataset, topk_pairs
        >>> import tempfile, os
        >>> data, _ = generate_planted(SyntheticSpec(n_transactions=300))
        >>> path = os.path.join(tempfile.mkdtemp(), "demo.col")
        >>> _ = ingest_dataset(data, path)
        >>> result = topk_pairs(ColumnStore(path), k=3)
        >>> len(result.rules) <= 3
        True
    """
    if k <= 0:
        raise ValueError("k must be positive")
    counts_left, counts_right = store.column_counts()
    n = store.n_transactions
    weights_left = _weights_from_counts(counts_left, n)
    weights_right = _weights_from_counts(counts_right, n)
    bits = store.quant_bits
    one = float(1 << bits)
    wq_left = np.rint(weights_left * one)
    wq_right = np.rint(weights_right * one)

    if prune:
        sketches = store.sketches()
        overlap_ub = sketches.overlap_upper_bounds(counts_left, counts_right)
        bound_grids = _pair_gains_q(
            overlap_ub.astype(np.float64),
            counts_left.astype(np.float64)[:, None],
            counts_right.astype(np.float64)[None, :],
            wq_left[:, None],
            wq_right[None, :],
            one,
        )
        pair_bound = np.maximum(
            np.maximum(bound_grids[0], bound_grids[1]), bound_grids[2]
        )
        # A pair whose overlap bound is zero provably never co-occurs, and
        # a pair whose gain bound is non-positive can never enter the top k.
        eligible = (overlap_ub > 0) & (pair_bound > 0)
        xs, ys = np.nonzero(eligible)
        bounds_flat = pair_bound[xs, ys]
        estimates = sketches.overlap_estimates(counts_left, counts_right)[xs, ys]
        order = np.lexsort((ys, xs, -estimates, -bounds_flat))
        xs, ys, bounds_flat = xs[order], ys[order], bounds_flat[order]
    else:
        # Baseline mode: no sketches at all — every pair is verified.
        grid_x, grid_y = np.meshgrid(
            np.arange(store.n_left), np.arange(store.n_right), indexing="ij"
        )
        xs, ys = grid_x.ravel(), grid_y.ravel()
        bounds_flat = np.zeros(xs.size)
    n_pairs = int(store.n_left) * int(store.n_right)
    n_candidates = int(xs.size)

    entries: list[tuple[float, int, int, int]] = []
    selected: list[tuple[float, int, int, int]] = []
    scanned = 0
    batches = 0
    supp_left_f = counts_left.astype(np.float64)
    supp_right_f = counts_right.astype(np.float64)
    while scanned < n_candidates:
        if prune and len(selected) >= k:
            threshold = selected[-1][0]
            if bounds_flat[scanned] < threshold:
                break
        hi = min(scanned + batch_size, n_candidates)
        if prune and len(selected) >= k:
            # Trim the batch to candidates whose bound can still matter.
            viable = np.searchsorted(
                -bounds_flat[scanned:hi], -selected[-1][0], side="right"
            )
            hi = scanned + max(1, int(viable))
        batch_x = xs[scanned:hi]
        batch_y = ys[scanned:hi]
        overlap = store.pair_overlaps(batch_x, batch_y).astype(np.float64)
        batches += 1
        gains = _pair_gains_q(
            overlap,
            supp_left_f[batch_x],
            supp_right_f[batch_y],
            wq_left[batch_x],
            wq_right[batch_y],
            one,
        )
        positive = overlap > 0
        for rank, vector in enumerate(gains):
            for index in np.nonzero(positive & (vector > 0))[0].tolist():
                entries.append(
                    (
                        float(vector[index]),
                        rank,
                        int(batch_x[index]),
                        int(batch_y[index]),
                    )
                )
        scanned = hi
        selected = _select_topk(entries, k)
        entries = list(selected)
    if _obs.ACTIVE is not None:
        _obs.ACTIVE.corpus_scan(scanned, n_candidates - scanned)
    return _as_result(
        selected, one, bits, n_pairs, scanned, batches * store.n_blocks
    )
