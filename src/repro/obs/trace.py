"""Request tracing: span contexts, header propagation, JSONL export.

A trace is a tree of :class:`Span` records sharing one ``trace_id``.
The replica router opens a root span per client request, encodes it in
the ``X-Repro-Trace`` header (:func:`format_trace_header`), and each
replica continues the trace across its service handler and micro-batch
flush — so one client request yields a linked span tree even when the
batch executes rows from several requests.

Determinism: a :class:`Tracer` takes an injectable ``clock`` and
``id_source``, so tests can pin both and assert exact span records.
Spans are exported as JSON Lines through :class:`JsonlSpanExporter`,
which rotates the file once it crosses a size cap (keeping a bounded
number of rotated generations) so long-running servers cannot fill the
disk.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from collections.abc import Callable, Iterable

__all__ = [
    "JsonlSpanExporter",
    "Span",
    "TRACE_HEADER",
    "TraceContext",
    "Tracer",
    "format_trace_header",
    "parse_trace_header",
]

#: HTTP header carrying trace context between router and replicas.
TRACE_HEADER = "X-Repro-Trace"

_ID_BITS = 64


class TraceContext:
    """The identity of one span: ``trace_id`` plus its own ``span_id``.

    What travels in the ``X-Repro-Trace`` header; a child span created
    under this context records ``span_id`` as its ``parent_id``.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext(trace_id={self.trace_id!r}, span_id={self.span_id!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceContext)
            and other.trace_id == self.trace_id
            and other.span_id == self.span_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))


def format_trace_header(context: TraceContext) -> str:
    """Encode a context as the ``X-Repro-Trace`` value: ``trace_id-span_id``."""
    return f"{context.trace_id}-{context.span_id}"


def parse_trace_header(value: str | None) -> TraceContext | None:
    """Decode an ``X-Repro-Trace`` value; ``None`` on absent/malformed input.

    Malformed headers are deliberately dropped rather than raised — a
    bad client header must never fail the request it annotates.
    """
    if not value:
        return None
    parts = value.strip().split("-")
    if len(parts) != 2:
        return None
    trace_id, span_id = parts
    if not trace_id or not span_id:
        return None
    try:
        int(trace_id, 16)
        int(span_id, 16)
    except ValueError:
        return None
    return TraceContext(trace_id, span_id)


class Span:
    """One timed operation inside a trace.

    Use as a context manager (``with tracer.span(...)``) or call
    :meth:`finish` explicitly.  ``attributes`` set before the span
    finishes are included in the exported record.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_time",
        "end_time",
        "attributes",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        start_time: float,
        tracer: "Tracer",
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_time = start_time
        self.end_time: float | None = None
        self.attributes: dict[str, object] = {}
        self._tracer = tracer

    @property
    def context(self) -> TraceContext:
        """This span's identity, suitable for header propagation."""
        return TraceContext(self.trace_id, self.span_id)

    def set_attribute(self, key: str, value: object) -> None:
        """Attach one key/value to the exported record."""
        self.attributes[key] = value

    def finish(self) -> None:
        """Stop the clock and export the span (idempotent)."""
        if self.end_time is not None:
            return
        self.end_time = self._tracer._clock()
        self._tracer._export(self)

    def as_dict(self) -> dict[str, object]:
        """The JSON-serialisable record written by the exporter."""
        record: dict[str, object] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_time": self.start_time,
            "end_time": self.end_time,
        }
        if self.attributes:
            record["attributes"] = self.attributes
        return record

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self.finish()


class Tracer:
    """Creates spans and hands finished ones to an exporter.

    ``clock`` and ``id_source`` are injectable: pass a fake clock and a
    seeded ``random.Random`` (its ``getrandbits``) to make span records
    fully deterministic in tests.  The default id source is a private
    seeded-from-urandom generator, so tracing never perturbs the global
    ``random`` state the search engine may rely on.
    """

    def __init__(
        self,
        exporter: "SpanExporter | None" = None,
        clock: Callable[[], float] = time.time,
        id_source: Callable[[int], int] | None = None,
    ) -> None:
        if id_source is None:
            id_source = random.Random(int.from_bytes(os.urandom(8), "big")).getrandbits
        self._exporter = exporter
        self._clock = clock
        self._id_source = id_source
        self._lock = threading.Lock()

    def _new_id(self) -> str:
        with self._lock:
            return f"{self._id_source(_ID_BITS):016x}"

    def span(
        self,
        name: str,
        parent: "TraceContext | Span | None" = None,
        attributes: dict[str, object] | None = None,
    ) -> Span:
        """Start a span; a new trace when ``parent`` is ``None``.

        ``parent`` may be a :class:`TraceContext` (e.g. parsed from the
        wire) or another :class:`Span`.
        """
        if isinstance(parent, Span):
            parent = parent.context
        trace_id = parent.trace_id if parent is not None else self._new_id()
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=self._new_id(),
            parent_id=parent.span_id if parent is not None else None,
            start_time=self._clock(),
            tracer=self,
        )
        if attributes:
            span.attributes.update(attributes)
        return span

    def _export(self, span: Span) -> None:
        if self._exporter is not None:
            self._exporter.export(span)


class SpanExporter:
    """Destination for finished spans; subclasses override :meth:`export`."""

    def export(self, span: Span) -> None:
        """Receive one finished span."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (default: nothing to do)."""


class JsonlSpanExporter(SpanExporter):
    """Append finished spans to a JSON Lines file with size-capped rotation.

    When the file would exceed ``max_bytes`` the current file is renamed
    to ``<path>.1`` (shifting older generations up to ``backups``, the
    oldest dropped) and a fresh file is started — the total footprint is
    bounded by ``max_bytes * (backups + 1)`` plus one record.
    """

    def __init__(
        self,
        path: str,
        max_bytes: int = 8 * 1024 * 1024,
        backups: int = 2,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if backups < 0:
            raise ValueError("backups cannot be negative")
        self.path = str(path)
        self.max_bytes = int(max_bytes)
        self.backups = int(backups)
        self._lock = threading.Lock()
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)

    def export(self, span: Span) -> None:
        """Append one span record, rotating first if the cap is hit."""
        line = json.dumps(span.as_dict(), sort_keys=True) + "\n"
        with self._lock:
            size = os.path.getsize(self.path) if os.path.exists(self.path) else 0
            if size and size + len(line) > self.max_bytes:
                self._rotate()
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)

    def _rotate(self) -> None:
        if self.backups == 0:
            os.replace(self.path, self.path + ".old")
            os.remove(self.path + ".old")
            return
        oldest = f"{self.path}.{self.backups}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for index in range(self.backups - 1, 0, -1):
            source = f"{self.path}.{index}"
            if os.path.exists(source):
                os.replace(source, f"{self.path}.{index + 1}")
        os.replace(self.path, f"{self.path}.1")


def read_spans(path: str) -> list[dict[str, object]]:
    """Load span records from one JSONL file (skipping blank lines)."""
    records: list[dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def span_files(path: str) -> list[str]:
    """The JSONL file plus rotated generations, oldest first."""
    candidates = []
    index = 1
    while os.path.exists(f"{path}.{index}"):
        candidates.append(f"{path}.{index}")
        index += 1
    candidates.reverse()
    if os.path.exists(path):
        candidates.append(path)
    return candidates


def build_span_tree(
    records: Iterable[dict[str, object]],
) -> dict[str, list[dict[str, object]]]:
    """Group span records into trees keyed by ``trace_id``.

    Each value is the trace's spans sorted by start time; used by the
    ``trace-dump`` CLI command and the end-to-end span-tree test.
    """
    trees: dict[str, list[dict[str, object]]] = {}
    for record in records:
        trees.setdefault(str(record.get("trace_id")), []).append(record)
    for spans in trees.values():
        spans.sort(key=lambda r: (r.get("start_time") or 0, str(r.get("span_id"))))
    return trees
