"""Unified observability layer: metrics, tracing, engine profiling hooks.

Three pieces:

* :mod:`repro.obs.metrics` — dependency-free Counter/Gauge/Histogram
  registry with Prometheus text exposition (served at ``GET /metrics``
  by both :class:`~repro.serve.server.PredictionServer` and
  :class:`~repro.serve.router.ReplicaRouter`).
* :mod:`repro.obs.trace` — span contexts with ``X-Repro-Trace`` header
  propagation (router → replica → micro-batcher) and a JSONL exporter
  with size-capped rotation.
* the **instrument seam** in this module — :func:`instrument` installs
  an :class:`EngineInstruments` bundle as the module global
  :data:`ACTIVE`; engine hot paths (search, bitset kernels, stream
  buffer, maintenance loop, column store, supervisor) guard every hook
  with a single ``if obs.ACTIVE is not None`` attribute check, so the
  disabled cost is one load + comparison (``benchmarks/bench_obs.py``
  keeps that honest).

This module imports only the standard library — it sits below every
other ``repro`` subpackage and must never create an import cycle.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    METRICS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    REGISTRY,
    inject_label,
    merge_expositions,
    parse_exposition,
    render_registries,
    valid_metric_name,
)
from repro.obs.trace import (
    TRACE_HEADER,
    JsonlSpanExporter,
    Span,
    TraceContext,
    Tracer,
    format_trace_header,
    parse_trace_header,
)

# NOTE: the module global ``ACTIVE`` is deliberately not in __all__ —
# it is None whenever instrumentation is off; use ``active()`` to read
# it through a documented accessor.
__all__ = [
    "Counter",
    "EngineInstruments",
    "Gauge",
    "Histogram",
    "JsonlSpanExporter",
    "LATENCY_BUCKETS",
    "METRICS_CONTENT_TYPE",
    "MetricError",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "TRACE_HEADER",
    "TraceContext",
    "Tracer",
    "active",
    "format_trace_header",
    "inject_label",
    "instrument",
    "merge_expositions",
    "parse_exposition",
    "parse_trace_header",
    "render_registries",
    "scrape_registries",
    "valid_metric_name",
]


class EngineInstruments:
    """The engine-side metric bundle installed by :func:`instrument`.

    Creates every engine metric family on one registry up front, then
    exposes cheap recording helpers the hot paths call.  All helpers
    are safe to call from worker threads — the underlying metrics lock
    per-cell.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.registry = registry if registry is not None else REGISTRY
        self.tracer = tracer
        r = self.registry
        # core/search + translator
        self._search_runs = r.counter(
            "repro_search_runs_total",
            "Completed find_best_rule invocations.",
            labelnames=("kernel", "backend"),
        )
        self._search_nodes = r.counter(
            "repro_search_nodes_total",
            "Search tree nodes by outcome (visited vs pruned by the rule upper bound).",
            labelnames=("outcome",),
        )
        self._search_evals = r.counter(
            "repro_search_evaluations_total",
            "Candidate evaluations by outcome (evaluated vs skipped by the quality upper bound).",
            labelnames=("outcome",),
        )
        self._search_seconds = r.histogram(
            "repro_search_seconds",
            "Wall-clock seconds per find_best_rule invocation.",
            labelnames=("kernel",),
        )
        self._fit_seconds = r.histogram(
            "repro_fit_seconds",
            "Wall-clock seconds per translator fit.",
            labelnames=("method",),
        )
        self._fit_iterations = r.counter(
            "repro_fit_iterations_total",
            "Greedy cover iterations performed across translator fits.",
            labelnames=("method",),
        )
        # core/bitset
        self._bitset_dispatch = r.counter(
            "repro_bitset_dispatch_total",
            "Bitset batch-primitive dispatches by operation and backend.",
            labelnames=("op", "backend"),
        )
        # stream
        self._stream_rows = r.counter(
            "repro_stream_rows_total",
            "Stream buffer rows by operation (appended vs evicted).",
            labelnames=("op",),
        )
        self._stream_window = r.gauge(
            "repro_stream_window_rows",
            "Rows currently held in the stream buffer window.",
        )
        self._maintenance_events = r.counter(
            "repro_maintenance_events_total",
            "Maintenance loop events (check, drift, refit, publish).",
            labelnames=("event",),
        )
        self._maintenance_rows_seen = r.gauge(
            "repro_maintenance_rows_seen",
            "Rows consumed from the stream by the maintenance loop.",
        )
        # corpus
        self._corpus_blocks = r.counter(
            "repro_corpus_blocks_read_total",
            "Column-store blocks decoded from disk.",
        )
        self._corpus_bytes = r.counter(
            "repro_corpus_block_bytes_total",
            "Bytes of column-store block payload decoded from disk.",
        )
        self._corpus_pairs = r.counter(
            "repro_corpus_pair_candidates_total",
            "Pair candidates by outcome (scanned vs pruned by sketches).",
            labelnames=("outcome",),
        )
        # resilience
        self._supervisor_restarts = r.counter(
            "repro_supervisor_restarts_total",
            "Supervised task restarts.",
        )
        self._breaker_transitions = r.counter(
            "repro_breaker_transitions_total",
            "Circuit breaker state transitions (opened vs closed).",
            labelnames=("event",),
        )

    # -- recording helpers (one call each on instrumented hot paths) ----
    def observe_search(self, stats, seconds: float) -> None:
        """Record one completed search run from its ``SearchStats``."""
        kernel = str(getattr(stats, "kernel", "unknown"))
        backend = str(getattr(stats, "backend", "unknown"))
        self._search_runs.labels(kernel=kernel, backend=backend).inc()
        self._search_seconds.labels(kernel=kernel).observe(seconds)
        visited = getattr(stats, "nodes_visited", 0)
        pruned = getattr(stats, "nodes_pruned_rub", 0)
        evaluated = getattr(stats, "evaluations", 0)
        skipped = getattr(stats, "evaluations_skipped_qub", 0)
        if visited:
            self._search_nodes.labels(outcome="visited").inc(visited)
        if pruned:
            self._search_nodes.labels(outcome="pruned_rub").inc(pruned)
        if evaluated:
            self._search_evals.labels(outcome="evaluated").inc(evaluated)
        if skipped:
            self._search_evals.labels(outcome="skipped_qub").inc(skipped)

    def observe_fit(self, method: str, seconds: float, iterations: int) -> None:
        """Record one translator fit: duration plus greedy iterations."""
        self._fit_seconds.labels(method=method).observe(seconds)
        if iterations:
            self._fit_iterations.labels(method=method).inc(iterations)

    def count_bitset(self, op: str, backend: str) -> None:
        """Count one bitset batch-primitive dispatch."""
        self._bitset_dispatch.labels(op=op, backend=backend).inc()

    def stream_append(self, rows: int, window: int) -> None:
        """Record rows appended to the stream buffer and the new window size."""
        if rows:
            self._stream_rows.labels(op="appended").inc(rows)
        self._stream_window.set(window)

    def stream_evict(self, rows: int, window: int) -> None:
        """Record rows evicted from the stream buffer and the new window size."""
        if rows:
            self._stream_rows.labels(op="evicted").inc(rows)
        self._stream_window.set(window)

    def maintenance_event(self, event: str, rows_seen: int | None = None) -> None:
        """Count one maintenance loop event (check/drift/refit/publish)."""
        self._maintenance_events.labels(event=event).inc()
        if rows_seen is not None:
            self._maintenance_rows_seen.set(rows_seen)

    def corpus_blocks(self, blocks: int, nbytes: int) -> None:
        """Count column-store blocks (and payload bytes) decoded."""
        if blocks:
            self._corpus_blocks.inc(blocks)
        if nbytes:
            self._corpus_bytes.inc(nbytes)

    def corpus_scan(self, scanned: int, pruned: int) -> None:
        """Count pair candidates scanned vs pruned by sketches."""
        if scanned:
            self._corpus_pairs.labels(outcome="scanned").inc(scanned)
        if pruned:
            self._corpus_pairs.labels(outcome="pruned").inc(pruned)

    def supervisor_restart(self) -> None:
        """Count one supervised-task restart."""
        self._supervisor_restarts.inc()

    def breaker_event(self, event: str) -> None:
        """Count one circuit breaker transition (``opened`` or ``closed``)."""
        self._breaker_transitions.labels(event=event).inc()


#: The installed instrument bundle, or ``None`` when observability is
#: off.  Hot paths read this once per call — the entire disabled-mode
#: cost of the layer.
ACTIVE: EngineInstruments | None = None

_INSTRUMENT_LOCK = threading.Lock()


def instrument(
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    enabled: bool = True,
) -> EngineInstruments | None:
    """Install (or clear) the process-wide engine instrumentation.

    With ``enabled=True`` builds an :class:`EngineInstruments` on
    ``registry`` (default: the process registry) and publishes it as
    :data:`ACTIVE`; with ``enabled=False`` clears :data:`ACTIVE` so the
    hooks cost a single attribute check again.  Returns the installed
    bundle (or ``None`` when disabling).
    """
    global ACTIVE
    with _INSTRUMENT_LOCK:
        if not enabled:
            ACTIVE = None
            return None
        ACTIVE = EngineInstruments(registry=registry, tracer=tracer)
        return ACTIVE


def active() -> EngineInstruments | None:
    """The currently installed instrument bundle (``None`` when disabled)."""
    return ACTIVE


def scrape_registries(registries: Iterable[MetricsRegistry]) -> str:
    """Render several registries as one scrape document (first name wins).

    Thin alias of :func:`repro.obs.metrics.render_registries` so serving
    code can build a ``/metrics`` body from its private registry plus
    the process default without importing the metrics module directly.
    """
    return render_registries(registries)
