"""Dependency-free metrics registry with Prometheus text exposition.

The observability layer's accounting core: :class:`Counter`,
:class:`Gauge` and :class:`Histogram` metrics, optionally labelled,
collected by a :class:`MetricsRegistry` and rendered in the Prometheus
text exposition format (version 0.0.4) for ``GET /metrics`` scrapes.
Everything here is standard library only — the serving tier must not
grow a dependency just to be observable.

Design points:

* **Thread safety** — every metric guards its children and values with
  one lock; increments from worker threads (the micro-batcher runs
  predictor calls via ``asyncio.to_thread``) interleave with scrapes
  without tearing.  The property test in ``tests/test_obs.py`` hammers
  a counter from many threads while scraping concurrently.
* **Fixed log-scale latency buckets** — :data:`LATENCY_BUCKETS` doubles
  from 100 µs to ~13 s, so one bucket layout serves every latency
  histogram in the repo and dashboards can be written once.
* **Process default plus injectable instances** — module-level
  :data:`REGISTRY` is the process-wide default the engine hooks write
  to; tests (and each :class:`~repro.serve.server.PredictionService`)
  build private :class:`MetricsRegistry` instances so counters never
  bleed between fixtures or replicas.
* **Round-trippable exposition** — :func:`parse_exposition` parses
  exactly what :meth:`MetricsRegistry.render` emits; the replica router
  uses it to aggregate per-replica scrapes (:func:`inject_label` +
  :func:`merge_expositions`) and ``scripts/check_metrics.py`` uses it
  to lint live scrapes in CI.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from collections.abc import Callable, Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "METRICS_CONTENT_TYPE",
    "MetricError",
    "MetricsRegistry",
    "REGISTRY",
    "inject_label",
    "merge_expositions",
    "parse_exposition",
    "render_registries",
    "valid_metric_name",
]

#: ``Content-Type`` of a Prometheus text-format scrape response.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Fixed log-scale latency buckets (seconds): 100 µs doubling to ~13 s.
#: One shared layout keeps every latency histogram in the repo
#: comparable and lets the bucket-boundary tests be exact.
LATENCY_BUCKETS = tuple(0.0001 * 2**k for k in range(18))

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


class MetricError(ValueError):
    """A metric was declared or used inconsistently (name, kind, labels)."""


def valid_metric_name(name: str) -> bool:
    """Whether ``name`` satisfies the Prometheus metric-name grammar."""
    return bool(_METRIC_NAME.match(name))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _format_value(value: float) -> str:
    """Render a sample value: integers plainly, floats via ``repr``."""
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def _format_bucket(bound: float) -> str:
    if bound == math.inf:
        return "+Inf"
    return f"{bound:.10g}"


class _Metric:
    """Shared machinery of the three metric kinds (do not instantiate)."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
    ) -> None:
        if not valid_metric_name(name):
            raise MetricError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_NAME.match(label) or label.startswith("__"):
                raise MetricError(f"invalid label name {label!r}")
        if len(set(labelnames)) != len(labelnames):
            raise MetricError(f"duplicate label names in {tuple(labelnames)}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}
        if not self.labelnames:
            # The unlabelled child: the metric itself proxies to it.
            self._children[()] = self._new_child()

    # -- child management ----------------------------------------------
    def _new_child(self):
        raise NotImplementedError

    def labels(self, **labelvalues: str):
        """Return (creating on first use) the child for one label set."""
        if set(labelvalues) != set(self.labelnames):
            raise MetricError(
                f"metric {self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[label]) for label in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._new_child()
            return child

    def _child(self):
        if self.labelnames:
            raise MetricError(
                f"metric {self.name} is labelled {self.labelnames}; "
                "use .labels(...) first"
            )
        return self._children[()]

    def _snapshot(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return list(self._children.items())

    def samples(self) -> list[tuple[str, dict[str, str], float]]:
        """Flat ``(sample name, labels, value)`` triples for exposition."""
        out: list[tuple[str, dict[str, str], float]] = []
        for key, child in self._snapshot():
            labels = dict(zip(self.labelnames, key))
            out.extend(child.child_samples(self.name, labels))
        return out


class _CounterChild:
    """One (label set) cell of a :class:`Counter`."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise MetricError("counters can only increase")
        with self._lock:
            self._value += amount

    def _set_total(self, value: float) -> None:
        """Internal monotonic assignment (``ModelStats`` field setters)."""
        if value < 0:
            raise MetricError("counters cannot go negative")
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        """Current cumulative value."""
        with self._lock:
            return self._value

    def child_samples(self, name, labels):
        """Exposition triples of this cell."""
        return [(name, labels, self.value)]


class Counter(_Metric):
    """A monotonically increasing cumulative metric.

    Example::

        >>> from repro.obs.metrics import Counter
        >>> requests = Counter("demo_requests_total", "Requests served.",
        ...                    labelnames=("route",))
        >>> requests.labels(route="/predict").inc()
        >>> requests.labels(route="/predict").value
        1
    """

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1) -> None:
        """Increment the (unlabelled) counter by ``amount``."""
        self._child().inc(amount)

    def _set_total(self, value: float) -> None:
        """Internal monotonic assignment (legacy ``+=`` attribute API)."""
        self._child()._set_total(value)

    @property
    def value(self) -> float:
        """Current value of the (unlabelled) counter."""
        return self._child().value


class _GaugeChild:
    """One (label set) cell of a :class:`Gauge`."""

    __slots__ = ("_value", "_function", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._function: Callable[[], float] | None = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        """Subtract ``amount`` from the gauge."""
        with self._lock:
            self._value -= amount

    def set_function(self, function: Callable[[], float]) -> None:
        """Evaluate ``function()`` at scrape time instead of a stored value."""
        with self._lock:
            self._function = function

    @property
    def value(self) -> float:
        """Current value (calling the callback when one is installed)."""
        with self._lock:
            function = self._function
            if function is None:
                return self._value
        return float(function())

    def child_samples(self, name, labels):
        """Exposition triples of this cell."""
        return [(name, labels, self.value)]


class Gauge(_Metric):
    """A metric that can go up and down (or reflect a live callback).

    Example::

        >>> from repro.obs.metrics import Gauge
        >>> depth = Gauge("demo_queue_depth", "Rows queued.")
        >>> depth.set(3); depth.dec(); depth.value
        2.0
    """

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        """Set the (unlabelled) gauge to ``value``."""
        self._child().set(value)

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` to the (unlabelled) gauge."""
        self._child().inc(amount)

    def dec(self, amount: float = 1) -> None:
        """Subtract ``amount`` from the (unlabelled) gauge."""
        self._child().dec(amount)

    def set_function(self, function: Callable[[], float]) -> None:
        """Evaluate ``function()`` at scrape time (unlabelled gauge)."""
        self._child().set_function(function)

    @property
    def value(self) -> float:
        """Current value of the (unlabelled) gauge."""
        return self._child().value


class _HistogramChild:
    """One (label set) cell of a :class:`Histogram`."""

    __slots__ = ("_bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation.

        A value exactly on a bucket boundary lands in that bucket —
        Prometheus ``le`` semantics are *less than or equal*.
        """
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Total number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def child_samples(self, name, labels):
        """Exposition triples: cumulative buckets, ``_sum``, ``_count``."""
        with self._lock:
            counts = list(self._counts)
            total_sum, total_count = self._sum, self._count
        out = []
        cumulative = 0
        for bound, bucket in zip((*self._bounds, math.inf), counts):
            cumulative += bucket
            out.append(
                (
                    f"{name}_bucket",
                    {**labels, "le": _format_bucket(bound)},
                    cumulative,
                )
            )
        out.append((f"{name}_sum", dict(labels), total_sum))
        out.append((f"{name}_count", dict(labels), total_count))
        return out


class Histogram(_Metric):
    """Observations bucketed over fixed bounds (defaults to latency buckets).

    Example::

        >>> from repro.obs.metrics import Histogram
        >>> h = Histogram("demo_seconds", "Latency.", buckets=(0.1, 1.0))
        >>> h.observe(0.1)   # boundary value lands in the 0.1 bucket
        >>> h.count
        1
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise MetricError("bucket bounds must be strictly increasing")
        if math.inf in bounds:
            bounds = bounds[:-1]  # +Inf is implicit
        self.buckets = bounds
        super().__init__(name, help, labelnames)

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        """Record one observation on the (unlabelled) histogram."""
        self._child().observe(value)

    @property
    def count(self) -> int:
        """Observations recorded on the (unlabelled) histogram."""
        return self._child().count

    @property
    def sum(self) -> float:
        """Sum of values observed on the (unlabelled) histogram."""
        return self._child().sum


class MetricsRegistry:
    """A named collection of metrics with text-format exposition.

    ``counter`` / ``gauge`` / ``histogram`` are idempotent get-or-create
    accessors: asking twice for the same name returns the same object,
    and asking with a different kind or label set raises
    :class:`MetricError` (a silent redefinition would corrupt scrapes).

    Example::

        >>> from repro.obs.metrics import MetricsRegistry
        >>> registry = MetricsRegistry()
        >>> registry.counter("demo_total", "Demo.").inc(2)
        >>> "demo_total 2" in registry.render()
        True
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    # -- registration ---------------------------------------------------
    def register(self, metric: _Metric) -> _Metric:
        """Add a metric built elsewhere; name collisions raise."""
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None and existing is not metric:
                raise MetricError(
                    f"metric {metric.name!r} is already registered"
                )
            self._metrics[metric.name] = metric
        return metric

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(
                    labelnames
                ):
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        """Get or create a :class:`Histogram` (bounds fixed on creation)."""
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    # -- introspection --------------------------------------------------
    def metrics(self) -> list[_Metric]:
        """Registered metrics, sorted by name."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    # -- exposition -----------------------------------------------------
    def render(self) -> str:
        """Prometheus text-format exposition of every registered metric."""
        return render_registries([self])


def render_registries(registries: Iterable[MetricsRegistry]) -> str:
    """Render several registries as one exposition document.

    When two registries carry the same metric name, the first one wins —
    a service scraping its private registry plus the process default
    never emits a duplicate family.
    """
    lines: list[str] = []
    seen: set[str] = set()
    for registry in registries:
        for metric in registry.metrics():
            if metric.name in seen:
                continue
            seen.add(metric.name)
            help_text = metric.help.replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {metric.name} {help_text}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for sample_name, labels, value in metric.samples():
                lines.append(_render_sample(sample_name, labels, value))
    return "\n".join(lines) + ("\n" if lines else "")


def _render_sample(name: str, labels: dict[str, str], value: float) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label(str(labels[key]))}"'
            for key in labels
        )
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def parse_exposition(
    text: str,
) -> tuple[dict[str, tuple[str, str]], list[tuple[str, dict[str, str], float]]]:
    """Parse a text-format exposition into ``(families, samples)``.

    ``families`` maps each announced metric name to ``(kind, help)``;
    ``samples`` is a list of ``(sample name, labels, value)`` triples in
    document order.  Raises ``ValueError`` on any malformed line — the
    CI lint leans on this to prove scrapes are well-formed.
    """
    families: dict[str, tuple[str, str]] = {}
    helps: dict[str, str] = {}
    samples: list[tuple[str, dict[str, str], float]] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP ") :]
            name, _, help_text = rest.partition(" ")
            helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE ") :]
            name, _, kind = rest.partition(" ")
            kind = kind.strip()
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"unknown metric type in line {raw!r}")
            families[name] = (kind, helps.get(name, ""))
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line {raw!r}")
        name, label_body, value_text = match.groups()
        labels: dict[str, str] = {}
        if label_body:
            consumed = 0
            for pair in _LABEL_PAIR.finditer(label_body):
                labels[pair.group(1)] = _unescape_label(pair.group(2))
                consumed = pair.end()
            remainder = label_body[consumed:].strip().strip(",")
            if remainder:
                raise ValueError(f"malformed labels in line {raw!r}")
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            value = float(value_text)  # raises ValueError when malformed
        samples.append((name, labels, value))
    return families, samples


def inject_label(text: str, label: str, value: str) -> str:
    """Add ``label="value"`` to every sample of an exposition document.

    The replica router uses this to mark each worker's scrape with
    ``replica="wN"`` before merging; an existing label of the same name
    is overwritten (the router's view of identity wins).
    """
    if not _LABEL_NAME.match(label):
        raise MetricError(f"invalid label name {label!r}")
    families, samples = parse_exposition(text)
    relabelled = [
        (name, {**labels, label: value}, sample_value)
        for name, labels, sample_value in samples
    ]
    return _render_parsed(families, relabelled)


def merge_expositions(texts: Iterable[str]) -> str:
    """Merge several exposition documents into one.

    Samples are concatenated grouped by family; the first document to
    announce a family's ``TYPE``/``HELP`` wins.  Callers are expected to
    have disambiguated colliding series via :func:`inject_label`.
    """
    families: dict[str, tuple[str, str]] = {}
    samples: list[tuple[str, dict[str, str], float]] = []
    for text in texts:
        doc_families, doc_samples = parse_exposition(text)
        for name, meta in doc_families.items():
            families.setdefault(name, meta)
        samples.extend(doc_samples)
    return _render_parsed(families, samples)


def _family_of(sample_name: str, families: dict[str, tuple[str, str]]) -> str:
    if sample_name in families:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families:
                return base
    return sample_name


def _render_parsed(families, samples) -> str:
    grouped: dict[str, list[tuple[str, dict[str, str], float]]] = {}
    order: list[str] = []
    for sample in samples:
        family = _family_of(sample[0], families)
        if family not in grouped:
            grouped[family] = []
            order.append(family)
        grouped[family].append(sample)
    lines: list[str] = []
    for family in order:
        kind, help_text = families.get(family, ("untyped", ""))
        lines.append(f"# HELP {family} {help_text}")
        lines.append(f"# TYPE {family} {kind}")
        for name, labels, value in grouped[family]:
            lines.append(_render_sample(name, labels, value))
    return "\n".join(lines) + ("\n" if lines else "")


#: Process-wide default registry: the engine profiling hooks
#: (:func:`repro.obs.instrument`) register their metrics here unless an
#: explicit registry is injected.
REGISTRY = MetricsRegistry()
