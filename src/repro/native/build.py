"""On-demand compilation of the native kernel with the system C compiler.

The shared object is built once per *content* — the cache key hashes the
C source, the compiler identity and the flag set — under a per-user build
directory, so repeated imports, test runs and concurrent processes reuse
one artifact.  Builds are atomic (temp name + ``os.replace``), so two
processes racing the same key cannot hand out a half-written library.

No compiler, a failing compile, or ``REPRO_NATIVE_DISABLE=1`` all
degrade to :class:`NativeBuildError`; the dispatch layer in
:mod:`repro.core.bitset` treats that as "backend unavailable" and the
``auto`` backend falls back to the numpy paths — the library never
*requires* a toolchain.

Environment knobs::

    REPRO_NATIVE_DISABLE=1   pretend no compiler exists (forces fallback)
    REPRO_NATIVE_CC=cc       compiler executable to use
    REPRO_NATIVE_CACHE=DIR   build-cache directory
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

__all__ = ["NativeBuildError", "build_library", "compiler_path", "source_path"]

#: Exported C symbols must match this stamp (see kernel.c).
ABI_VERSION = 1

_BASE_FLAGS = ["-O3", "-fPIC", "-shared", "-std=c99"]
#: Tried first, dropped if the compiler rejects them (portability).
_OPT_FLAGS = ["-march=native", "-funroll-loops"]

_COMPILER_CANDIDATES = ("cc", "gcc", "clang")


class NativeBuildError(RuntimeError):
    """The native kernel could not be compiled (no/broken C toolchain)."""


def source_path() -> Path:
    """Path of the bundled C source."""
    return Path(__file__).resolve().parent / "kernel.c"


def compiler_path() -> str | None:
    """Resolve the C compiler executable, or ``None`` when there is none.

    Honours ``REPRO_NATIVE_CC`` first, then tries ``cc``/``gcc``/``clang``
    on ``PATH``; ``REPRO_NATIVE_DISABLE=1`` reports no compiler at all.
    """
    if os.environ.get("REPRO_NATIVE_DISABLE", "").strip() not in ("", "0"):
        return None
    override = os.environ.get("REPRO_NATIVE_CC")
    if override:
        return shutil.which(override) or override
    for candidate in _COMPILER_CANDIDATES:
        found = shutil.which(candidate)
        if found:
            return found
    return None


def cache_dir() -> Path:
    """Build-cache directory (created on demand)."""
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro-native"


def _cache_key(source: bytes, cc: str, flags: list[str]) -> str:
    digest = hashlib.sha256()
    digest.update(source)
    digest.update(cc.encode("utf-8", "replace"))
    digest.update(" ".join(flags).encode("utf-8"))
    digest.update(f"abi={ABI_VERSION}".encode("ascii"))
    return digest.hexdigest()[:16]


def _compile(cc: str, source: Path, output: Path, flags: list[str]) -> None:
    command = [cc, *flags, "-o", str(output), str(source)]
    result = subprocess.run(
        command, capture_output=True, text=True, timeout=120
    )
    if result.returncode != 0:
        raise NativeBuildError(
            f"C compile failed ({' '.join(command)}):\n{result.stderr.strip()}"
        )


def build_library(force: bool = False) -> Path:
    """Compile (or reuse) the shared object; returns its path.

    Raises :class:`NativeBuildError` when no compiler is available or the
    compile fails — callers treat that as "native backend unavailable".
    """
    cc = compiler_path()
    if cc is None:
        raise NativeBuildError(
            "no C compiler found (tried $REPRO_NATIVE_CC, cc, gcc, clang; "
            "REPRO_NATIVE_DISABLE honoured) — the numpy backend remains "
            "fully functional"
        )
    source = source_path()
    try:
        source_bytes = source.read_bytes()
    except OSError as error:
        raise NativeBuildError(f"cannot read kernel source {source}: {error}") from error
    flags = _BASE_FLAGS + _OPT_FLAGS
    key = _cache_key(source_bytes, cc, flags)
    directory = cache_dir()
    target = directory / f"repro-kernel-{key}.so"
    if target.is_file() and not force:
        return target
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError as error:
        raise NativeBuildError(f"cannot create build cache {directory}: {error}") from error
    handle, temp_name = tempfile.mkstemp(
        dir=directory, prefix=".build-", suffix=".so"
    )
    os.close(handle)
    try:
        try:
            _compile(cc, source, Path(temp_name), flags)
        except NativeBuildError:
            # Retry without the optional flags (-march=native is not
            # universal); a second failure is a real toolchain problem.
            flags = list(_BASE_FLAGS)
            _compile(cc, source, Path(temp_name), flags)
            key = _cache_key(source_bytes, cc, flags)
            target = directory / f"repro-kernel-{key}.so"
            if target.is_file() and not force:
                return target
        os.replace(temp_name, target)
    except (OSError, subprocess.SubprocessError) as error:
        raise NativeBuildError(f"native build failed: {error}") from error
    finally:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
    return target
