"""Native fused-popcount backend (optional, compiled on demand).

The packed-bitset kernel of :mod:`repro.core.bitset` tops out on BLAS
for very large transaction counts: the batched child metrics of the
exact search and the bulk regime of the compiled predictor reduce to
dense matrix products whose operands are 64x larger than the packed
words they were derived from.  This package lifts that floor with a
small dependency-free C kernel (``kernel.c``) exposing

* fused AND + popcount over row batches,
* fixed-point (exact integer) weighted popcounts — the same quantized
  scoring the search already uses,
* a packed subset test and a weighted-OR/consequent-union primitive,
* a fused AND-reduce + popcount for the streaming buffer's tracked
  supports.

The shared object is compiled once with the system ``cc`` and cached by
content hash (:mod:`repro.native.build`); when no compiler is present
the build fails *softly* — :func:`available` returns ``False``,
:func:`native_error` explains why, and every consumer's ``auto`` backend
silently keeps using the numpy paths, which remain bit-identical.
Backend selection is threaded through
:func:`repro.core.bitset.resolve_backend` (``backend="numpy"|"native"|
"auto"``), mirroring the search's ``kernel=`` selector.
"""

from __future__ import annotations

import threading

from repro.native.api import NativeKernel
from repro.native.build import NativeBuildError, build_library, compiler_path

__all__ = [
    "NativeBuildError",
    "NativeKernel",
    "available",
    "build_info",
    "load_kernel",
    "native_error",
    "reset",
]

_lock = threading.Lock()
_state: dict[str, object] = {"kernel": None, "error": None, "attempted": False}


def load_kernel() -> NativeKernel:
    """Compile (once) and load the native kernel.

    The first call per process attempts the build; the outcome — a
    loaded :class:`~repro.native.api.NativeKernel` or a
    :class:`~repro.native.build.NativeBuildError` — is cached, so
    repeated calls are cheap either way.  Raises the cached error when
    the toolchain is unavailable.
    """
    with _lock:
        if not _state["attempted"]:
            _state["attempted"] = True
            try:
                _state["kernel"] = NativeKernel(build_library())
            except NativeBuildError as error:
                _state["error"] = error
            except OSError as error:  # dlopen of a foreign/corrupt object
                _state["error"] = NativeBuildError(
                    f"compiled kernel failed to load: {error}"
                )
        if _state["kernel"] is None:
            raise _state["error"]  # type: ignore[misc]
        return _state["kernel"]  # type: ignore[return-value]


def available() -> bool:
    """Whether the native backend can be used in this process."""
    try:
        load_kernel()
    except NativeBuildError:
        return False
    return True


def native_error() -> str | None:
    """Why the native backend is unavailable (``None`` when it works)."""
    if available():
        return None
    return str(_state["error"])


def build_info() -> dict[str, object]:
    """Diagnostics: availability, compiler, library path, ABI version."""
    info: dict[str, object] = {
        "available": available(),
        "compiler": compiler_path(),
    }
    kernel = _state["kernel"]
    if isinstance(kernel, NativeKernel):
        info["library"] = str(kernel.path)
        info["abi_version"] = kernel.abi_version
    else:
        info["error"] = native_error()
    return info


def reset() -> None:
    """Forget the cached build outcome (tests re-probe the toolchain)."""
    with _lock:
        _state["kernel"] = None
        _state["error"] = None
        _state["attempted"] = False
