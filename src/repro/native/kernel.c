/* Fused popcount kernels over packed uint64 transaction sets.
 *
 * Compiled on demand by repro.native.build with the system C compiler and
 * loaded through ctypes (repro.native.api).  Everything here is exact
 * integer arithmetic over the same packed word layout that
 * repro.core.bitset produces (64 transactions per little-endian word,
 * padding bits zero), so every function is bit-identical to its numpy
 * reference path in repro/core/bitset.py.
 *
 * Weight tables are fixed-point int64 vectors laid out padded to
 * n_words * 64 entries (the layout of bitset.weight_table), with the
 * padding entries zero; the callers guarantee every partial sum stays far
 * below 2**51 (see repro.core.search._Quantized), so the int64
 * accumulators can never overflow and the results convert exactly to the
 * float64 integers the numpy paths carry.
 *
 * No external dependencies, C99, single translation unit.
 */

#include <stdint.h>

#if defined(__GNUC__) || defined(__clang__)
#define REPRO_POPCOUNT(x) ((int64_t)__builtin_popcountll(x))
#define REPRO_CTZ(x) ((int64_t)__builtin_ctzll(x))
#define REPRO_EXPORT __attribute__((visibility("default")))
#else
static int64_t repro_popcount_fallback(uint64_t x) {
    x = x - ((x >> 1) & 0x5555555555555555ULL);
    x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
    x = (x + (x >> 4)) & 0x0F0F0F0F0F0F0F0FULL;
    return (int64_t)((x * 0x0101010101010101ULL) >> 56);
}
static int64_t repro_ctz_fallback(uint64_t x) {
    int64_t n = 0;
    while (!(x & 1ULL)) { x >>= 1; ++n; }
    return n;
}
#define REPRO_POPCOUNT(x) repro_popcount_fallback(x)
#define REPRO_CTZ(x) repro_ctz_fallback(x)
#define REPRO_EXPORT
#endif

/* Bumped whenever an exported signature changes; repro.native.build folds
 * it into the cache key so a stale shared object is never reused. */
REPRO_EXPORT int64_t repro_abi_version(void) { return 1; }

/* Per-row popcount of rows[i] & mask (mask == NULL: plain popcount). */
REPRO_EXPORT void repro_and_popcount(
    const uint64_t *rows, int64_t n_rows, int64_t n_words,
    const uint64_t *mask, int64_t *out)
{
    int64_t i, w;
    for (i = 0; i < n_rows; ++i) {
        const uint64_t *row = rows + i * n_words;
        int64_t count = 0;
        if (mask) {
            for (w = 0; w < n_words; ++w)
                count += REPRO_POPCOUNT(row[w] & mask[w]);
        } else {
            for (w = 0; w < n_words; ++w)
                count += REPRO_POPCOUNT(row[w]);
        }
        out[i] = count;
    }
}

/* Fixed-point weighted popcount of one packed mask: the sum of
 * table[bit] over the set bits.  table has n_words * 64 entries. */
REPRO_EXPORT int64_t repro_weighted_popcount(
    const uint64_t *words, int64_t n_words, const int64_t *table)
{
    int64_t w, total = 0;
    for (w = 0; w < n_words; ++w) {
        uint64_t word = words[w];
        const int64_t *row = table + w * 64;
        while (word) {
            total += row[REPRO_CTZ(word)];
            word &= word - 1;
        }
    }
    return total;
}

/* Batched per-child metrics of one search frame: for every candidate row
 * (a packed item transaction set) compute, over new = row & supp,
 *
 *   out_count[i] = |new|
 *   out_joint[i] = |new & supp_other|
 *   out_gain[i]  = sum of gain_table over the set bits of new
 *   out_wsum[i]  = sum of wsum_table over the set bits of new
 *                  (skipped when wsum_table == NULL)
 *
 * in a single pass over the packed words — the fused replacement for the
 * bitset search kernel's dense 4-column GEMM per node. */
REPRO_EXPORT void repro_child_metrics(
    const uint64_t *rows, int64_t n_rows, int64_t n_words,
    const uint64_t *supp, const uint64_t *supp_other,
    const int64_t *wsum_table, const int64_t *gain_table,
    int64_t *out_wsum, int64_t *out_gain,
    int64_t *out_count, int64_t *out_joint)
{
    int64_t i, w;
    for (i = 0; i < n_rows; ++i) {
        const uint64_t *row = rows + i * n_words;
        int64_t count = 0, joint = 0, gain = 0, wsum = 0;
        for (w = 0; w < n_words; ++w) {
            uint64_t word = row[w] & supp[w];
            if (!word)
                continue;
            count += REPRO_POPCOUNT(word);
            joint += REPRO_POPCOUNT(word & supp_other[w]);
            {
                const int64_t *gain_row = gain_table + w * 64;
                uint64_t bits = word;
                if (wsum_table) {
                    const int64_t *wsum_row = wsum_table + w * 64;
                    while (bits) {
                        int64_t b = REPRO_CTZ(bits);
                        gain += gain_row[b];
                        wsum += wsum_row[b];
                        bits &= bits - 1;
                    }
                } else {
                    while (bits) {
                        gain += gain_row[REPRO_CTZ(bits)];
                        bits &= bits - 1;
                    }
                }
            }
        }
        if (out_wsum)
            out_wsum[i] = wsum;
        out_gain[i] = gain;
        out_count[i] = count;
        out_joint[i] = joint;
    }
}

/* Packed subset test: out[i * n_sets + r] = 1 iff sets[r] is a subset of
 * rows[i] (rows[i] & sets[r] == sets[r]), with early exit per pair. */
REPRO_EXPORT void repro_subset_match(
    const uint64_t *rows, int64_t n_rows,
    const uint64_t *sets, int64_t n_sets,
    int64_t n_words, uint8_t *out)
{
    int64_t i, r, w;
    for (i = 0; i < n_rows; ++i) {
        const uint64_t *row = rows + i * n_words;
        uint8_t *flags = out + i * n_sets;
        for (r = 0; r < n_sets; ++r) {
            const uint64_t *set = sets + r * n_words;
            uint8_t ok = 1;
            for (w = 0; w < n_words; ++w) {
                if ((row[w] & set[w]) != set[w]) {
                    ok = 0;
                    break;
                }
            }
            flags[r] = ok;
        }
    }
}

/* Weighted OR / consequent union: out[i] = OR of cons[r] over the rules r
 * with fired[i * n_rules + r] set. */
REPRO_EXPORT void repro_or_union(
    const uint8_t *fired, int64_t n_rows, int64_t n_rules,
    const uint64_t *cons, int64_t n_words, uint64_t *out)
{
    int64_t i, r, w;
    for (i = 0; i < n_rows; ++i) {
        const uint8_t *flags = fired + i * n_rules;
        uint64_t *acc = out + i * n_words;
        for (w = 0; w < n_words; ++w)
            acc[w] = 0;
        for (r = 0; r < n_rules; ++r) {
            if (flags[r]) {
                const uint64_t *set = cons + r * n_words;
                for (w = 0; w < n_words; ++w)
                    acc[w] |= set[w];
            }
        }
    }
}

/* Fused predict: subset test and consequent union in one pass, never
 * materialising the fired matrix.  out must hold n_rows * n_words_tgt
 * words; it is zeroed here. */
REPRO_EXPORT void repro_match_union(
    const uint64_t *rows, int64_t n_rows, int64_t n_words_src,
    const uint64_t *ant, const uint64_t *cons,
    int64_t n_rules, int64_t n_words_tgt, uint64_t *out)
{
    int64_t i, r, w;
    for (i = 0; i < n_rows; ++i) {
        const uint64_t *row = rows + i * n_words_src;
        uint64_t *acc = out + i * n_words_tgt;
        for (w = 0; w < n_words_tgt; ++w)
            acc[w] = 0;
        for (r = 0; r < n_rules; ++r) {
            const uint64_t *a = ant + r * n_words_src;
            uint8_t ok = 1;
            for (w = 0; w < n_words_src; ++w) {
                if ((row[w] & a[w]) != a[w]) {
                    ok = 0;
                    break;
                }
            }
            if (ok) {
                const uint64_t *set = cons + r * n_words_tgt;
                for (w = 0; w < n_words_tgt; ++w)
                    acc[w] |= set[w];
            }
        }
    }
}

/* AND-reduce n_rows packed rows into out and return its popcount — the
 * streaming buffer's fused tracked-support update.  n_rows must be >= 1. */
REPRO_EXPORT int64_t repro_and_reduce(
    const uint64_t *rows, int64_t n_rows, int64_t n_words, uint64_t *out)
{
    int64_t i, w, count = 0;
    for (w = 0; w < n_words; ++w)
        out[w] = rows[w];
    for (i = 1; i < n_rows; ++i) {
        const uint64_t *row = rows + i * n_words;
        for (w = 0; w < n_words; ++w)
            out[w] &= row[w];
    }
    for (w = 0; w < n_words; ++w)
        count += REPRO_POPCOUNT(out[w]);
    return count;
}

/* Grouped AND-reduce: rows holds n_groups consecutive row groups whose
 * boundaries are offsets[0] .. offsets[n_groups] (offsets[0] == 0);
 * group g AND-reduces into out[g] with its popcount in counts[g].  One
 * call updates every tracked itemset of a stream-buffer side, so the
 * per-call overhead amortises over all of them. */
REPRO_EXPORT void repro_and_reduce_many(
    const uint64_t *rows, const int64_t *offsets, int64_t n_groups,
    int64_t n_words, uint64_t *out, int64_t *counts)
{
    int64_t g, i, w;
    for (g = 0; g < n_groups; ++g) {
        const uint64_t *first = rows + offsets[g] * n_words;
        uint64_t *acc = out + g * n_words;
        int64_t count = 0;
        for (w = 0; w < n_words; ++w)
            acc[w] = first[w];
        for (i = offsets[g] + 1; i < offsets[g + 1]; ++i) {
            const uint64_t *row = rows + i * n_words;
            for (w = 0; w < n_words; ++w)
                acc[w] &= row[w];
        }
        for (w = 0; w < n_words; ++w)
            count += REPRO_POPCOUNT(acc[w]);
        counts[g] = count;
    }
}
