"""ctypes bindings for the compiled popcount kernel.

:class:`NativeKernel` is a thin typed wrapper over the shared object
that :mod:`repro.native.build` compiles: every method validates dtypes
and contiguity, allocates the output array, and hands raw pointers to
the C functions (ctypes drops the GIL for the duration of each call, so
the thread-sharded search parallelises through here).  All semantics —
word layout, weight-table layout, integer exactness — are documented on
the C source and on the numpy reference implementations in
:mod:`repro.core.bitset`, which these calls are bit-identical to.
"""

from __future__ import annotations

import ctypes
from pathlib import Path

import numpy as np

__all__ = ["NativeKernel"]

_U64 = ctypes.POINTER(ctypes.c_uint64)
_I64 = ctypes.POINTER(ctypes.c_int64)
_U8 = ctypes.POINTER(ctypes.c_uint8)


def _u64(array: np.ndarray) -> "ctypes._Pointer":
    return array.ctypes.data_as(_U64)


def _i64(array: np.ndarray) -> "ctypes._Pointer":
    return array.ctypes.data_as(_I64)


def _u8(array: np.ndarray) -> "ctypes._Pointer":
    return array.ctypes.data_as(_U8)


def _as_words(array: np.ndarray, name: str) -> np.ndarray:
    out = np.ascontiguousarray(array, dtype=np.uint64)
    if out.ndim > 2:
        raise ValueError(f"{name} must be 1- or 2-dimensional")
    return out


def _as_table(array: np.ndarray, n_words: int, name: str) -> np.ndarray:
    out = np.ascontiguousarray(array, dtype=np.int64)
    if out.size != n_words * 64:
        raise ValueError(
            f"{name} must have n_words * 64 = {n_words * 64} entries, "
            f"got {out.size}"
        )
    return out


class NativeKernel:
    """Typed handle on one loaded build of the C kernel."""

    def __init__(self, library_path: Path) -> None:
        self.path = Path(library_path)
        lib = ctypes.CDLL(str(self.path))
        lib.repro_abi_version.restype = ctypes.c_int64
        lib.repro_abi_version.argtypes = []
        lib.repro_and_popcount.restype = None
        lib.repro_and_popcount.argtypes = [
            _U64, ctypes.c_int64, ctypes.c_int64, _U64, _I64,
        ]
        lib.repro_weighted_popcount.restype = ctypes.c_int64
        lib.repro_weighted_popcount.argtypes = [_U64, ctypes.c_int64, _I64]
        lib.repro_child_metrics.restype = None
        lib.repro_child_metrics.argtypes = [
            _U64, ctypes.c_int64, ctypes.c_int64,
            _U64, _U64, _I64, _I64, _I64, _I64, _I64, _I64,
        ]
        lib.repro_subset_match.restype = None
        lib.repro_subset_match.argtypes = [
            _U64, ctypes.c_int64, _U64, ctypes.c_int64, ctypes.c_int64, _U8,
        ]
        lib.repro_or_union.restype = None
        lib.repro_or_union.argtypes = [
            _U8, ctypes.c_int64, ctypes.c_int64, _U64, ctypes.c_int64, _U64,
        ]
        lib.repro_match_union.restype = None
        lib.repro_match_union.argtypes = [
            _U64, ctypes.c_int64, ctypes.c_int64,
            _U64, _U64, ctypes.c_int64, ctypes.c_int64, _U64,
        ]
        lib.repro_and_reduce.restype = ctypes.c_int64
        lib.repro_and_reduce.argtypes = [
            _U64, ctypes.c_int64, ctypes.c_int64, _U64,
        ]
        lib.repro_and_reduce_many.restype = None
        lib.repro_and_reduce_many.argtypes = [
            _U64, _I64, ctypes.c_int64, ctypes.c_int64, _U64, _I64,
        ]
        self._lib = lib
        self.abi_version = int(lib.repro_abi_version())

    # ------------------------------------------------------------------
    def and_popcount(
        self, rows: np.ndarray, mask: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-row ``popcount(rows[i] & mask)`` (``mask=None``: plain)."""
        rows = _as_words(rows, "rows")
        n_rows, n_words = rows.shape
        out = np.empty(n_rows, dtype=np.int64)
        if n_rows == 0:
            return out
        mask_ptr = None
        if mask is not None:
            mask = _as_words(mask, "mask")
            if mask.size != n_words:
                raise ValueError("mask and rows disagree on word count")
            mask_ptr = _u64(mask)
        self._lib.repro_and_popcount(
            _u64(rows), n_rows, n_words, mask_ptr, _i64(out)
        )
        return out

    def weighted_popcount(self, words: np.ndarray, table: np.ndarray) -> int:
        """Fixed-point weighted popcount of one packed mask."""
        words = _as_words(words, "words")
        n_words = words.size
        table = _as_table(table, n_words, "table")
        if n_words == 0:
            return 0
        return int(
            self._lib.repro_weighted_popcount(_u64(words), n_words, _i64(table))
        )

    def child_metrics(
        self,
        rows: np.ndarray,
        supp: np.ndarray,
        supp_other: np.ndarray,
        gain_table: np.ndarray,
        wsum_table: np.ndarray | None = None,
    ) -> tuple[np.ndarray | None, np.ndarray, np.ndarray, np.ndarray]:
        """Fused per-child search metrics; see ``repro_child_metrics``.

        Returns ``(wsums, gains, counts, joints)`` as int64 arrays
        (``wsums`` is ``None`` when ``wsum_table`` is).
        """
        rows = _as_words(rows, "rows")
        n_rows, n_words = rows.shape
        supp = _as_words(supp, "supp")
        supp_other = _as_words(supp_other, "supp_other")
        if supp.size != n_words or supp_other.size != n_words:
            raise ValueError("support masks and rows disagree on word count")
        gain_table = _as_table(gain_table, n_words, "gain_table")
        gains = np.empty(n_rows, dtype=np.int64)
        counts = np.empty(n_rows, dtype=np.int64)
        joints = np.empty(n_rows, dtype=np.int64)
        wsums: np.ndarray | None = None
        wsum_ptr = None
        wsum_out = None
        if wsum_table is not None:
            wsum_table = _as_table(wsum_table, n_words, "wsum_table")
            wsums = np.empty(n_rows, dtype=np.int64)
            wsum_ptr = _i64(wsum_table)
            wsum_out = _i64(wsums)
        if n_rows:
            self._lib.repro_child_metrics(
                _u64(rows), n_rows, n_words,
                _u64(supp), _u64(supp_other),
                wsum_ptr, _i64(gain_table),
                wsum_out, _i64(gains), _i64(counts), _i64(joints),
            )
        return wsums, gains, counts, joints

    def subset_match(self, rows: np.ndarray, sets: np.ndarray) -> np.ndarray:
        """Boolean ``(n_rows, n_sets)`` packed subset test."""
        rows = _as_words(rows, "rows")
        sets = _as_words(sets, "sets")
        n_rows, n_words = rows.shape
        n_sets = sets.shape[0]
        if sets.shape[1] != n_words:
            raise ValueError("rows and sets disagree on word count")
        out = np.empty((n_rows, n_sets), dtype=np.uint8)
        if n_rows and n_sets:
            self._lib.repro_subset_match(
                _u64(rows), n_rows, _u64(sets), n_sets, n_words, _u8(out)
            )
        return out.view(bool)

    def or_union(self, fired: np.ndarray, cons: np.ndarray) -> np.ndarray:
        """Per-row OR of the consequent word rows selected by ``fired``."""
        fired = np.ascontiguousarray(fired, dtype=np.uint8)
        cons = _as_words(cons, "cons")
        n_rows, n_rules = fired.shape
        if cons.shape[0] != n_rules:
            raise ValueError("fired and cons disagree on rule count")
        n_words = cons.shape[1]
        out = np.zeros((n_rows, n_words), dtype=np.uint64)
        if n_rows and n_rules and n_words:
            self._lib.repro_or_union(
                _u8(fired), n_rows, n_rules, _u64(cons), n_words, _u64(out)
            )
        return out

    def match_union(
        self, rows: np.ndarray, ant: np.ndarray, cons: np.ndarray
    ) -> np.ndarray:
        """Fused subset test + consequent union (the bulk predict path)."""
        rows = _as_words(rows, "rows")
        ant = _as_words(ant, "ant")
        cons = _as_words(cons, "cons")
        n_rows, n_words_src = rows.shape
        n_rules = ant.shape[0]
        if ant.shape[1] != n_words_src:
            raise ValueError("rows and antecedents disagree on word count")
        if cons.shape[0] != n_rules:
            raise ValueError("antecedents and consequents disagree on rule count")
        n_words_tgt = cons.shape[1]
        out = np.zeros((n_rows, n_words_tgt), dtype=np.uint64)
        if n_rows and n_words_tgt:
            self._lib.repro_match_union(
                _u64(rows), n_rows, n_words_src,
                _u64(ant), _u64(cons), n_rules, n_words_tgt, _u64(out),
            )
        return out

    def and_reduce(self, rows: np.ndarray) -> tuple[np.ndarray, int]:
        """AND-reduce packed rows; returns ``(region, popcount)``."""
        rows = _as_words(rows, "rows")
        n_rows, n_words = rows.shape
        if n_rows == 0:
            raise ValueError("and_reduce needs at least one row")
        out = np.empty(n_words, dtype=np.uint64)
        if n_words == 0:
            return out, 0
        count = self._lib.repro_and_reduce(_u64(rows), n_rows, n_words, _u64(out))
        return out, int(count)

    def and_reduce_many(
        self, rows: np.ndarray, offsets: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Grouped AND-reduce; returns ``(regions, counts)`` per group."""
        rows = _as_words(rows, "rows")
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        n_rows, n_words = rows.shape
        n_groups = offsets.size - 1
        if n_groups < 0 or offsets[0] != 0 or offsets[-1] != n_rows:
            raise ValueError("offsets must run from 0 to n_rows")
        out = np.empty((n_groups, n_words), dtype=np.uint64)
        counts = np.zeros(n_groups, dtype=np.int64)
        if n_groups and n_words:
            self._lib.repro_and_reduce_many(
                _u64(rows), _i64(offsets), n_groups, n_words,
                _u64(out), _i64(counts),
            )
        elif n_groups:
            out[:] = 0
        return out, counts

    def __repr__(self) -> str:
        return f"NativeKernel(path={str(self.path)!r}, abi={self.abi_version})"
