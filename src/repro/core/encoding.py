"""MDL encoded lengths for translation models (paper, Section 4).

Every item is assigned a Shannon-optimal code based on its empirical
probability of occurring in its view:

    P(I | D_L) = |{t in D : I in t_L}| / |D|,     L(I | D_L) = -log2 P(I | D_L)

Itemsets are encoded item by item; a rule additionally pays 1 bit for a
bidirectional direction marker or 2 bits for a unidirectional one.
Correction tables are encoded with the same per-item codes ("we should not
exploit any structure within one of the two views for compression",
Section 4.1).  Items that never occur get an infinite code length; they can
never appear in a rule or correction of an actual dataset, so all lengths
used in practice stay finite.

The three additive constants the paper explicitly disregards (the code
table itself, the framework of the correction tables, the framework of the
translation table) are likewise not included here.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.data.dataset import Side, TwoViewDataset
from repro.core.rules import Direction, TranslationRule
from repro.core.table import TranslationTable

__all__ = ["CodeLengthModel"]


class CodeLengthModel:
    """Per-item code lengths and the encoded-length functions built on them.

    Instances are immutable and tied to the dataset they were derived
    from; every length is expressed in bits.
    """

    def __init__(self, dataset: TwoViewDataset) -> None:
        self._dataset = dataset
        n = dataset.n_transactions
        if n == 0:
            raise ValueError("cannot build code lengths for an empty dataset")
        self.lengths_left = self._code_lengths(dataset.left, n)
        self.lengths_right = self._code_lengths(dataset.right, n)

    @staticmethod
    def _code_lengths(view: np.ndarray, n: int) -> np.ndarray:
        counts = view.sum(axis=0).astype(float)
        with np.errstate(divide="ignore"):
            lengths = -np.log2(counts / n)
        return lengths

    # ------------------------------------------------------------------
    # Primitive lengths
    # ------------------------------------------------------------------
    def lengths(self, side: Side) -> np.ndarray:
        """Per-item code length vector of a view."""
        return self.lengths_left if side is Side.LEFT else self.lengths_right

    def item_length(self, side: Side, item: int) -> float:
        """``L(I | D_side)`` in bits."""
        return float(self.lengths(side)[item])

    def itemset_length(self, side: Side, items: Iterable[int]) -> float:
        """``L(X | D_side) = sum of per-item code lengths``."""
        lengths = self.lengths(side)
        return float(sum(lengths[item] for item in items))

    @staticmethod
    def direction_length(direction: Direction) -> float:
        """``L(dir)``: 1 bit for ``<->``, 2 bits otherwise."""
        return float(direction.encoded_bits)

    # ------------------------------------------------------------------
    # Model lengths
    # ------------------------------------------------------------------
    def rule_length(self, rule: TranslationRule) -> float:
        """``L(X ⇒ Y) = L(X|D_L) + L(dir) + L(Y|D_R)``."""
        return (
            self.itemset_length(Side.LEFT, rule.lhs)
            + self.direction_length(rule.direction)
            + self.itemset_length(Side.RIGHT, rule.rhs)
        )

    def table_length(self, table: TranslationTable | Iterable[TranslationRule]) -> float:
        """``L(T)``: the sum of the rule lengths."""
        return float(sum(self.rule_length(rule) for rule in table))

    # ------------------------------------------------------------------
    # Data (correction) lengths
    # ------------------------------------------------------------------
    def correction_length(self, side: Side, correction: np.ndarray) -> float:
        """``L(C_side | T)``: encoded size of a correction matrix.

        ``correction`` is a Boolean matrix with the same shape as the
        corresponding view; every one-cell costs that item's code length.
        """
        view = self._dataset.view(side)
        if correction.shape != view.shape:
            raise ValueError(
                f"correction shape {correction.shape} does not match view {view.shape}"
            )
        lengths = self.lengths(side)
        counts = correction.sum(axis=0).astype(float)
        # Items that never occur cannot be corrected (their code is infinite
        # and their count is guaranteed zero); avoid 0 * inf = nan.
        finite = np.isfinite(lengths)
        if (counts[~finite] > 0).any():
            return float("inf")
        return float(np.dot(counts[finite], lengths[finite]))

    def baseline_length(self) -> float:
        """``L(D, ∅)``: total encoded size under the empty translation table.

        With no rules the translated views are empty, so each correction
        table equals the data itself and the baseline is the plain
        independent encoding of all ones in both views.
        """
        return self.correction_length(Side.LEFT, self._dataset.left) + self.correction_length(
            Side.RIGHT, self._dataset.right
        )
