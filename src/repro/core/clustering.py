"""Compression-based clustering with translation tables.

Section 2.3 of the paper notes that "using compression allows the models
to be used for other tasks, such as clustering", citing van Leeuwen,
Vreeken & Siebes, *Identifying the components* (DMKD 2009).  This module
transplants that k-code-tables scheme to two-view data: a dataset is
modelled as ``k`` *components*, each owning its own translation table,
and transactions belong to the component whose model encodes their
cross-view translation most cheaply.

The algorithm is the classic alternating minimisation:

1. partition the transactions into ``k`` groups (random, seeded);
2. fit a translation table per group with any TRANSLATOR variant;
3. reassign every transaction to the group whose model gives it the
   shortest encoding;
4. repeat 2-3 until the assignment is stable or ``max_rounds`` is hit.

The per-transaction encoded length under a component is the cost of the
corrections the component's table leaves on that transaction, priced
with the component's own (Laplace-smoothed) per-item codes — smoothing
keeps lengths finite for items the component has never seen.  Per-
transaction assignment ignores the component-level model costs (they are
shared by every member), but the reported totals include them: each
non-empty component pays its table's encoded length *plus* a parameter
cost of ``0.5 * (|I_L| + |I_R|) * log2(n_c + 1)`` bits — the standard
MDL asymptotic charge for its per-item Bernoulli code parameters.
Without that charge, splitting would always look free (per-component
codes drive item probabilities toward 0/1, making members nearly free to
encode).  The total additionally pays for the *assignment* itself —
``n * H(component proportions)`` bits plus the mixing-parameter charge —
because a decoder must be told which component each transaction belongs
to.  With both charges, :attr:`ClusteringResult.total_bits` is a proper
two-part MDL criterion comparable across ``k``: on homogeneous noise any
adaptively-dredged split gains less than the label cost, so ``k = 1``
wins, while genuinely conflicting components overcome it easily.

**Identifiability.**  A generating partition is recoverable when the
components differ observably: either through *conflicting* cross-view
structure (the same antecedent maps to different consequents, so a
single union table pays error corrections everywhere) or through
different item *marginals* (the per-component codes then price members
of the right component more cheaply).  On homogeneous i.i.d. noise, by
contrast, splitting buys nothing and the parameter cost makes ``k = 1``
the cheapest model — the score does not hallucinate components.  See
``benchmarks/bench_clustering.py`` (A10) for both regimes.

Alternating minimisation converges to a local optimum that depends on
the initial partition; ``n_restarts`` reruns with different random
initialisations and keeps the lowest-total-bits outcome.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.rules import TranslationRule
from repro.core.table import TranslationTable
from repro.core.translate import translate_view
from repro.data.dataset import Side, TwoViewDataset

__all__ = ["ClusteringResult", "cluster_two_view", "select_k", "transaction_bits"]


def _smoothed_lengths(view: np.ndarray) -> np.ndarray:
    """Laplace-smoothed per-item code lengths of one view.

    ``L(I) = -log2((count_I + 0.5) / (n + 1))`` — finite for every item,
    converging to the paper's empirical codes as counts grow.
    """
    n = view.shape[0]
    counts = view.sum(axis=0).astype(float)
    return -np.log2((counts + 0.5) / (n + 1.0))


def transaction_bits(
    dataset: TwoViewDataset,
    table: TranslationTable | list[TranslationRule],
    lengths_left: np.ndarray,
    lengths_right: np.ndarray,
) -> np.ndarray:
    """Per-transaction correction cost (bits) of ``dataset`` under ``table``.

    Translates both directions for all transactions, XORs against the
    data, and prices each correction cell with the supplied per-item code
    lengths.  Returns an array of ``n_transactions`` bit costs.
    """
    rules = list(table)
    translated_right = translate_view(dataset, rules, Side.RIGHT)
    translated_left = translate_view(dataset, rules, Side.LEFT)
    correction_right = translated_right ^ dataset.right
    correction_left = translated_left ^ dataset.left
    return correction_left @ lengths_left + correction_right @ lengths_right


@dataclasses.dataclass(frozen=True)
class ClusteringResult:
    """Outcome of :func:`cluster_two_view`.

    ``labels[i]`` is the component of transaction ``i``; ``tables[c]``
    the component's translation table; ``component_bits[c]`` its total
    encoded length (member corrections + table + parameter cost);
    ``label_bits`` the cost of transmitting the assignment itself.
    """

    labels: np.ndarray
    tables: tuple[TranslationTable, ...]
    component_bits: tuple[float, ...]
    label_bits: float
    n_rounds: int
    converged: bool

    @property
    def k(self) -> int:
        """Number of components."""
        return len(self.tables)

    @property
    def total_bits(self) -> float:
        """Two-part MDL score of the whole clustering."""
        return float(sum(self.component_bits)) + self.label_bits

    def members(self, component: int) -> np.ndarray:
        """Transaction indices of one component."""
        return np.flatnonzero(self.labels == component)

    def sizes(self) -> list[int]:
        """Component sizes, in component order."""
        return [int((self.labels == component).sum()) for component in range(self.k)]


def _fit_component_tables(
    dataset: TwoViewDataset,
    labels: np.ndarray,
    k: int,
    translator_factory,
) -> list[tuple[TranslationTable, np.ndarray, np.ndarray]]:
    """Fit one table + smoothed code-length pair per non-empty component."""
    models: list[tuple[TranslationTable, np.ndarray, np.ndarray]] = []
    for component in range(k):
        rows = np.flatnonzero(labels == component)
        if rows.size == 0:
            # An emptied component keeps an empty table; its smoothed
            # codes derive from zero counts (maximally expensive), so it
            # only wins transactions nothing else wants.
            empty = TwoViewDataset(
                np.zeros((0, dataset.n_left), dtype=bool),
                np.zeros((0, dataset.n_right), dtype=bool),
                dataset.left_names,
                dataset.right_names,
            )
            models.append(
                (
                    TranslationTable(),
                    _smoothed_lengths(empty.left),
                    _smoothed_lengths(empty.right),
                )
            )
            continue
        subset = dataset.subset(rows, name=f"{dataset.name}[component{component}]")
        result = translator_factory().fit(subset)
        models.append(
            (
                result.table,
                _smoothed_lengths(subset.left),
                _smoothed_lengths(subset.right),
            )
        )
    return models


def _label_bits(labels: np.ndarray, k: int) -> float:
    """Cost of transmitting the component assignment.

    ``n * H(proportions)`` (plug-in entropy code over component labels)
    plus ``0.5 * (k - 1) * log2(n + 1)`` for the mixing proportions.  A
    single component costs nothing.
    """
    n = len(labels)
    if k <= 1 or n == 0:
        return 0.0
    counts = np.bincount(labels, minlength=k).astype(float)
    positive = counts[counts > 0]
    entropy_bits = float(np.sum(positive * -np.log2(positive / n)))
    return entropy_bits + 0.5 * (k - 1) * float(np.log2(n + 1))


def _parameter_bits(n_members: int, n_items: int) -> float:
    """MDL parameter cost of one component's per-item Bernoulli codes.

    The asymptotic two-part-MDL charge of ``0.5 * log2(n + 1)`` bits per
    estimated parameter; an empty component declares no parameters.
    """
    if n_members == 0:
        return 0.0
    return 0.5 * n_items * float(np.log2(n_members + 1))


def _table_bits(table: TranslationTable, lengths_left, lengths_right) -> float:
    """Encoded length of a table under the component's smoothed codes."""
    bits = 0.0
    for rule in table:
        bits += float(sum(lengths_left[item] for item in rule.lhs))
        bits += float(sum(lengths_right[item] for item in rule.rhs))
        bits += rule.direction.encoded_bits
    return bits


def cluster_two_view(
    dataset: TwoViewDataset,
    k: int,
    translator_factory,
    max_rounds: int = 10,
    n_restarts: int = 1,
    rng: np.random.Generator | int | None = None,
) -> ClusteringResult:
    """Cluster transactions into ``k`` components, one table each.

    Parameters
    ----------
    dataset:
        The two-view dataset to cluster.
    k:
        Number of components.
    translator_factory:
        Zero-argument callable returning a fresh translator (e.g.
        ``lambda: TranslatorSelect(k=1)``); a new instance fits each
        component every round.
    max_rounds:
        Cap on refit/reassign rounds per restart.
    n_restarts:
        Independent random initialisations; the lowest-total-bits result
        is returned (alternating minimisation is a local search).
    rng:
        Seed or generator for the initial random partitions.

    Returns
    -------
    A :class:`ClusteringResult`; ``converged`` is True when a round left
    the assignment unchanged before ``max_rounds`` ran out.
    """
    if n_restarts < 1:
        raise ValueError("n_restarts must be positive")
    generator = np.random.default_rng(rng)
    best: ClusteringResult | None = None
    for __ in range(n_restarts):
        candidate = _cluster_once(dataset, k, translator_factory, max_rounds, generator)
        if best is None or candidate.total_bits < best.total_bits:
            best = candidate
    return best


def select_k(
    dataset: TwoViewDataset,
    translator_factory,
    max_k: int = 5,
    max_rounds: int = 10,
    n_restarts: int = 1,
    rng: np.random.Generator | int | None = None,
) -> ClusteringResult:
    """Pick the number of components by MDL: lowest total over ``k <= max_k``.

    Runs :func:`cluster_two_view` for every ``k`` from 1 to ``max_k`` and
    returns the cheapest clustering — the two-part score (member bits +
    tables + parameter and label costs) makes the comparison honest, so
    homogeneous data selects ``k = 1``.
    """
    if max_k < 1:
        raise ValueError("max_k must be positive")
    generator = np.random.default_rng(rng)
    best: ClusteringResult | None = None
    for k in range(1, min(max_k, dataset.n_transactions) + 1):
        candidate = cluster_two_view(
            dataset,
            k=k,
            translator_factory=translator_factory,
            max_rounds=max_rounds,
            n_restarts=n_restarts,
            rng=generator,
        )
        if best is None or candidate.total_bits < best.total_bits:
            best = candidate
    return best


def _cluster_once(
    dataset: TwoViewDataset,
    k: int,
    translator_factory,
    max_rounds: int,
    generator: np.random.Generator,
) -> ClusteringResult:
    """One alternating-minimisation run from a fresh random partition."""
    if k < 1:
        raise ValueError("k must be positive")
    if max_rounds < 1:
        raise ValueError("max_rounds must be positive")
    n = dataset.n_transactions
    if n == 0:
        raise ValueError("cannot cluster an empty dataset")
    if k > n:
        raise ValueError("more components than transactions")
    # Random initial partition, guaranteed to make every component non-empty.
    labels = np.asarray(
        [round_robin % k for round_robin in range(n)], dtype=int
    )
    generator.shuffle(labels)
    converged = False
    models = _fit_component_tables(dataset, labels, k, translator_factory)
    rounds_used = 0
    for __ in range(max_rounds):
        rounds_used += 1
        costs = np.stack(
            [
                transaction_bits(dataset, table, lengths_left, lengths_right)
                for table, lengths_left, lengths_right in models
            ],
            axis=1,
        )
        new_labels = np.asarray(costs.argmin(axis=1), dtype=int)
        if np.array_equal(new_labels, labels):
            converged = True
            break
        labels = new_labels
        models = _fit_component_tables(dataset, labels, k, translator_factory)
    component_bits = []
    for component, (table, lengths_left, lengths_right) in enumerate(models):
        rows = np.flatnonzero(labels == component)
        if rows.size:
            member_bits = float(
                transaction_bits(
                    dataset.subset(rows), table, lengths_left, lengths_right
                ).sum()
            )
        else:
            member_bits = 0.0
        component_bits.append(
            member_bits
            + _table_bits(table, lengths_left, lengths_right)
            + _parameter_bits(int(rows.size), dataset.n_items)
        )
    return ClusteringResult(
        labels=labels,
        tables=tuple(table for table, __, __ in models),
        component_bits=tuple(component_bits),
        label_bits=_label_bits(labels, k),
        n_rounds=rounds_used,
        converged=converged,
    )
