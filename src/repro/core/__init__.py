"""The paper's contribution: translation models for Boolean two-view data.

* :mod:`~repro.core.rules` / :mod:`~repro.core.table` — translation rules
  ``X -> Y`` / ``X <- Y`` / ``X <-> Y`` and translation tables (Section 3).
* :mod:`~repro.core.translate` — the TRANSLATE scheme and correction
  tables providing lossless translation (Algorithm 1).
* :mod:`~repro.core.encoding` — MDL encoded lengths: per-item Shannon
  codes, ``L(X|D)``, ``L(T)``, ``L(C|T)`` (Section 4).
* :mod:`~repro.core.state` — incremental cover state with vectorised rule
  gains Δ (Section 5.1).
* :mod:`~repro.core.bitset` — packed uint64 transaction-set kernel
  (bitwise set algebra, popcounts, weighted popcounts) shared by the
  search and the miners.
* :mod:`~repro.core.search` — exact best-rule search with the paper's
  ``tub`` / ``rub`` / ``qub`` pruning (Section 5.2), on a boolean or a
  packed-bitset kernel.
* :mod:`~repro.core.translator` — TRANSLATOR-EXACT, TRANSLATOR-SELECT(k)
  and TRANSLATOR-GREEDY (Algorithms 2-3).
* :mod:`~repro.core.refined` — the "optimal" refined encoding used to
  verify the paper's Section 4.1 claim (diagnostic only).
"""

from repro.core.rules import Direction, TranslationRule
from repro.core.table import TranslationTable
from repro.core.encoding import CodeLengthModel
from repro.core.translate import (
    CorrectionTables,
    corrections,
    reconstruct,
    translate_transaction,
    translate_view,
)
from repro.core.beam import TranslatorBeam
from repro.core.predict import (
    PredictionScores,
    holdout_evaluation,
    predict_view,
    prediction_scores,
)
from repro.core.pruning import PruneResult, prune_table
from repro.core.clustering import (
    ClusteringResult,
    cluster_two_view,
    select_k,
    transaction_bits,
)
from repro.core.refined import (
    RefinedEncodingReport,
    plugin_codelength,
    refined_lengths,
)
from repro.core.state import CoverState
from repro.core.bitset import BitMatrix
from repro.core.search import ExactRuleSearch, SearchCache, SearchStats
from repro.core.translator import (
    IterationRecord,
    TranslatorExact,
    TranslatorGreedy,
    TranslatorResult,
    TranslatorSelect,
)

__all__ = [
    "Direction",
    "TranslationRule",
    "TranslationTable",
    "CodeLengthModel",
    "CorrectionTables",
    "corrections",
    "reconstruct",
    "translate_transaction",
    "translate_view",
    "PredictionScores",
    "holdout_evaluation",
    "predict_view",
    "prediction_scores",
    "PruneResult",
    "prune_table",
    "ClusteringResult",
    "cluster_two_view",
    "select_k",
    "transaction_bits",
    "RefinedEncodingReport",
    "plugin_codelength",
    "refined_lengths",
    "CoverState",
    "BitMatrix",
    "ExactRuleSearch",
    "SearchCache",
    "SearchStats",
    "IterationRecord",
    "TranslatorBeam",
    "TranslatorExact",
    "TranslatorGreedy",
    "TranslatorResult",
    "TranslatorSelect",
]
