"""Refined ("optimal") encoded lengths — verifying a paper claim.

Section 4.1 of the paper fixes the per-item code lengths to the empirical
distribution of the *complete dataset* and remarks:

    "using the empirical data distribution of the complete dataset for
    the encoding of both the translation and correction tables may lead
    to an encoding that is not completely optimal [...] as we will show
    later, translation tables are relatively small, hence using the
    optimal encoding would hardly change the results in practice."

This module implements that *optimal* (refined) encoding so the claim can
be tested: after a table is fitted, the items appearing in the
translation table and in each correction table are re-encoded with
Shannon codes derived from their own empirical distributions (the
plug-in, or maximum-likelihood, codelength of the item multiset):

    L_refined(entity) = Σ_I  n_I * -log2(n_I / N)

where ``n_I`` counts occurrences of item ``I`` inside the entity and
``N = Σ n_I``.  By Gibbs' inequality this is the shortest item-identity
code for the entity's actual contents among all codes derived from a
*normalized* item distribution.  (The paper's code lengths come from
per-transaction occurrence probabilities, which do not sum to one across
items, so neither encoding dominates the other in general — which is
exactly why the comparison is informative.)  Benchmark A9 confirms the
claim: the compression-ratio difference between the two encodings stays
within a few percentage points on planted and registry data.

Note the refined encoding is *diagnostic only*: optimising the search
against it would let corrections exploit within-view structure, which
the paper explicitly rules out ("we want compression to be the result
only of structure captured by the rules").
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from collections.abc import Iterable

import numpy as np

from repro.core.encoding import CodeLengthModel
from repro.core.rules import TranslationRule
from repro.core.table import TranslationTable
from repro.core.translate import corrections
from repro.data.dataset import Side, TwoViewDataset

__all__ = ["RefinedEncodingReport", "plugin_codelength", "refined_lengths"]


def plugin_codelength(counts: Iterable[int]) -> float:
    """Plug-in Shannon codelength of a multiset given its item counts.

    ``Σ n_I * -log2(n_I / N)`` in bits — i.e. ``N`` times the empirical
    entropy of the item distribution.  An empty multiset costs 0 bits.
    """
    values = np.asarray([count for count in counts if count > 0], dtype=float)
    if values.size == 0:
        return 0.0
    total = values.sum()
    return float(np.sum(values * -np.log2(values / total)))


def _correction_bits_refined(correction: np.ndarray) -> float:
    """Refined encoded size of one correction matrix."""
    return plugin_codelength(correction.sum(axis=0).astype(int).tolist())


def _table_bits_refined(table: Iterable[TranslationRule]) -> float:
    """Refined encoded size of a translation table's itemsets + directions.

    Item identities on each side are encoded against the within-table item
    distribution; direction markers keep the paper's 1/2-bit scheme (they
    are already a fixed two-symbol code).
    """
    left_counts: Counter[int] = Counter()
    right_counts: Counter[int] = Counter()
    direction_bits = 0.0
    for rule in table:
        left_counts.update(rule.lhs)
        right_counts.update(rule.rhs)
        direction_bits += rule.direction.encoded_bits
    return (
        plugin_codelength(left_counts.values())
        + plugin_codelength(right_counts.values())
        + direction_bits
    )


@dataclasses.dataclass(frozen=True)
class RefinedEncodingReport:
    """Baseline (paper) versus refined encoded lengths of one model.

    All lengths in bits.  ``*_ratio`` values are ``L(D, T) / L(D, ∅)``
    fractions under the respective encoding, where both numerator and
    denominator use that same encoding (so the two ratios are
    comparable).
    """

    table_bits: float
    table_bits_refined: float
    correction_bits_left: float
    correction_bits_left_refined: float
    correction_bits_right: float
    correction_bits_right_refined: float
    baseline_bits: float
    baseline_bits_refined: float

    @property
    def total_bits(self) -> float:
        """``L(D, T)`` under the paper's encoding."""
        return self.table_bits + self.correction_bits_left + self.correction_bits_right

    @property
    def total_bits_refined(self) -> float:
        """``L(D, T)`` under the refined encoding."""
        return (
            self.table_bits_refined
            + self.correction_bits_left_refined
            + self.correction_bits_right_refined
        )

    @property
    def compression_ratio(self) -> float:
        """``L%`` under the paper's encoding (fraction)."""
        return self.total_bits / self.baseline_bits if self.baseline_bits else 1.0

    @property
    def compression_ratio_refined(self) -> float:
        """``L%`` under the refined encoding (fraction)."""
        if not self.baseline_bits_refined:
            return 1.0
        return self.total_bits_refined / self.baseline_bits_refined

    @property
    def ratio_difference(self) -> float:
        """``L%_paper - L%_refined`` in percentage points (of ratios*100)."""
        return 100.0 * (self.compression_ratio - self.compression_ratio_refined)

    def summary(self) -> dict[str, float]:
        """Flat report row for benchmark tables."""
        return {
            "L(T)": round(self.table_bits, 1),
            "L(T) refined": round(self.table_bits_refined, 1),
            "L(C) total": round(
                self.correction_bits_left + self.correction_bits_right, 1
            ),
            "L(C) refined": round(
                self.correction_bits_left_refined
                + self.correction_bits_right_refined,
                1,
            ),
            "L% paper": round(100 * self.compression_ratio, 2),
            "L% refined": round(100 * self.compression_ratio_refined, 2),
            "diff (pp)": round(self.ratio_difference, 2),
        }


def refined_lengths(
    dataset: TwoViewDataset,
    table: TranslationTable | Iterable[TranslationRule],
    codes: CodeLengthModel | None = None,
) -> RefinedEncodingReport:
    """Compute paper-encoding and refined-encoding lengths side by side.

    The refined baseline re-encodes the raw views (the corrections of the
    empty table) with their own per-view plug-in codes, so both ratios
    normalise against the same kind of encoding.
    """
    rules = list(table)
    model = codes if codes is not None else CodeLengthModel(dataset)
    tables = corrections(dataset, rules)
    correction_left = tables.correction_left
    correction_right = tables.correction_right
    baseline = model.baseline_length()
    baseline_refined = _correction_bits_refined(dataset.left) + _correction_bits_refined(
        dataset.right
    )
    return RefinedEncodingReport(
        table_bits=model.table_length(rules),
        table_bits_refined=_table_bits_refined(rules),
        correction_bits_left=model.correction_length(Side.LEFT, correction_left),
        correction_bits_left_refined=_correction_bits_refined(correction_left),
        correction_bits_right=model.correction_length(Side.RIGHT, correction_right),
        correction_bits_right_refined=_correction_bits_refined(correction_right),
        baseline_bits=baseline,
        baseline_bits_refined=baseline_refined,
    )
