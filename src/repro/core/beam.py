"""TRANSLATOR-BEAM: beam-search rule induction (extension).

A fourth search strategy filling the gap between the paper's EXACT and
SELECT variants:

* EXACT finds the optimal rule but explores an exponential space;
* SELECT is fast but needs a pre-mined candidate set whose ``minsup``
  caps the rules it can ever express;
* **BEAM** grows each rule directly against the cover state: it seeds a
  beam with the best single-item pairs (computed for all ``|I_L| x |I_R|``
  pairs in a few matrix products), then repeatedly extends every beam
  entry by one item on either side, keeping the ``beam_width`` best
  extensions by exact gain, until no extension improves.  No candidate
  mining, polynomial work per rule, any rule expressible.

Like the paper's algorithms, the outer loop greedily adds the best rule
found until nothing improves compression.  BEAM is *not* exact — it is
evaluated against EXACT and SELECT in the ablation benchmarks.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data.dataset import Side, TwoViewDataset
from repro.core.bitset import BitMatrix
from repro.core.encoding import CodeLengthModel
from repro.core.rules import TranslationRule
from repro.core.state import CoverState
from repro.core.translator import IterationRecord, TranslatorResult, _record

__all__ = ["TranslatorBeam"]

_KERNELS = ("auto", "bool", "bitset")


class TranslatorBeam:
    """Greedy table construction with per-rule beam search.

    Parameters
    ----------
    beam_width:
        Number of itemset pairs kept per extension round.
    max_rule_size:
        Cap on total items per rule (extensions stop there).
    max_iterations:
        Optional cap on the number of rules.
    n_seeds:
        Number of top single-item pairs seeding each beam.
    kernel:
        Support-tracking kernel for the co-occurrence tests that gate
        extensions: ``"bitset"`` (packed uint64 masks, the ``"auto"``
        default) or ``"bool"`` (plain Boolean arrays).  Both kernels
        produce identical models — the test is an exact set predicate.
    n_jobs:
        Worker count for beam expansion (``None``/``-1`` = all CPUs).
        Each round's beam entries are scored on separate workers (thread
        backend; gain evaluation is numpy-bound) and merged in beam
        order with the serial path's deduplication, so the fitted model
        is identical to ``n_jobs=1``.

    Example
    -------
    ::

        from repro import TranslatorBeam, generate_planted, SyntheticSpec

        data, _ = generate_planted(SyntheticSpec(n_transactions=200))
        result = TranslatorBeam(beam_width=8, n_jobs=4).fit(data)
        print(result.table.render(data, limit=5))
    """

    def __init__(
        self,
        beam_width: int = 8,
        max_rule_size: int = 6,
        max_iterations: int | None = None,
        n_seeds: int = 16,
        kernel: str = "auto",
        n_jobs: int | None = 1,
    ) -> None:
        if beam_width < 1 or n_seeds < 1:
            raise ValueError("beam_width and n_seeds must be positive")
        if max_rule_size < 2:
            raise ValueError("max_rule_size must allow one item per side")
        if kernel not in _KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; expected one of {_KERNELS}")
        self.beam_width = beam_width
        self.max_rule_size = max_rule_size
        self.max_iterations = max_iterations
        self.n_seeds = n_seeds
        self.kernel = "bitset" if kernel == "auto" else kernel
        self.n_jobs = n_jobs
        self._executor = None
        self._left_bits: BitMatrix | None = None
        self._right_bits: BitMatrix | None = None

    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: TwoViewDataset,
        codes: CodeLengthModel | None = None,
        bits: tuple[BitMatrix, BitMatrix] | None = None,
    ) -> TranslatorResult:
        """Induce a translation table for ``dataset``.

        ``bits`` optionally injects pre-packed ``(left, right)``
        :class:`BitMatrix` columns of the views (the streaming buffer
        maintains them incrementally), skipping the per-fit repack;
        incremental packing is bit-identical, so the fitted model is
        unchanged.
        """
        start = time.perf_counter()
        state = CoverState(dataset, codes)
        history: list[IterationRecord] = []
        # Packed per-item transaction sets, built once per fit: the beam's
        # extension loop tests joint support emptiness for every candidate
        # extension, and the packed AND touches 64x less memory than the
        # Boolean-mask path.
        if self.kernel != "bitset":
            self._left_bits = None
            self._right_bits = None
        elif bits is not None:
            left_bits, right_bits = bits
            for matrix, view, what in (
                (left_bits, dataset.left, "left"),
                (right_bits, dataset.right, "right"),
            ):
                if (
                    matrix.n_bits != view.shape[0]
                    or matrix.n_items != view.shape[1]
                ):
                    raise ValueError(
                        f"injected {what} bits ({matrix.n_items} items x "
                        f"{matrix.n_bits} bits) do not match the dataset "
                        f"view {view.shape}"
                    )
            self._left_bits, self._right_bits = left_bits, right_bits
        else:
            self._left_bits = BitMatrix.from_bool_columns(dataset.left)
            self._right_bits = BitMatrix.from_bool_columns(dataset.right)
        from repro.runtime.executor import ParallelExecutor, effective_n_jobs

        if effective_n_jobs(self.n_jobs) > 1:
            self._executor = ParallelExecutor(
                n_jobs=self.n_jobs, backend="thread", chunk_size=1
            )
        else:
            self._executor = None
        while self.max_iterations is None or len(state.table) < self.max_iterations:
            rule, gain = self._best_rule(state)
            if rule is None or rule in state.table:
                break
            state.add_rule(rule)
            history.append(_record(state, rule, gain))
        return TranslatorResult(
            method=f"translator-beam({self.beam_width})",
            dataset_name=dataset.name,
            table=state.table,
            state=state,
            history=history,
            runtime_seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    def _seed_pairs(
        self, state: CoverState
    ) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
        """Top single-item pairs by bidirectional gain potential."""
        dataset = state.dataset
        weights_right = state._weights_right
        weights_left = state._weights_left
        net_right = (
            state.uncovered_right.astype(float)
            - (~(dataset.right | state.translated_right)).astype(float)
        ) * weights_right
        net_left = (
            state.uncovered_left.astype(float)
            - (~(dataset.left | state.translated_left)).astype(float)
        ) * weights_left
        forward = dataset.left.T.astype(float) @ net_right
        backward = net_left.T @ dataset.right.astype(float)
        length_grid = (
            state.codes.lengths_left[:, None] + state.codes.lengths_right[None, :]
        )
        score = forward + backward - length_grid
        cooccur = (
            dataset.left.T.astype(np.int32) @ dataset.right.astype(np.int32)
        ) > 0
        score = np.where(cooccur & np.isfinite(score), score, -np.inf)
        flat_order = np.argsort(score, axis=None)[::-1][: self.n_seeds]
        pairs: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
        for index in flat_order:
            left_item, right_item = divmod(int(index), dataset.n_right)
            if not np.isfinite(score[left_item, right_item]):
                break
            pairs.append(((left_item,), (right_item,)))
        return pairs

    def _expand_rule(
        self,
        state: CoverState,
        rule: TranslationRule,
        seen_snapshot: set[tuple[tuple[int, ...], tuple[int, ...]]],
    ) -> list[tuple[tuple, TranslationRule | None, float]]:
        """Score all one-item extensions of one beam entry.

        Reads ``seen_snapshot`` without mutating it (workers run
        concurrently over the same set), deduplicates locally, and
        returns ``(pair, rule_or_None, gain)`` triples in generation
        order; ``None`` marks pairs that fail the co-occurrence test but
        must still enter ``seen``.  Pairs generated by *several* beam
        entries in the same round may be scored twice on different
        workers — ``best_direction`` is pure, so the merge keeps the
        first and the result is unchanged.
        """
        dataset = state.dataset
        output: list[tuple[tuple, TranslationRule | None, float]] = []
        local_seen: set[tuple[tuple[int, ...], tuple[int, ...]]] = set()
        for side in (Side.LEFT, Side.RIGHT):
            current = rule.lhs if side is Side.LEFT else rule.rhs
            for item in range(dataset.n_side(side)):
                if item in current:
                    continue
                if side is Side.LEFT:
                    lhs = tuple(sorted(rule.lhs + (item,)))
                    rhs = rule.rhs
                else:
                    lhs = rule.lhs
                    rhs = tuple(sorted(rule.rhs + (item,)))
                key = (lhs, rhs)
                if key in seen_snapshot or key in local_seen:
                    continue
                local_seen.add(key)
                if not self._cooccurs(dataset, lhs, rhs):
                    output.append((key, None, 0.0))
                    continue
                extended, gain = state.best_direction(lhs, rhs)
                output.append((key, extended, gain))
        return output

    def _cooccurs(
        self, dataset: TwoViewDataset, lhs: tuple[int, ...], rhs: tuple[int, ...]
    ) -> bool:
        """Exact test: does some transaction contain ``lhs`` and ``rhs``?"""
        if self._left_bits is None:
            return bool(dataset.joint_support_mask(lhs, rhs).any())
        joint = self._left_bits.support(lhs) & self._right_bits.support(rhs)
        return bool(joint.any())

    def _best_rule(
        self, state: CoverState
    ) -> tuple[TranslationRule | None, float]:
        """Beam search for a high-gain rule against the current state."""
        dataset = state.dataset
        beam: list[tuple[float, TranslationRule]] = []
        seen: set[tuple[tuple[int, ...], tuple[int, ...]]] = set()
        for lhs, rhs in self._seed_pairs(state):
            rule, gain = state.best_direction(lhs, rhs)
            beam.append((gain, rule))
            seen.add((lhs, rhs))
        if not beam:
            return None, 0.0
        beam.sort(key=lambda pair: -pair[0])
        beam = beam[: self.beam_width]
        best_gain, best_rule = beam[0]

        improved = True
        while improved:
            improved = False
            to_expand = [rule for __, rule in beam if rule.size < self.max_rule_size]
            if self._executor is not None and len(to_expand) > 1:
                # Score each beam entry's extensions on its own worker
                # against a frozen `seen` snapshot, then merge in beam
                # order with the serial dedup rule: the first generator
                # of a pair wins, so the extension list — and therefore
                # the fitted model — is identical to the serial path.
                outputs = self._executor.map(
                    lambda rule: self._expand_rule(state, rule, seen), to_expand
                )
            else:
                outputs = [
                    self._expand_rule(state, rule, seen) for rule in to_expand
                ]
            extensions: list[tuple[float, TranslationRule]] = []
            for output in outputs:
                for key, extended, gain in output:
                    if key in seen:
                        continue
                    seen.add(key)
                    if extended is not None:
                        extensions.append((gain, extended))
            if extensions:
                merged = beam + extensions
                merged.sort(key=lambda pair: -pair[0])
                beam = merged[: self.beam_width]
                if beam[0][0] > best_gain:
                    best_gain, best_rule = beam[0]
                    improved = True
        if best_gain <= 0.0:
            return None, 0.0
        return best_rule, best_gain
