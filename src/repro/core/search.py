"""Exact best-rule search (paper, Section 5.2).

Finds the rule with the maximum compression gain given the current cover
state, by an ECLAT-style depth-first traversal of all itemset pairs
``(X, Y)`` that co-occur in the data, pruned with the paper's bounds:

* ``tub(t)`` — transaction upper bound: the encoded size of the
  transaction's currently uncovered items; any rule can gain at most this
  much from transaction ``t``.
* ``rub(X ⇒ Y)`` — rule upper bound: the sum of ``tub`` over the supports
  of ``X`` and ``Y`` minus ``L(X <-> Y)``; it decreases monotonically under
  extension, so a subtree is pruned when ``rub <= best gain``.
* ``qub(X ⇒ Y)`` — quick bound used to skip exact gain evaluation of a
  single node (it does not license subtree pruning).

Items are visited in descending ``tub``-potential order so good rules are
found early and pruning bites sooner.  The search is *anytime*: an optional
node budget stops it early, returning the best rule found so far with
``complete=False`` (used for the large-dataset benchmarks).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.data.dataset import Side
from repro.core.rules import TranslationRule
from repro.core.state import CoverState

__all__ = ["SearchStats", "ExactRuleSearch"]


@dataclasses.dataclass
class SearchStats:
    """Diagnostics of one best-rule search."""

    nodes_visited: int = 0
    nodes_pruned_rub: int = 0
    evaluations: int = 0
    evaluations_skipped_qub: int = 0
    complete: bool = True


@dataclasses.dataclass(frozen=True)
class _Item:
    """One search-universe entry: an item of either view."""

    side: Side
    column: int
    mask: np.ndarray  # transactions containing the item
    code_length: float


class _NodeBudgetExceeded(Exception):
    """Internal signal: stop the search, keep the best rule found so far."""


class ExactRuleSearch:
    """Exact argmax-gain rule search over a cover state.

    Parameters
    ----------
    state:
        Current :class:`CoverState`; the search never mutates it.
    max_rule_size:
        Optional cap on the total number of items in a rule (bounds the
        search depth; ``None`` reproduces the paper's unbounded search).
    max_nodes:
        Optional node budget for anytime behaviour.
    use_rub, use_qub, order_items:
        Toggles for the pruning components (ablation A1).
    """

    def __init__(
        self,
        state: CoverState,
        max_rule_size: int | None = None,
        max_nodes: int | None = None,
        use_rub: bool = True,
        use_qub: bool = True,
        order_items: bool = True,
        seed_pairs: bool = True,
    ) -> None:
        self.state = state
        self.max_rule_size = max_rule_size
        self.max_nodes = max_nodes
        self.use_rub = use_rub
        self.use_qub = use_qub
        self.order_items = order_items
        self.seed_pairs = seed_pairs

    # ------------------------------------------------------------------
    def find_best_rule(self) -> tuple[TranslationRule | None, float, SearchStats]:
        """Return ``(rule, gain, stats)``; ``rule`` is None when no rule has
        strictly positive gain (the greedy stopping criterion)."""
        state = self.state
        dataset = state.dataset
        stats = SearchStats()

        # Per-transaction bounds, fixed for this search (Section 5.2).
        tub_right = state.transaction_upper_bounds(Side.RIGHT)
        tub_left = state.transaction_upper_bounds(Side.LEFT)

        # Net per-cell weights: covering an uncovered cell gains its code
        # length, introducing a new error loses it, anything else is 0.
        weights_left = state._weights_left
        weights_right = state._weights_right
        net_right = (
            state.uncovered_right.astype(float)
            - (~(dataset.right | state.translated_right)).astype(float)
        ) * weights_right
        net_left = (
            state.uncovered_left.astype(float)
            - (~(dataset.left | state.translated_left)).astype(float)
        ) * weights_left

        universe = self._build_universe(tub_left, tub_right)
        n = dataset.n_transactions
        all_rows = np.ones(n, dtype=bool)

        best_rule: TranslationRule | None = None
        best_gain = 0.0

        # Seed the incumbent with the best single-item pair rule, computed
        # for all |I_L| x |I_R| pairs in three matrix products.  This gives
        # the branch-and-bound a strong lower bound from the start, which
        # both tightens pruning on complete runs and makes the anytime
        # (node-budgeted) mode return sensible rules.  Exactness is
        # unaffected: the seed is itself a member of the rule space.
        seed_allowed = self.max_rule_size is None or self.max_rule_size >= 2
        if self.seed_pairs and seed_allowed and dataset.n_left and dataset.n_right:
            forward_matrix = dataset.left.T.astype(float) @ net_right
            backward_matrix = net_left.T @ dataset.right.astype(float)
            length_grid = (
                self.state.codes.lengths_left[:, None]
                + self.state.codes.lengths_right[None, :]
            )
            cooccur = (dataset.left.T.astype(np.int32) @ dataset.right.astype(np.int32)) > 0
            gains = {
                "->": forward_matrix - length_grid - 2.0,
                "<-": backward_matrix - length_grid - 2.0,
                "<->": forward_matrix + backward_matrix - length_grid - 1.0,
            }
            for direction, grid in gains.items():
                grid = np.where(cooccur & np.isfinite(grid), grid, -np.inf)
                index = int(np.argmax(grid))
                left_item, right_item = divmod(index, dataset.n_right)
                value = float(grid[left_item, right_item])
                if value > best_gain:
                    best_gain = value
                    best_rule = TranslationRule(
                        (left_item,), (right_item,), direction
                    )

        def evaluate(
            lhs: tuple[int, ...],
            rhs: tuple[int, ...],
            supp_left: np.ndarray,
            supp_right: np.ndarray,
            len_lhs: float,
            len_rhs: float,
        ) -> None:
            nonlocal best_rule, best_gain
            if self.use_qub:
                qub = (
                    float(supp_left.sum()) * len_rhs
                    + float(supp_right.sum()) * len_lhs
                    - (len_lhs + len_rhs + 1.0)
                )
                if qub <= best_gain:
                    stats.evaluations_skipped_qub += 1
                    return
            stats.evaluations += 1
            forward = float(supp_left @ net_right[:, list(rhs)].sum(axis=1))
            backward = float(supp_right @ net_left[:, list(lhs)].sum(axis=1))
            base_bits = len_lhs + len_rhs
            candidates = (
                (forward - base_bits - 2.0, "->"),
                (backward - base_bits - 2.0, "<-"),
                (forward + backward - base_bits - 1.0, "<->"),
            )
            for gain, direction in candidates:
                if gain > best_gain:
                    best_gain = gain
                    best_rule = TranslationRule(lhs, rhs, direction)

        def recurse(
            position: int,
            lhs: tuple[int, ...],
            rhs: tuple[int, ...],
            supp_left: np.ndarray,
            supp_right: np.ndarray,
            len_lhs: float,
            len_rhs: float,
        ) -> None:
            if self.max_rule_size is not None and len(lhs) + len(rhs) >= self.max_rule_size:
                return
            for index in range(position, len(universe)):
                entry = universe[index]
                if entry.side is Side.LEFT:
                    new_supp_left = supp_left & entry.mask
                    new_supp_right = supp_right
                    new_lhs = lhs + (entry.column,)
                    new_rhs = rhs
                    new_len_lhs = len_lhs + entry.code_length
                    new_len_rhs = len_rhs
                else:
                    new_supp_left = supp_left
                    new_supp_right = supp_right & entry.mask
                    new_lhs = lhs
                    new_rhs = rhs + (entry.column,)
                    new_len_lhs = len_lhs
                    new_len_rhs = len_rhs + entry.code_length
                joint = new_supp_left & new_supp_right
                if not joint.any():
                    # X u Y must occur in the data (Section 5.2).
                    continue
                stats.nodes_visited += 1
                if self.max_nodes is not None and stats.nodes_visited > self.max_nodes:
                    raise _NodeBudgetExceeded
                if self.use_rub:
                    rub = (
                        float(tub_right @ new_supp_left)
                        + float(tub_left @ new_supp_right)
                        - (new_len_lhs + new_len_rhs + 1.0)
                    )
                    if rub <= best_gain:
                        stats.nodes_pruned_rub += 1
                        continue
                if new_lhs and new_rhs:
                    evaluate(
                        new_lhs, new_rhs, new_supp_left, new_supp_right,
                        new_len_lhs, new_len_rhs,
                    )
                recurse(
                    index + 1,
                    new_lhs, new_rhs,
                    new_supp_left, new_supp_right,
                    new_len_lhs, new_len_rhs,
                )

        try:
            recurse(0, (), (), all_rows, all_rows, 0.0, 0.0)
        except _NodeBudgetExceeded:
            stats.complete = False
        if best_gain <= 0.0:
            return None, 0.0, stats
        return best_rule, best_gain, stats

    # ------------------------------------------------------------------
    def _build_universe(
        self, tub_left: np.ndarray, tub_right: np.ndarray
    ) -> list[_Item]:
        """Items of both views, ordered by descending gain potential.

        The potential of an item is the total ``tub`` mass of the
        transactions containing it — the paper's descending ``tub({I})``
        ordering, which front-loads promising rules and boosts pruning.
        Items that never occur are excluded (they cannot appear in any
        co-occurring pair).
        """
        dataset = self.state.dataset
        entries: list[tuple[float, _Item]] = []
        combined = tub_left + tub_right
        for column in range(dataset.n_left):
            mask = dataset.left[:, column]
            if not mask.any():
                continue
            potential = float(combined[mask].sum())
            entries.append(
                (
                    potential,
                    _Item(
                        Side.LEFT,
                        column,
                        mask,
                        float(self.state.codes.lengths_left[column]),
                    ),
                )
            )
        for column in range(dataset.n_right):
            mask = dataset.right[:, column]
            if not mask.any():
                continue
            potential = float(combined[mask].sum())
            entries.append(
                (
                    potential,
                    _Item(
                        Side.RIGHT,
                        column,
                        mask,
                        float(self.state.codes.lengths_right[column]),
                    ),
                )
            )
        if self.order_items:
            entries.sort(key=lambda pair: -pair[0])
        return [item for __, item in entries]
