"""Exact best-rule search (paper, Section 5.2).

Finds the rule with the maximum compression gain given the current cover
state, by an ECLAT-style depth-first traversal of all itemset pairs
``(X, Y)`` that co-occur in the data, pruned with the paper's bounds:

* ``tub(t)`` — transaction upper bound: the encoded size of the
  transaction's currently uncovered items; any rule can gain at most this
  much from transaction ``t``.
* ``rub(X ⇒ Y)`` — rule upper bound: the sum of ``tub`` over the supports
  of ``X`` and ``Y`` minus ``L(X <-> Y)``; it decreases monotonically under
  extension, so a subtree is pruned when ``rub <= best gain``.
* ``qub(X ⇒ Y)`` — quick bound used to skip exact gain evaluation of a
  single node (it does not license subtree pruning).

Items are visited in descending ``tub``-potential order so good rules are
found early and pruning bites sooner.  The search is *anytime*: an optional
node budget stops it early, returning the best rule found so far with
``complete=False`` (used for the large-dataset benchmarks).

Kernels
-------
The traversal runs on one of two interchangeable support kernels:

* ``kernel="bool"`` — the reference path: supports are
  ``n_transactions``-length Boolean arrays and every bound is one dot
  product per node (the seed implementation's representation).
* ``kernel="bitset"`` (the ``"auto"`` default) — supports are packed
  uint64 bitsets (:mod:`repro.core.bitset`), and the per-child metrics of
  a search node (co-occurrence, support counts, ``rub`` sums, directional
  gains) are computed in a few *batched* vector operations over all
  remaining extension items at once, which replaces per-child numpy calls
  with per-node ones and shrinks the bitwise traffic 64-fold.

Both kernels return **bit-identical** rules, gains and
:class:`SearchStats`.  This is guaranteed structurally, not by luck: all
code lengths are quantized once per search to fixed-point integers
(:class:`_Quantized`), so every bound and gain is an exact integer sum —
and exact integer sums are independent of evaluation order and of the
support representation.  The integers are carried in ``float64`` (and the
quantization step is chosen so every partial sum stays far below ``2^53``,
where float64 arithmetic is exact) because BLAS dot products over float64
are several times faster than numpy's int64 paths; the arithmetic is
nevertheless *integer* arithmetic, just in a wider register.  On the test
datasets the step is ``2^-39`` or finer, so reported gains differ from the
real-valued ones by far less than the ``1e-9`` tolerance the equivalence
tests use, while the paper's ``rub``/``qub`` soundness proofs carry over
verbatim because the quantized weights obey the same inequalities the
real weights do.

The traversal uses an explicit frame stack rather than recursion, so deep
universes (hundreds of items with ``max_rule_size=None``) cannot hit
Python's recursion limit.  Directional gain vectors are maintained
incrementally — extending a rule by one item adds one weight column
instead of re-slicing the full net-weight matrix per evaluation.

A :class:`SearchCache` carries the dataset-static state (packed item
masks, 0/1 item matrices, the co-occurrence grid) across the greedy
iterations of ``TranslatorExact`` so it is built once per fit rather than
once per ``find_best_rule`` call.

Parallel sharding (``n_jobs``)
------------------------------
With ``n_jobs > 1`` the branch-and-bound is *sharded over root subtrees*:
the universe's root positions are split into contiguous ranges, each
worker of a :class:`repro.runtime.executor.ParallelExecutor` (thread
backend — the batched child metrics run in GIL-releasing BLAS calls)
traverses its ranges with the same seed incumbent, and the per-shard
winners are merged in shard order under the serial path's
strictly-greater replacement rule.  The returned **rule and gain are
bit-identical to the serial search**: ``rub``/``qub`` only ever discard
nodes that provably cannot beat the current incumbent, so weakening the
incumbent (each shard starts from the seed-pair bound instead of the
running global best) can never hide the argmax, and the merge reproduces
the serial tie-break (the first rule in DFS order attaining the maximum
gain wins).  Pruning *statistics* are summed over shards and may exceed
the serial counts, since shards explore what the serial incumbent would
have pruned; :class:`SearchStats.shards` records the shard count.  An
anytime node budget (``max_nodes``) is traversal-order-dependent, so a
budgeted search always runs serially regardless of ``n_jobs``.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
import time
import warnings

import numpy as np

from repro import obs as _obs

from repro.data.dataset import Side, TwoViewDataset
from repro.core.bitset import (
    BACKENDS,
    WORD_BITS,
    BitMatrix,
    fixed_weight_table,
    pack_mask,
    resolve_backend,
)
from repro.core.rules import TranslationRule
from repro.core.state import CoverState

__all__ = ["SearchStats", "SearchCheckpoint", "SearchCache", "ExactRuleSearch"]

_KERNELS = ("auto", "bool", "bitset")
_MAX_FRACTION_BITS = 42
#: Transaction count below which ``backend="auto"`` keeps the numpy GEMM
#: even when the native kernel is available: small operands live in
#: cache where BLAS is untouchable, and the per-node ctypes call
#: overhead dominates (measured crossover ~2000 on the dense grid).
_NATIVE_AUTO_MIN_N = 2048


@dataclasses.dataclass
class SearchStats:
    """Diagnostics of one best-rule search.

    Counters are exact on serial runs.  On sharded runs (``n_jobs > 1``)
    they are summed over shards, which may exceed the serial counts
    (each shard starts from the weaker seed incumbent); ``shards``
    records how many root ranges were traversed (1 = serial).

    ``gap_bound`` is the anytime honesty report: an upper bound, in
    bits, on how much better than the returned gain the true optimum
    could be.  It is ``0.0`` whenever ``complete`` is true (the search
    proved optimality); after a budget interrupt it is computed from the
    ``rub`` bounds of the unexplored frontier, so "gain + gap_bound"
    always dominates the optimal gain.  Without ``use_rub`` only the
    loose root-mass bound is available.
    """

    nodes_visited: int = 0
    nodes_pruned_rub: int = 0
    evaluations: int = 0
    evaluations_skipped_qub: int = 0
    complete: bool = True
    kernel: str = ""
    backend: str = ""
    shards: int = 1
    gap_bound: float = 0.0


@dataclasses.dataclass(frozen=True)
class SearchCheckpoint:
    """Resumable state of a budget-interrupted ``bitset``-kernel search.

    Captured on :class:`ExactRuleSearch` (``search.last_checkpoint``)
    when a ``max_nodes`` budget interrupts the traversal, and accepted
    back via ``ExactRuleSearch(checkpoint=...)``.  The DFS stack is a
    root-to-leaf path, so the whole suspended traversal is described by
    the universe index that created each stacked frame plus each
    frame's child cursor; everything else (supports, bounds, gain
    vectors) is recomputed on resume by replaying those child
    creations.  A resumed search makes the identical decision sequence
    an uninterrupted run would have made — rule, gain and statistics
    are bit-identical (statistics accumulate across the legs).

    Checkpoints are only valid against a search over the same cover
    state, options and kernel; ``universe_size`` guards the obvious
    mismatches.  Use :meth:`to_dict` / :meth:`from_dict` to persist.
    """

    path: tuple[int, ...]
    cursors: tuple[int, ...]
    root_lo: int
    root_hi: int
    best_lhs: tuple[int, ...] | None
    best_rhs: tuple[int, ...] | None
    best_direction: str | None
    best_q: float
    nodes_visited: int
    nodes_pruned_rub: int
    evaluations: int
    evaluations_skipped_qub: int
    universe_size: int

    def to_dict(self) -> dict:
        """JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "path": list(self.path),
            "cursors": list(self.cursors),
            "root_lo": self.root_lo,
            "root_hi": self.root_hi,
            "best_lhs": list(self.best_lhs) if self.best_lhs is not None else None,
            "best_rhs": list(self.best_rhs) if self.best_rhs is not None else None,
            "best_direction": self.best_direction,
            "best_q": self.best_q,
            "nodes_visited": self.nodes_visited,
            "nodes_pruned_rub": self.nodes_pruned_rub,
            "evaluations": self.evaluations,
            "evaluations_skipped_qub": self.evaluations_skipped_qub,
            "universe_size": self.universe_size,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SearchCheckpoint":
        """Rebuild a checkpoint from :meth:`to_dict` output."""
        return cls(
            path=tuple(payload["path"]),
            cursors=tuple(payload["cursors"]),
            root_lo=int(payload["root_lo"]),
            root_hi=int(payload["root_hi"]),
            best_lhs=(
                tuple(payload["best_lhs"]) if payload["best_lhs"] is not None else None
            ),
            best_rhs=(
                tuple(payload["best_rhs"]) if payload["best_rhs"] is not None else None
            ),
            best_direction=payload["best_direction"],
            best_q=float(payload["best_q"]),
            nodes_visited=int(payload["nodes_visited"]),
            nodes_pruned_rub=int(payload["nodes_pruned_rub"]),
            evaluations=int(payload["evaluations"]),
            evaluations_skipped_qub=int(payload["evaluations_skipped_qub"]),
            universe_size=int(payload["universe_size"]),
        )


@dataclasses.dataclass(frozen=True)
class _Item:
    """One search-universe entry: an item of either view."""

    side: Side
    column: int
    mask: np.ndarray  # Boolean transaction mask (a column view of the data)
    length_q: float  # fixed-point (integer-valued) code length


class SearchCache:
    """Dataset-static structures shared by every search over one dataset.

    ``TranslatorExact`` builds one cache per ``fit`` and threads it through
    its greedy iterations; standalone searches build a private one.  The
    cache never depends on the cover state, only on the dataset.

    ``left_bits`` / ``right_bits`` optionally inject pre-packed
    :class:`BitMatrix` columns for the two views — the streaming buffer
    (:class:`repro.stream.StreamBuffer`) maintains them incrementally
    and hands them in so a windowed refit skips the full repack.  They
    must describe exactly ``dataset``'s views; since incremental packing
    is bit-identical to packing from scratch, the search behaves
    identically either way.
    """

    def __init__(
        self,
        dataset: TwoViewDataset,
        left_bits: BitMatrix | None = None,
        right_bits: BitMatrix | None = None,
    ) -> None:
        self.dataset = dataset
        for bits, view, what in (
            (left_bits, dataset.left, "left_bits"),
            (right_bits, dataset.right, "right_bits"),
        ):
            if bits is not None and (
                bits.n_bits != view.shape[0] or bits.n_items != view.shape[1]
            ):
                raise ValueError(
                    f"{what} shape ({bits.n_items} items x {bits.n_bits} bits) "
                    f"does not match the dataset view {view.shape}"
                )
        self.left_bits = (
            left_bits if left_bits is not None
            else BitMatrix.from_bool_columns(dataset.left)
        )
        self.right_bits = (
            right_bits if right_bits is not None
            else BitMatrix.from_bool_columns(dataset.right)
        )
        self.left_counts = self.left_bits.counts()
        self.right_counts = self.right_bits.counts()
        # 0/1 item masks, one row per item, in float64 so the fixed-point
        # matrix products downstream run on the BLAS dot kernels.
        self.left_T = np.ascontiguousarray(dataset.left.T, dtype=np.float64)
        self.right_T = np.ascontiguousarray(dataset.right.T, dtype=np.float64)
        self.cooccur = (
            dataset.left.T.astype(np.int32) @ dataset.right.astype(np.int32)
        ) > 0
        self.full_words = pack_mask(np.ones(dataset.n_transactions, dtype=bool))


class _Quantized:
    """Fixed-point view of the per-search weights.

    All code lengths are scaled by ``2^bits`` and rounded once; every
    bound and gain downstream is then an exact integer sum.  The integers
    ride in float64 arrays, and ``bits`` is chosen so the largest possible
    intermediate sum (bounded by ``n_transactions * max(tub)`` plus total
    code length) stays below ``2^51`` — comfortably inside the range where
    float64 addition and multiplication of integers are exact, whatever
    the summation order.
    """

    __slots__ = (
        "bits",
        "one",
        "wq_left",
        "wq_right",
        "tubq_left",
        "tubq_right",
        "netq_left_T",
        "netq_right_T",
        "pos_left",
        "neg_left",
        "pos_right",
        "neg_right",
    )

    def __init__(self, state: CoverState, keep_sign_masks: bool = False) -> None:
        dataset = state.dataset
        n = dataset.n_transactions
        weights_left = state._weights_left
        weights_right = state._weights_right
        tub_left = state.transaction_upper_bounds(Side.LEFT)
        tub_right = state.transaction_upper_bounds(Side.RIGHT)
        tub_max = 0.0
        if tub_left.size:
            tub_max += float(tub_left.max())
        if tub_right.size:
            tub_max += float(tub_right.max())
        magnitude = (n + 1.0) * (
            tub_max + float(weights_left.sum()) + float(weights_right.sum()) + 4.0
        )
        self.bits = max(0, min(_MAX_FRACTION_BITS, 51 - math.frexp(magnitude)[1]))
        self.one = float(1 << self.bits)
        self.wq_left = np.rint(weights_left * self.one)
        self.wq_right = np.rint(weights_right * self.one)
        # tub in fixed point, recomputed from the quantized weights so the
        # rub bound provably dominates the quantized gains.
        self.tubq_left = state.uncovered_left @ self.wq_left
        self.tubq_right = state.uncovered_right @ self.wq_right
        # Net per-cell weight sign: covering an uncovered cell gains its
        # code length, introducing a new error loses it, anything else 0.
        # With ``keep_sign_masks`` the positive/negative cell masks stay
        # alive (the native search backend expresses net sums as two
        # fused AND+popcounts on their packed columns instead of a dense
        # GEMM); otherwise they are temporaries as before, so a numpy
        # fit never pins two extra dense (n x items) masks.
        pos_left = state.uncovered_left
        neg_left = ~(dataset.left | state.translated_left)
        pos_right = state.uncovered_right
        neg_right = ~(dataset.right | state.translated_right)
        sign_left = pos_left.astype(np.float64) - neg_left.astype(np.float64)
        sign_right = pos_right.astype(np.float64) - neg_right.astype(np.float64)
        self.netq_left_T = np.ascontiguousarray(sign_left.T) * self.wq_left[:, None]
        self.netq_right_T = np.ascontiguousarray(sign_right.T) * self.wq_right[:, None]
        if keep_sign_masks:
            self.pos_left, self.neg_left = pos_left, neg_left
            self.pos_right, self.neg_right = pos_right, neg_right
        else:
            self.pos_left = self.neg_left = None
            self.pos_right = self.neg_right = None

    def to_float(self, value: float) -> float:
        return float(value) / self.one


class _Frame:
    """One node of the explicit DFS stack.

    ``s_left``/``s_right`` (0/1 float views of the supports) and the
    ``net_*_vals`` products are bitset-kernel caches: a child created by
    extending one side shares the other side's vectors with its parent by
    reference, so only genuinely new quantities are ever recomputed.
    """

    __slots__ = (
        "position",
        "limit",
        "cursor",
        "lhs",
        "rhs",
        "len_lhs",
        "len_rhs",
        "supp_left",
        "supp_right",
        "s_left",
        "s_right",
        "wsum_left",
        "wsum_right",
        "count_left",
        "count_right",
        "gain_left",
        "gain_right",
        "net_left_vals",
        "net_left_start",
        "net_right_vals",
        "net_right_start",
        "childset",
    )

    def __init__(self) -> None:
        self.childset = None
        self.cursor = 0
        self.s_left = None
        self.s_right = None
        self.net_left_vals = None
        self.net_left_start = 0
        self.net_right_vals = None
        self.net_right_start = 0


class _BoolChildSet:
    """Per-child metrics of one frame, computed lazily (reference kernel).

    Mirrors the seed implementation: every metric is one numpy call on
    ``n_transactions``-length Boolean arrays, evaluated on demand in the
    exact order the driver asks for it.
    """

    __slots__ = ("quantized", "frame", "_new", "_fwd_base", "_bwd_base")

    def __init__(self, quantized: _Quantized, frame: _Frame) -> None:
        self.quantized = quantized
        self.frame = frame
        self._new = None
        self._fwd_base = None
        self._bwd_base = None

    def advance(self, entry: _Item) -> bool:
        frame = self.frame
        if entry.side is Side.LEFT:
            self._new = frame.supp_left & entry.mask
            joint = self._new & frame.supp_right
        else:
            self._new = frame.supp_right & entry.mask
            joint = frame.supp_left & self._new
        return bool(joint.any())

    def wsum_new(self, entry: _Item) -> float:
        if entry.side is Side.LEFT:
            return float(np.dot(self.quantized.tubq_right, self._new))
        return float(np.dot(self.quantized.tubq_left, self._new))

    def count_new(self, entry: _Item) -> int:
        return int(self._new.sum())

    def forward(self, entry: _Item) -> float:
        frame = self.frame
        if entry.side is Side.LEFT:
            return float(np.dot(frame.gain_right, self._new))
        if self._fwd_base is None:
            self._fwd_base = float(np.dot(frame.gain_right, frame.supp_left))
        column = self.quantized.netq_right_T[entry.column]
        return self._fwd_base + float(np.dot(column, frame.supp_left))

    def backward(self, entry: _Item) -> float:
        frame = self.frame
        if entry.side is Side.RIGHT:
            return float(np.dot(frame.gain_left, self._new))
        if self._bwd_base is None:
            self._bwd_base = float(np.dot(frame.gain_left, frame.supp_right))
        column = self.quantized.netq_left_T[entry.column]
        return self._bwd_base + float(np.dot(column, frame.supp_right))

    def child_support(self, entry: _Item) -> np.ndarray:
        return self._new


class _BitsetContext:
    """Universe-ordered packed masks and 0/1 matrices of one search.

    The per-side matrices are *compact*: row ``p`` of ``mask_left`` is the
    ``p``-th left-view entry of the universe (in universe order), so the
    batched products below never touch rows of the other side.
    ``side_position[u]`` maps a universe index to its side-local row.
    """

    __slots__ = (
        "n",
        "size",
        "words_all",
        "side_position",
        "left_index",
        "right_index",
        "mask_left",
        "mask_right",
        "net_left",
        "net_right",
        "full_words",
        "kernel",
        "padded_len",
        "words_left",
        "words_right",
        "tub_table_left",
        "tub_table_right",
        "netq_left_i64",
        "netq_right_i64",
        "pos_left_words",
        "neg_left_words",
        "pos_right_words",
        "neg_right_words",
        "wq_left_univ",
        "wq_right_univ",
    )

    def __init__(
        self,
        universe: list[_Item],
        quantized: _Quantized,
        cache: SearchCache,
        backend: str = "numpy",
    ) -> None:
        dataset = cache.dataset
        n = dataset.n_transactions
        n_words = cache.left_bits.n_words
        size = len(universe)
        self.n = n
        self.size = size
        self.words_all = np.zeros((size, n_words), dtype=np.uint64)
        self.side_position = [0] * size
        left_index: list[int] = []
        right_index: list[int] = []
        left_columns: list[int] = []
        right_columns: list[int] = []
        for index, entry in enumerate(universe):
            if entry.side is Side.LEFT:
                self.side_position[index] = len(left_index)
                left_index.append(index)
                left_columns.append(entry.column)
                self.words_all[index] = cache.left_bits.row(entry.column)
            else:
                self.side_position[index] = len(right_index)
                right_index.append(index)
                right_columns.append(entry.column)
                self.words_all[index] = cache.right_bits.row(entry.column)
        self.left_index = np.asarray(left_index, dtype=np.int64)
        self.right_index = np.asarray(right_index, dtype=np.int64)
        self.mask_left = cache.left_T[left_columns]
        self.mask_right = cache.right_T[right_columns]
        self.net_left = quantized.netq_left_T[left_columns]
        self.net_right = quantized.netq_right_T[right_columns]
        self.full_words = cache.full_words
        self.kernel = None
        if backend == "native":
            from repro import native

            self.kernel = native.load_kernel()
            self.padded_len = n_words * WORD_BITS
            # Universe-ordered compact word matrices, sliceable per frame
            # without a gather (the native childset reads them directly).
            self.words_left = np.ascontiguousarray(self.words_all[self.left_index])
            self.words_right = np.ascontiguousarray(
                self.words_all[self.right_index]
            )
            # Static fixed-point weight tables (rub bounds) and the padded
            # int64 net-weight rows the drivers accumulate frame gains from.
            self.tub_table_left = fixed_weight_table(quantized.tubq_left)
            self.tub_table_right = fixed_weight_table(quantized.tubq_right)
            self.netq_left_i64 = self._padded_i64(quantized.netq_left_T)
            self.netq_right_i64 = self._padded_i64(quantized.netq_right_T)
            # Packed positive/negative net-sign columns, universe-ordered:
            # net sums become wq * (|pos & supp| - |neg & supp|).
            self.pos_left_words = BitMatrix.from_bool_columns(
                quantized.pos_left[:, left_columns]
            ).words
            self.neg_left_words = BitMatrix.from_bool_columns(
                quantized.neg_left[:, left_columns]
            ).words
            self.pos_right_words = BitMatrix.from_bool_columns(
                quantized.pos_right[:, right_columns]
            ).words
            self.neg_right_words = BitMatrix.from_bool_columns(
                quantized.neg_right[:, right_columns]
            ).words
            self.wq_left_univ = quantized.wq_left[left_columns]
            self.wq_right_univ = quantized.wq_right[right_columns]

    def _padded_i64(self, netq: np.ndarray) -> np.ndarray:
        """Exact int64 rows of a netq matrix, padded to the word grid."""
        out = np.zeros((netq.shape[0], self.padded_len), dtype=np.int64)
        out[:, : netq.shape[1]] = netq.astype(np.int64)
        return out


class _BitsetChildSet:
    """Per-child metrics of one frame, batched over all remaining entries.

    Built once when a frame yields its first child: co-occurrence flags,
    new-side support counts, ``rub`` weighted sums and directional gains
    for every candidate extension come out of a handful of vectorized word
    operations and matrix products.  The ``rub`` and gain weight vectors of
    one side share a single two-column GEMM, so each side's item matrix is
    read once; the ``net @ support`` products only depend on the support of
    the *opposite* side, so they are inherited from the parent frame along
    extension chains that leave that side untouched.  All metrics are
    exported as plain Python lists — the driver's inner loop then runs on
    Python floats instead of boxed numpy scalars.

    When a frame's supports are sparse, the matrix products are projected
    onto the support's transaction columns (``matrix[:, support] @
    weights[support]``): every discarded column contributes an exact zero,
    so — because all sums here are exact integers carried in float64 —
    the projection changes cost, never values, and the results stay equal
    to the boolean kernel's per-child dot products bit for bit.
    """

    __slots__ = (
        "context",
        "frame",
        "start_left",
        "start_right",
        "alive_list",
        "counts_left",
        "counts_right",
        "wsums_left",
        "wsums_right",
        "fwd_left",
        "fwd_right",
        "bwd_left",
        "bwd_right",
        "net_left_vals",
        "net_right_vals",
    )

    def __init__(
        self,
        context: _BitsetContext,
        quantized: _Quantized,
        frame: _Frame,
        start: int,
        need_rub: bool,
    ) -> None:
        self.context = context
        self.frame = frame
        start_left = int(np.searchsorted(context.left_index, start))
        start_right = int(np.searchsorted(context.right_index, start))
        self.start_left = start_left
        self.start_right = start_right
        n = context.n
        s_left = frame.s_left
        s_right = frame.s_right
        joint = s_left * s_right
        mask_left = context.mask_left[start_left:]
        mask_right = context.mask_right[start_right:]

        # One GEMM per side: reading the item-mask matrix once yields the
        # rub weighted sums, the directional gains, the new support counts
        # and the joint-support counts (co-occurrence) of every child.
        project_left = mask_left.shape[0] and 16 * frame.count_left < n
        if project_left:
            idx = np.flatnonzero(s_left)
            mask_left = mask_left[:, idx]
            columns = np.empty((idx.size, 4), dtype=np.float64)
            columns[:, 0] = quantized.tubq_right[idx]
            columns[:, 1] = frame.gain_right[idx]
            columns[:, 2] = 1.0
            columns[:, 3] = joint[idx]
            gain_column = columns[:, 1]
        else:
            columns = np.empty((n, 4), dtype=np.float64)
            np.multiply(quantized.tubq_right, s_left, out=columns[:, 0])
            np.multiply(frame.gain_right, s_left, out=columns[:, 1])
            columns[:, 2] = s_left
            columns[:, 3] = joint
            gain_column = columns[:, 1]
        if not need_rub:
            columns = columns[:, 1:]
        products_left = mask_left @ columns
        if need_rub:
            self.wsums_left = products_left[:, 0].tolist()
            products_left = products_left[:, 1:]
        else:
            self.wsums_left = None
        self.fwd_left = products_left[:, 0].tolist()
        self.counts_left = products_left[:, 1].tolist()
        joint_left = products_left[:, 2]
        # net_right @ s_left depends only on the left support: reuse the
        # parent's product when this frame extended the right side.
        if frame.net_right_vals is not None:
            net_right_sum = frame.net_right_vals[
                start_right - frame.net_right_start :
            ]
        elif project_left:
            net_right_sum = context.net_right[start_right:][:, idx].sum(axis=1)
        else:
            net_right_sum = context.net_right[start_right:] @ s_left
        self.net_right_vals = net_right_sum
        fwd_const = float(gain_column.sum())
        # forward of a right extension: the unchanged left support summed
        # over the frame's rhs gain vector plus the new item's net column.
        self.fwd_right = (net_right_sum + fwd_const).tolist()

        project_right = mask_right.shape[0] and 16 * frame.count_right < n
        if project_right:
            idx = np.flatnonzero(s_right)
            mask_right = mask_right[:, idx]
            columns = np.empty((idx.size, 4), dtype=np.float64)
            columns[:, 0] = quantized.tubq_left[idx]
            columns[:, 1] = frame.gain_left[idx]
            columns[:, 2] = 1.0
            columns[:, 3] = joint[idx]
            gain_column = columns[:, 1]
        else:
            columns = np.empty((n, 4), dtype=np.float64)
            np.multiply(quantized.tubq_left, s_right, out=columns[:, 0])
            np.multiply(frame.gain_left, s_right, out=columns[:, 1])
            columns[:, 2] = s_right
            columns[:, 3] = joint
            gain_column = columns[:, 1]
        if not need_rub:
            columns = columns[:, 1:]
        products_right = mask_right @ columns
        if need_rub:
            self.wsums_right = products_right[:, 0].tolist()
            products_right = products_right[:, 1:]
        else:
            self.wsums_right = None
        self.bwd_right = products_right[:, 0].tolist()
        self.counts_right = products_right[:, 1].tolist()
        joint_right = products_right[:, 2]
        if frame.net_left_vals is not None:
            net_left_sum = frame.net_left_vals[start_left - frame.net_left_start :]
        elif project_right:
            net_left_sum = context.net_left[start_left:][:, idx].sum(axis=1)
        else:
            net_left_sum = context.net_left[start_left:] @ s_right
        self.net_left_vals = net_left_sum
        bwd_const = float(gain_column.sum())
        self.bwd_left = (net_left_sum + bwd_const).tolist()

        # Children whose joint support is empty cannot co-occur (Section
        # 5.2) and are skipped without ever reaching the driver loop.
        alive = np.zeros(context.size - start, dtype=bool)
        alive[context.left_index[start_left:] - start] = joint_left > 0.0
        alive[context.right_index[start_right:] - start] = joint_right > 0.0
        self.alive_list = (np.flatnonzero(alive) + start).tolist()


class _NativeChildSet:
    """Per-child metrics of one frame via the fused C kernel.

    Exposes exactly the attribute surface of :class:`_BitsetChildSet`,
    so the bitset driver runs unchanged on either.  One
    ``child_metrics`` call per side replaces the dense four-column GEMM
    — each candidate's co-occurrence, new support count, ``rub``
    weighted sum and directional gain come out of a single pass over its
    packed words ANDed with the frame support — and the inherited
    ``net @ support`` products become two fused AND+popcounts on the
    packed positive/negative net-sign columns.  All quantities are the
    same exact fixed-point integers the GEMM path computes (int64
    accumulation vs float64-carried integers), so every exported list is
    equal to the numpy backend's element for element, and the driver
    makes the identical decision sequence.
    """

    __slots__ = (
        "context",
        "frame",
        "start_left",
        "start_right",
        "alive_list",
        "counts_left",
        "counts_right",
        "wsums_left",
        "wsums_right",
        "fwd_left",
        "fwd_right",
        "bwd_left",
        "bwd_right",
        "net_left_vals",
        "net_right_vals",
    )

    def __init__(
        self,
        context: _BitsetContext,
        quantized: _Quantized,
        frame: _Frame,
        start: int,
        need_rub: bool,
    ) -> None:
        self.context = context
        self.frame = frame
        kernel = context.kernel
        start_left = int(np.searchsorted(context.left_index, start))
        start_right = int(np.searchsorted(context.right_index, start))
        self.start_left = start_left
        self.start_right = start_right
        supp_left = frame.supp_left
        supp_right = frame.supp_right

        wsums, gains, counts, joints_left = kernel.child_metrics(
            context.words_left[start_left:],
            supp_left,
            supp_right,
            frame.gain_right,
            context.tub_table_right if need_rub else None,
        )
        self.wsums_left = (
            wsums.astype(np.float64).tolist() if need_rub else None
        )
        self.fwd_left = gains.astype(np.float64).tolist()
        self.counts_left = counts.astype(np.float64).tolist()
        if frame.net_right_vals is not None:
            net_right_sum = frame.net_right_vals[
                start_right - frame.net_right_start :
            ]
        else:
            pos = kernel.and_popcount(
                context.pos_right_words[start_right:], supp_left
            )
            neg = kernel.and_popcount(
                context.neg_right_words[start_right:], supp_left
            )
            net_right_sum = context.wq_right_univ[start_right:] * (
                pos - neg
            ).astype(np.float64)
        self.net_right_vals = net_right_sum
        fwd_const = float(kernel.weighted_popcount(supp_left, frame.gain_right))
        self.fwd_right = (net_right_sum + fwd_const).tolist()

        wsums, gains, counts, joints_right = kernel.child_metrics(
            context.words_right[start_right:],
            supp_right,
            supp_left,
            frame.gain_left,
            context.tub_table_left if need_rub else None,
        )
        self.wsums_right = (
            wsums.astype(np.float64).tolist() if need_rub else None
        )
        self.bwd_right = gains.astype(np.float64).tolist()
        self.counts_right = counts.astype(np.float64).tolist()
        if frame.net_left_vals is not None:
            net_left_sum = frame.net_left_vals[start_left - frame.net_left_start :]
        else:
            pos = kernel.and_popcount(
                context.pos_left_words[start_left:], supp_right
            )
            neg = kernel.and_popcount(
                context.neg_left_words[start_left:], supp_right
            )
            net_left_sum = context.wq_left_univ[start_left:] * (
                pos - neg
            ).astype(np.float64)
        self.net_left_vals = net_left_sum
        bwd_const = float(kernel.weighted_popcount(supp_right, frame.gain_left))
        self.bwd_left = (net_left_sum + bwd_const).tolist()

        alive = np.zeros(context.size - start, dtype=bool)
        alive[context.left_index[start_left:] - start] = joints_left > 0
        alive[context.right_index[start_right:] - start] = joints_right > 0
        self.alive_list = (np.flatnonzero(alive) + start).tolist()


class ExactRuleSearch:
    """Exact argmax-gain rule search over a cover state.

    Parameters
    ----------
    state:
        Current :class:`CoverState`; the search never mutates it.
    max_rule_size:
        Optional cap on the total number of items in a rule (bounds the
        search depth; ``None`` reproduces the paper's unbounded search).
    max_nodes:
        Optional node budget for anytime behaviour.
    use_rub, use_qub, order_items:
        Toggles for the pruning components (ablation A1).
    kernel:
        ``"bitset"`` (packed, batched), ``"bool"`` (reference), or
        ``"auto"`` (currently ``"bitset"``).  Both kernels return
        bit-identical results; see the module docstring.
    backend:
        Arithmetic backend of the bitset kernel's batched child metrics:
        ``"native"`` (the fused C popcount kernel of
        :mod:`repro.native`), ``"numpy"`` (the dense GEMM formulation),
        or ``"auto"`` — native when a C toolchain is available *and*
        the dataset is large enough to benefit
        (``n_transactions >= 2048``, the measured crossover below which
        cache-resident BLAS wins), numpy otherwise; resolution never
        fails.  Both backends compute the same exact fixed-point
        integers, so rules, gains and statistics are bit-identical; the
        ``bool`` kernel ignores this knob.
    cache:
        Optional :class:`SearchCache` reused across searches over the same
        dataset (``TranslatorExact`` passes one per fit).
    n_jobs:
        Worker count for root-subtree sharding (``None``/``-1`` = all
        CPUs).  The returned rule and gain are bit-identical to the
        serial search; statistics are summed over shards (see the module
        docstring).  Ignored when an anytime ``max_nodes`` budget is set
        — budgeted searches always run serially.
    executor:
        Optional pre-built :class:`repro.runtime.executor.ParallelExecutor`
        used for the shards, overriding ``n_jobs``.
    checkpoint:
        Optional :class:`SearchCheckpoint` from a previous
        budget-interrupted search over the same state and options; the
        traversal resumes exactly where it stopped (``bitset`` kernel
        only).  After an interrupted run the new checkpoint is exposed
        as ``search.last_checkpoint``.
    """

    def __init__(
        self,
        state: CoverState,
        max_rule_size: int | None = None,
        max_nodes: int | None = None,
        use_rub: bool = True,
        use_qub: bool = True,
        order_items: bool = True,
        seed_pairs: bool = True,
        kernel: str = "auto",
        backend: str = "auto",
        cache: SearchCache | None = None,
        n_jobs: int | None = 1,
        executor=None,
        checkpoint: SearchCheckpoint | None = None,
    ) -> None:
        if kernel not in _KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; expected one of {_KERNELS}")
        if cache is not None and cache.dataset is not state.dataset:
            raise ValueError("cache was built for a different dataset")
        from repro.runtime.executor import effective_n_jobs

        self.state = state
        self.max_rule_size = max_rule_size
        self.max_nodes = max_nodes
        self.use_rub = use_rub
        self.use_qub = use_qub
        self.order_items = order_items
        self.seed_pairs = seed_pairs
        self.kernel = "bitset" if kernel == "auto" else kernel
        # Decide the bool-kernel / small-input cases BEFORE resolving, so
        # a search that could never use the native kernel does not probe
        # (and possibly compile, or fail on) the C toolchain just to
        # discard the result.
        if self.kernel == "bool":
            # The bool kernel has no batched child metrics to dispatch;
            # it ignores the knob entirely (spec typos still rejected).
            if backend not in BACKENDS:
                raise ValueError(
                    f"unknown backend {backend!r}; expected one of {BACKENDS}"
                )
            self.backend = "numpy"
        elif (
            backend == "auto"
            and state.dataset.n_transactions < _NATIVE_AUTO_MIN_N
        ):
            self.backend = "numpy"
        else:
            self.backend = resolve_backend(backend)
        self.cache = cache if cache is not None else SearchCache(state.dataset)
        self.n_jobs = executor.n_jobs if executor is not None else effective_n_jobs(n_jobs)
        self.executor = executor
        if checkpoint is not None and self.kernel != "bitset":
            raise ValueError("checkpoint resume requires the bitset kernel")
        self.resume_from = checkpoint
        #: Populated by :meth:`find_best_rule` when a ``max_nodes``
        #: budget interrupts the traversal; ``None`` on complete runs.
        self.last_checkpoint: SearchCheckpoint | None = None
        if self.max_nodes is not None and self.n_jobs > 1:
            warnings.warn(
                "an anytime max_nodes budget is traversal-order dependent, "
                f"so this budgeted search runs serially; n_jobs={self.n_jobs} "
                "is ignored",
                UserWarning,
                stacklevel=2,
            )

    # ------------------------------------------------------------------
    def find_best_rule(self) -> tuple[TranslationRule | None, float, SearchStats]:
        """Return ``(rule, gain, stats)``; ``rule`` is None when no rule has
        strictly positive gain (the greedy stopping criterion)."""
        inst = _obs.ACTIVE
        if inst is None:
            return self._find_best_rule_impl()
        started = time.perf_counter()
        result = self._find_best_rule_impl()
        inst.observe_search(result[2], time.perf_counter() - started)
        return result

    def _find_best_rule_impl(
        self,
    ) -> tuple[TranslationRule | None, float, SearchStats]:
        state = self.state
        dataset = state.dataset
        stats = SearchStats(kernel=self.kernel, backend=self.backend)
        quantized = _Quantized(state, keep_sign_masks=self.backend == "native")
        universe = self._build_universe(quantized)

        best_rule: TranslationRule | None = None
        best_q = 0.0

        resume = self.resume_from
        if resume is not None:
            if resume.universe_size != len(universe):
                raise ValueError(
                    "checkpoint does not match this search universe "
                    f"({resume.universe_size} != {len(universe)} items)"
                )
            # The checkpoint's incumbent already dominates the pair seed
            # (the interrupted leg seeded before traversing), so seeding
            # again would be redundant work.
            if resume.best_lhs is not None:
                best_rule = TranslationRule(
                    resume.best_lhs, resume.best_rhs, resume.best_direction
                )
            best_q = resume.best_q
            stats.nodes_visited = resume.nodes_visited
            stats.nodes_pruned_rub = resume.nodes_pruned_rub
            stats.evaluations = resume.evaluations
            stats.evaluations_skipped_qub = resume.evaluations_skipped_qub
        else:
            seed_allowed = self.max_rule_size is None or self.max_rule_size >= 2
            if self.seed_pairs and seed_allowed and dataset.n_left and dataset.n_right:
                best_rule, best_q = self._seed_best_pair(quantized, best_rule, best_q)

        if (
            self.n_jobs > 1
            and self.max_nodes is None
            and resume is None
            and len(universe) > 1
        ):
            best_rule, best_q = self._traverse_parallel(
                quantized, universe, stats, best_rule, best_q
            )
        else:
            best_rule, best_q = self._traverse(
                quantized, universe, stats, best_rule, best_q
            )
        if best_q <= 0.0:
            return None, 0.0, stats
        return best_rule, quantized.to_float(best_q), stats

    # ------------------------------------------------------------------
    def _seed_best_pair(
        self, quantized: _Quantized, best_rule: TranslationRule | None, best_q: float
    ) -> tuple[TranslationRule | None, float]:
        """Best single-item pair rule, computed for all |I_L| x |I_R| pairs
        in three matrix products.

        This gives the branch-and-bound a strong lower bound from the
        start, which both tightens pruning on complete runs and makes the
        anytime (node-budgeted) mode return sensible rules.  Exactness is
        unaffected: the seed is itself a member of the rule space.
        """
        dataset = self.state.dataset
        cache = self.cache
        forward_grid = cache.left_T @ quantized.netq_right_T.T
        backward_grid = quantized.netq_left_T @ cache.right_T.T
        length_grid = quantized.wq_left[:, None] + quantized.wq_right[None, :]
        two = 2.0 * quantized.one
        grids = {
            "->": forward_grid - length_grid - two,
            "<-": backward_grid - length_grid - two,
            "<->": forward_grid + backward_grid - length_grid - quantized.one,
        }
        for direction, grid in grids.items():
            grid = np.where(cache.cooccur, grid, -np.inf)
            index = int(np.argmax(grid))
            left_item, right_item = divmod(index, dataset.n_right)
            value = float(grid[left_item, right_item])
            if value > best_q:
                best_q = value
                best_rule = TranslationRule((left_item,), (right_item,), direction)
        return best_rule, best_q

    # ------------------------------------------------------------------
    def _make_root(
        self, quantized: _Quantized, context, lo: int = 0, hi: int | None = None
    ) -> _Frame:
        n = self.state.dataset.n_transactions
        root = _Frame()
        root.position = lo
        root.limit = hi
        root.lhs = ()
        root.rhs = ()
        root.len_lhs = 0.0
        root.len_rhs = 0.0
        if context is not None:
            root.supp_left = context.full_words
            root.supp_right = context.full_words
            if context.kernel is None:
                ones = np.ones(n, dtype=np.float64)
                root.s_left = ones
                root.s_right = ones
        else:
            all_rows = np.ones(n, dtype=bool)
            root.supp_left = all_rows
            root.supp_right = all_rows
        root.wsum_left = float(quantized.tubq_right.sum())
        root.wsum_right = float(quantized.tubq_left.sum())
        root.count_left = n
        root.count_right = n
        if context is not None and context.kernel is not None:
            # Native frames accumulate gains as padded int64 tables (the
            # layout the fused weighted popcounts consume directly).
            zero_gain = np.zeros(context.padded_len, dtype=np.int64)
        else:
            zero_gain = np.zeros(n, dtype=np.float64)
        root.gain_left = zero_gain
        root.gain_right = zero_gain
        return root

    # ------------------------------------------------------------------
    # Anytime support: gap bounds, checkpoint capture, checkpoint replay
    # ------------------------------------------------------------------
    def _frame_gap_bound(self, quantized: _Quantized, stack, best_q: float) -> float:
        """Gap bound from frame-level ``rub`` masses (bool kernel, loose).

        Sound because every descendant of a stacked frame has
        ``rub <= wsum_left + wsum_right - (len_lhs + len_rhs + one)`` of
        that frame (supports only shrink, lengths only grow).  Without
        ``use_rub`` the per-frame masses are not maintained, so only the
        root's total-mass bound is available.
        """
        one = quantized.one
        if not self.use_rub:
            root = stack[0]
            bound = root.wsum_left + root.wsum_right - one
        else:
            bound = -math.inf
            for depth, frame in enumerate(stack):
                # Exhausted mid-stack frames have no unexplored children
                # of their own; their one live descendant is a deeper
                # frame, which bounds itself.  The top frame is always
                # included — it owns the interrupted, unprocessed node.
                if depth + 1 < len(stack) and frame.position >= frame.limit:
                    continue
                bound = max(
                    bound,
                    frame.wsum_left
                    + frame.wsum_right
                    - (frame.len_lhs + frame.len_rhs + one),
                )
        if bound == -math.inf:
            return 0.0
        return max(0.0, quantized.to_float(bound - best_q))

    def _capture_interrupt(
        self,
        quantized: _Quantized,
        universe: list[_Item],
        context,
        stack,
        stats: SearchStats,
        best_rule: TranslationRule | None,
        best_q: float,
        nodes_visited: int,
        use_rub: bool,
    ) -> None:
        """Record the gap bound and resume checkpoint at a budget break.

        The gap bound is the maximum ``rub`` over the unexplored
        frontier: for every stacked frame, the not-yet-expanded children
        from its cursor on, each bounded exactly the way the traversal
        itself would bound them.  Every unexplored node lives in one of
        those subtrees, so no rule outside the bound can exist.
        """
        one = quantized.one
        if not use_rub:
            root = stack[0]
            bound = root.wsum_left + root.wsum_right - one
        else:
            entry_is_left = [entry.side is Side.LEFT for entry in universe]
            entry_length = [entry.length_q for entry in universe]
            side_position = context.side_position
            bound = -math.inf
            for frame in stack:
                childset = frame.childset
                if childset is None:
                    if frame.position < frame.limit:
                        bound = max(
                            bound,
                            frame.wsum_left
                            + frame.wsum_right
                            - (frame.len_lhs + frame.len_rhs + one),
                        )
                    continue
                base_cost = frame.len_lhs + frame.len_rhs + one
                for index in childset.alive_list[frame.cursor :]:
                    left_side = entry_is_left[index]
                    offset = side_position[index] - (
                        childset.start_left if left_side else childset.start_right
                    )
                    if left_side:
                        rub = (
                            childset.wsums_left[offset]
                            + frame.wsum_right
                            - base_cost
                            - entry_length[index]
                        )
                    else:
                        rub = (
                            frame.wsum_left
                            + childset.wsums_right[offset]
                            - base_cost
                            - entry_length[index]
                        )
                    if rub > bound:
                        bound = rub
        if bound == -math.inf:
            stats.gap_bound = 0.0
        else:
            stats.gap_bound = max(0.0, quantized.to_float(bound - best_q))
        self.last_checkpoint = SearchCheckpoint(
            path=tuple(frame.position - 1 for frame in stack[1:]),
            cursors=tuple(frame.cursor for frame in stack),
            root_lo=stack[0].position,
            root_hi=stack[0].limit,
            best_lhs=best_rule.lhs if best_rule is not None else None,
            best_rhs=best_rule.rhs if best_rule is not None else None,
            best_direction=(
                best_rule.direction.value if best_rule is not None else None
            ),
            best_q=best_q,
            nodes_visited=nodes_visited,
            nodes_pruned_rub=stats.nodes_pruned_rub,
            evaluations=stats.evaluations,
            evaluations_skipped_qub=stats.evaluations_skipped_qub,
            universe_size=len(universe),
        )

    def _rebuild_checkpoint_stack(
        self,
        quantized: _Quantized,
        universe: list[_Item],
        context,
        checkpoint: SearchCheckpoint,
        use_rub: bool,
    ):
        """Replay a checkpoint's root-to-leaf path into a live frame stack.

        Re-creates each frame on the path exactly the way the original
        traversal created it (same childset construction, same metric
        lookups), then restores the saved cursors.  The top frame's
        childset is deliberately left unbuilt — the driver reconstructs
        it on the first iteration, just as the original run did.
        """
        size = len(universe)
        native = context.kernel is not None
        childset_class = _NativeChildSet if native else _BitsetChildSet
        entry_is_left = [entry.side is Side.LEFT for entry in universe]
        entry_column = [entry.column for entry in universe]
        entry_length = [entry.length_q for entry in universe]
        side_position = context.side_position
        words_all = context.words_all
        mask_left_rows = context.mask_left
        mask_right_rows = context.mask_right
        if native:
            netq_left_rows = context.netq_left_i64
            netq_right_rows = context.netq_right_i64
        else:
            netq_left_rows = quantized.netq_left_T
            netq_right_rows = quantized.netq_right_T

        stack = [
            self._make_root(
                quantized, context, checkpoint.root_lo, checkpoint.root_hi
            )
        ]
        for index in checkpoint.path:
            frame = stack[-1]
            childset = childset_class(
                context, quantized, frame, frame.position, use_rub
            )
            if frame.limit < size:
                cut = bisect.bisect_left(childset.alive_list, frame.limit)
                childset.alive_list = childset.alive_list[:cut]
            frame.childset = childset
            left_side = entry_is_left[index]
            column = entry_column[index]
            side_offset = side_position[index] - (
                childset.start_left if left_side else childset.start_right
            )
            if left_side:
                new_len_lhs = frame.len_lhs + entry_length[index]
                new_len_rhs = frame.len_rhs
            else:
                new_len_lhs = frame.len_lhs
                new_len_rhs = frame.len_rhs + entry_length[index]
            wsum_new = 0.0
            if use_rub:
                wsum_new = (
                    childset.wsums_left[side_offset]
                    if left_side
                    else childset.wsums_right[side_offset]
                )
            count_new = (
                childset.counts_left[side_offset]
                if left_side
                else childset.counts_right[side_offset]
            )
            child = _Frame()
            child.position = index + 1
            child.limit = size
            child.len_lhs = new_len_lhs
            child.len_rhs = new_len_rhs
            if left_side:
                child.lhs = frame.lhs + (column,)
                child.rhs = frame.rhs
                child.supp_left = words_all[index] & frame.supp_left
                child.supp_right = frame.supp_right
                if not native:
                    child.s_left = frame.s_left * mask_left_rows[side_position[index]]
                    child.s_right = frame.s_right
                child.wsum_left = wsum_new
                child.wsum_right = frame.wsum_right
                child.count_left = count_new
                child.count_right = frame.count_right
                child.gain_left = frame.gain_left + netq_left_rows[column]
                child.gain_right = frame.gain_right
                child.net_left_vals = childset.net_left_vals
                child.net_left_start = childset.start_left
            else:
                child.lhs = frame.lhs
                child.rhs = frame.rhs + (column,)
                child.supp_left = frame.supp_left
                child.supp_right = words_all[index] & frame.supp_right
                if not native:
                    child.s_left = frame.s_left
                    child.s_right = frame.s_right * mask_right_rows[side_position[index]]
                child.wsum_left = frame.wsum_left
                child.wsum_right = wsum_new
                child.count_left = frame.count_left
                child.count_right = count_new
                child.gain_left = frame.gain_left
                child.gain_right = frame.gain_right + netq_right_rows[column]
                child.net_right_vals = childset.net_right_vals
                child.net_right_start = childset.start_right
            stack.append(child)
        for frame, cursor in zip(stack, checkpoint.cursors):
            frame.cursor = cursor
        return stack

    def _traverse(
        self,
        quantized: _Quantized,
        universe: list[_Item],
        stats: SearchStats,
        best_rule: TranslationRule | None,
        best_q: float,
    ) -> tuple[TranslationRule | None, float]:
        """Depth-first branch-and-bound over the universe (explicit stack).

        Dispatches to the kernel-specific driver; both drivers make the
        exact same sequence of decisions (same traversal order, the same
        integer-valued bounds compared against the same incumbent), so the
        returned rule, gain and statistics are identical.
        """
        if self.max_rule_size is not None and self.max_rule_size <= 0:
            return best_rule, best_q
        if self.kernel == "bitset":
            return self._traverse_bitset(
                quantized, universe, stats, best_rule, best_q,
                resume=self.resume_from,
            )
        return self._traverse_bool(quantized, universe, stats, best_rule, best_q)

    def _traverse_parallel(
        self,
        quantized: _Quantized,
        universe: list[_Item],
        stats: SearchStats,
        seed_rule: TranslationRule | None,
        seed_q: float,
    ) -> tuple[TranslationRule | None, float]:
        """Shard the root subtrees across workers and merge in shard order.

        Every shard traverses its contiguous range of root positions with
        the same seed incumbent; the merge applies the serial driver's
        strictly-greater replacement in shard order, which reproduces the
        serial tie-break exactly (see the module docstring for why the
        weaker per-shard incumbents cannot change the argmax).  Root
        subtrees shrink with their position, so the ranges are drawn from
        a quadratic ramp — early (wide) subtrees get narrower shards —
        and there are more shards than workers for load balance.
        """
        from repro.runtime.executor import ParallelExecutor

        if self.max_rule_size is not None and self.max_rule_size <= 0:
            return seed_rule, seed_q
        size = len(universe)
        executor = self.executor
        if executor is None:
            # Threads: shards share the read-only context/quantized arrays
            # and the batched child metrics run in GIL-releasing BLAS.
            executor = ParallelExecutor(
                n_jobs=min(self.n_jobs, size), backend="thread", chunk_size=1
            )
        n_shards = min(size, 4 * executor.n_jobs)
        ramp = np.linspace(0.0, 1.0, n_shards + 1) ** 2
        bounds = np.unique(np.round(ramp * size).astype(int))
        ranges = [
            (int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
        ]
        context = (
            _BitsetContext(universe, quantized, self.cache, self.backend)
            if self.kernel == "bitset"
            else None
        )

        def run_shard(root_range: tuple[int, int]):
            lo, hi = root_range
            shard_stats = SearchStats(kernel=self.kernel, backend=self.backend)
            if self.kernel == "bitset":
                rule, gain_q = self._traverse_bitset(
                    quantized, universe, shard_stats, seed_rule, seed_q,
                    context=context, root_lo=lo, root_hi=hi,
                )
            else:
                rule, gain_q = self._traverse_bool(
                    quantized, universe, shard_stats, seed_rule, seed_q,
                    root_lo=lo, root_hi=hi,
                )
            return rule, gain_q, shard_stats

        best_rule, best_q = seed_rule, seed_q
        for rule, gain_q, shard_stats in executor.map(run_shard, ranges):
            stats.nodes_visited += shard_stats.nodes_visited
            stats.nodes_pruned_rub += shard_stats.nodes_pruned_rub
            stats.evaluations += shard_stats.evaluations
            stats.evaluations_skipped_qub += shard_stats.evaluations_skipped_qub
            if gain_q > best_q:
                best_rule, best_q = rule, gain_q
        stats.shards = len(ranges)
        return best_rule, best_q

    def _traverse_bool(
        self,
        quantized: _Quantized,
        universe: list[_Item],
        stats: SearchStats,
        best_rule: TranslationRule | None,
        best_q: float,
        root_lo: int = 0,
        root_hi: int | None = None,
    ) -> tuple[TranslationRule | None, float]:
        one = quantized.one
        two = 2.0 * one
        size = len(universe)
        use_rub, use_qub = self.use_rub, self.use_qub
        max_rule_size, max_nodes = self.max_rule_size, self.max_nodes
        netq_left_T = quantized.netq_left_T
        netq_right_T = quantized.netq_right_T
        # Hot-loop views of the universe (list indexing beats attribute
        # access on frozen dataclasses by a wide margin here).
        entry_is_left = [entry.side is Side.LEFT for entry in universe]
        entry_column = [entry.column for entry in universe]
        entry_length = [entry.length_q for entry in universe]

        nodes_visited = stats.nodes_visited
        stack = [
            self._make_root(
                quantized, None, root_lo, size if root_hi is None else root_hi
            )
        ]
        while stack:
            frame = stack[-1]
            index = frame.position
            if index >= frame.limit:
                stack.pop()
                continue
            frame.position = index + 1
            childset = frame.childset
            if childset is None:
                childset = _BoolChildSet(quantized, frame)
                frame.childset = childset
            entry = universe[index]
            if not childset.advance(entry):
                # X u Y must occur in the data (Section 5.2).
                continue
            nodes_visited += 1
            if max_nodes is not None and nodes_visited > max_nodes:
                # The over-budget node was never processed — do not count
                # it, and report how much gain the unexplored frontier
                # could still hold (loose frame-level bounds here; the
                # bitset kernel reports the tight per-child bounds).
                nodes_visited -= 1
                stats.complete = False
                stats.gap_bound = self._frame_gap_bound(quantized, stack, best_q)
                break
            left_side = entry_is_left[index]
            column = entry_column[index]
            if left_side:
                new_len_lhs = frame.len_lhs + entry_length[index]
                new_len_rhs = frame.len_rhs
            else:
                new_len_lhs = frame.len_lhs
                new_len_rhs = frame.len_rhs + entry_length[index]
            length_cost = new_len_lhs + new_len_rhs + one
            wsum_new = 0.0
            if use_rub:
                wsum_new = childset.wsum_new(entry)
                if left_side:
                    rub = wsum_new + frame.wsum_right - length_cost
                else:
                    rub = frame.wsum_left + wsum_new - length_cost
                if rub <= best_q:
                    stats.nodes_pruned_rub += 1
                    continue
            count_new = childset.count_new(entry)
            if left_side:
                new_lhs = frame.lhs + (column,)
                new_rhs = frame.rhs
                count_left, count_right = count_new, frame.count_right
            else:
                new_lhs = frame.lhs
                new_rhs = frame.rhs + (column,)
                count_left, count_right = frame.count_left, count_new
            if new_lhs and new_rhs:
                qub_passed = True
                if use_qub:
                    qub = (
                        count_left * new_len_rhs
                        + count_right * new_len_lhs
                        - length_cost
                    )
                    if qub <= best_q:
                        stats.evaluations_skipped_qub += 1
                        qub_passed = False
                if qub_passed:
                    stats.evaluations += 1
                    forward = childset.forward(entry)
                    backward = childset.backward(entry)
                    base = new_len_lhs + new_len_rhs
                    gain = forward - base - two
                    if gain > best_q:
                        best_q = gain
                        best_rule = TranslationRule(new_lhs, new_rhs, "->")
                    gain = backward - base - two
                    if gain > best_q:
                        best_q = gain
                        best_rule = TranslationRule(new_lhs, new_rhs, "<-")
                    gain = forward + backward - base - one
                    if gain > best_q:
                        best_q = gain
                        best_rule = TranslationRule(new_lhs, new_rhs, "<->")
            if max_rule_size is not None and len(new_lhs) + len(new_rhs) >= max_rule_size:
                continue
            child = _Frame()
            child.position = frame.position
            child.limit = size
            child.lhs = new_lhs
            child.rhs = new_rhs
            child.len_lhs = new_len_lhs
            child.len_rhs = new_len_rhs
            support = childset.child_support(entry)
            if left_side:
                child.supp_left = support
                child.supp_right = frame.supp_right
                child.wsum_left = wsum_new
                child.wsum_right = frame.wsum_right
                child.count_left = count_new
                child.count_right = frame.count_right
                child.gain_left = frame.gain_left + netq_left_T[column]
                child.gain_right = frame.gain_right
            else:
                child.supp_left = frame.supp_left
                child.supp_right = support
                child.wsum_left = frame.wsum_left
                child.wsum_right = wsum_new
                child.count_left = frame.count_left
                child.count_right = count_new
                child.gain_left = frame.gain_left
                child.gain_right = frame.gain_right + netq_right_T[column]
            stack.append(child)
        stats.nodes_visited = nodes_visited
        return best_rule, best_q

    def _traverse_bitset(
        self,
        quantized: _Quantized,
        universe: list[_Item],
        stats: SearchStats,
        best_rule: TranslationRule | None,
        best_q: float,
        context: _BitsetContext | None = None,
        root_lo: int = 0,
        root_hi: int | None = None,
        resume: SearchCheckpoint | None = None,
    ) -> tuple[TranslationRule | None, float]:
        # Same decision sequence as _traverse_bool — child metrics come
        # from the frame's batched childset, and only co-occurring
        # (alive) children are iterated at all.
        one = quantized.one
        two = 2.0 * one
        size = len(universe)
        use_rub, use_qub = self.use_rub, self.use_qub
        max_rule_size, max_nodes = self.max_rule_size, self.max_nodes
        netq_left_T = quantized.netq_left_T
        netq_right_T = quantized.netq_right_T
        entry_is_left = [entry.side is Side.LEFT for entry in universe]
        entry_column = [entry.column for entry in universe]
        entry_length = [entry.length_q for entry in universe]

        if context is None:
            context = _BitsetContext(universe, quantized, self.cache, self.backend)
        native = context.kernel is not None
        childset_class = _NativeChildSet if native else _BitsetChildSet
        if native:
            netq_left_rows = context.netq_left_i64
            netq_right_rows = context.netq_right_i64
        else:
            netq_left_rows = netq_left_T
            netq_right_rows = netq_right_T
        side_position = context.side_position
        words_all = context.words_all
        mask_left_rows = context.mask_left
        mask_right_rows = context.mask_right

        nodes_visited = stats.nodes_visited
        if resume is not None:
            stack = self._rebuild_checkpoint_stack(
                quantized, universe, context, resume, use_rub
            )
        else:
            stack = [
                self._make_root(
                    quantized, context, root_lo, size if root_hi is None else root_hi
                )
            ]
        while stack:
            frame = stack[-1]
            childset = frame.childset
            if childset is None:
                if frame.position >= frame.limit:
                    stack.pop()
                    continue
                childset = childset_class(
                    context, quantized, frame, frame.position, use_rub
                )
                if frame.limit < size:
                    # A sharded root only iterates its own range of root
                    # subtrees; children still extend over the full tail.
                    cut = bisect.bisect_left(childset.alive_list, frame.limit)
                    childset.alive_list = childset.alive_list[:cut]
                frame.childset = childset
            alive_list = childset.alive_list
            cursor = frame.cursor
            if cursor >= len(alive_list):
                stack.pop()
                continue
            index = alive_list[cursor]
            frame.cursor = cursor + 1
            nodes_visited += 1
            if max_nodes is not None and nodes_visited > max_nodes:
                # The over-budget node at ``cursor`` was never processed:
                # rewind it so the checkpoint re-visits it, making the
                # resumed decision sequence (and statistics) bit-identical
                # to an uninterrupted run's.
                frame.cursor = cursor
                nodes_visited -= 1
                stats.complete = False
                self._capture_interrupt(
                    quantized, universe, context, stack, stats,
                    best_rule, best_q, nodes_visited, use_rub,
                )
                break
            left_side = entry_is_left[index]
            column = entry_column[index]
            side_offset = side_position[index] - (
                childset.start_left if left_side else childset.start_right
            )
            if left_side:
                new_len_lhs = frame.len_lhs + entry_length[index]
                new_len_rhs = frame.len_rhs
            else:
                new_len_lhs = frame.len_lhs
                new_len_rhs = frame.len_rhs + entry_length[index]
            length_cost = new_len_lhs + new_len_rhs + one
            wsum_new = 0.0
            if use_rub:
                wsum_new = (
                    childset.wsums_left[side_offset]
                    if left_side
                    else childset.wsums_right[side_offset]
                )
                if left_side:
                    rub = wsum_new + frame.wsum_right - length_cost
                else:
                    rub = frame.wsum_left + wsum_new - length_cost
                if rub <= best_q:
                    stats.nodes_pruned_rub += 1
                    continue
            count_new = (
                childset.counts_left[side_offset]
                if left_side
                else childset.counts_right[side_offset]
            )
            if left_side:
                new_lhs = frame.lhs + (column,)
                new_rhs = frame.rhs
                count_left, count_right = count_new, frame.count_right
            else:
                new_lhs = frame.lhs
                new_rhs = frame.rhs + (column,)
                count_left, count_right = frame.count_left, count_new
            if new_lhs and new_rhs:
                qub_passed = True
                if use_qub:
                    qub = (
                        count_left * new_len_rhs
                        + count_right * new_len_lhs
                        - length_cost
                    )
                    if qub <= best_q:
                        stats.evaluations_skipped_qub += 1
                        qub_passed = False
                if qub_passed:
                    stats.evaluations += 1
                    if left_side:
                        forward = childset.fwd_left[side_offset]
                        backward = childset.bwd_left[side_offset]
                    else:
                        forward = childset.fwd_right[side_offset]
                        backward = childset.bwd_right[side_offset]
                    base = new_len_lhs + new_len_rhs
                    gain = forward - base - two
                    if gain > best_q:
                        best_q = gain
                        best_rule = TranslationRule(new_lhs, new_rhs, "->")
                    gain = backward - base - two
                    if gain > best_q:
                        best_q = gain
                        best_rule = TranslationRule(new_lhs, new_rhs, "<-")
                    gain = forward + backward - base - one
                    if gain > best_q:
                        best_q = gain
                        best_rule = TranslationRule(new_lhs, new_rhs, "<->")
            if max_rule_size is not None and len(new_lhs) + len(new_rhs) >= max_rule_size:
                continue
            child = _Frame()
            child.position = index + 1
            child.limit = size
            child.lhs = new_lhs
            child.rhs = new_rhs
            child.len_lhs = new_len_lhs
            child.len_rhs = new_len_rhs
            if left_side:
                child.supp_left = words_all[index] & frame.supp_left
                child.supp_right = frame.supp_right
                if not native:
                    child.s_left = frame.s_left * mask_left_rows[side_position[index]]
                    child.s_right = frame.s_right
                child.wsum_left = wsum_new
                child.wsum_right = frame.wsum_right
                child.count_left = count_new
                child.count_right = frame.count_right
                child.gain_left = frame.gain_left + netq_left_rows[column]
                child.gain_right = frame.gain_right
                # s_right unchanged: the net_left @ s_right products carry over.
                child.net_left_vals = childset.net_left_vals
                child.net_left_start = childset.start_left
            else:
                child.supp_left = frame.supp_left
                child.supp_right = words_all[index] & frame.supp_right
                if not native:
                    child.s_left = frame.s_left
                    child.s_right = frame.s_right * mask_right_rows[side_position[index]]
                child.wsum_left = frame.wsum_left
                child.wsum_right = wsum_new
                child.count_left = frame.count_left
                child.count_right = count_new
                child.gain_left = frame.gain_left
                child.gain_right = frame.gain_right + netq_right_rows[column]
                child.net_right_vals = childset.net_right_vals
                child.net_right_start = childset.start_right
            stack.append(child)
        stats.nodes_visited = nodes_visited
        return best_rule, best_q

    # ------------------------------------------------------------------
    def _build_universe(self, quantized: _Quantized) -> list[_Item]:
        """Items of both views, ordered by descending gain potential.

        The potential of an item is the total ``tub`` mass of the
        transactions containing it — the paper's descending ``tub({I})``
        ordering, which front-loads promising rules and boosts pruning.
        Items that never occur are excluded (they cannot appear in any
        co-occurring pair).  Potentials are fixed-point integers, so the
        ordering is identical under both kernels.
        """
        dataset = self.state.dataset
        cache = self.cache
        combined = quantized.tubq_left + quantized.tubq_right
        potentials_left = combined @ dataset.left if dataset.n_left else np.zeros(0)
        potentials_right = combined @ dataset.right if dataset.n_right else np.zeros(0)
        entries: list[tuple[float, _Item]] = []
        for column in range(dataset.n_left):
            if cache.left_counts[column] == 0:
                continue
            entries.append(
                (
                    float(potentials_left[column]),
                    _Item(
                        Side.LEFT,
                        column,
                        dataset.left[:, column],
                        float(quantized.wq_left[column]),
                    ),
                )
            )
        for column in range(dataset.n_right):
            if cache.right_counts[column] == 0:
                continue
            entries.append(
                (
                    float(potentials_right[column]),
                    _Item(
                        Side.RIGHT,
                        column,
                        dataset.right[:, column],
                        float(quantized.wq_right[column]),
                    ),
                )
            )
        if self.order_items:
            entries.sort(key=lambda pair: -pair[0])
        return [item for __, item in entries]
