"""Prediction with translation tables.

Compression-based models are useful beyond description (paper, Section
2.3, citing Faloutsos & Megalooikonomou): a translation table is a
generative mapping between views, so it can *predict* one view of unseen
objects from the other.  This module provides that application:

* :func:`predict_view` — rule-based prediction of a target view for new
  source-view data;
* :func:`prediction_scores` — micro-averaged precision/recall/F1 of the
  predictions against ground truth;
* :func:`holdout_evaluation` — fit on a training split, score predictions
  on a held-out split, in both directions.

This also doubles as an extrinsic quality measure of a model: tables that
compress well predict well on data from the same distribution.
"""

from __future__ import annotations

import dataclasses
import warnings
from collections.abc import Iterable

import numpy as np

from repro.data.dataset import Side, TwoViewDataset
from repro.core.rules import TranslationRule
from repro.core.table import TranslationTable

__all__ = ["PredictionScores", "predict_view", "prediction_scores", "holdout_evaluation"]


@dataclasses.dataclass(frozen=True)
class PredictionScores:
    """Micro-averaged prediction quality of one direction."""

    target: Side
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """Fraction of predicted items that are correct."""
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        """Fraction of true items that were predicted."""
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        precision, recall = self.precision, self.recall
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)


def predict_view(
    source_matrix: np.ndarray,
    table: TranslationTable | Iterable[TranslationRule],
    target: Side,
    n_target_items: int,
    engine: str = "auto",
) -> np.ndarray:
    """Predict the ``target`` view for new source-view transactions.

    ``source_matrix`` is a Boolean matrix over the *opposite* view's
    vocabulary (same column order as the training data).  Applies every
    rule firing towards ``target`` — i.e. the TRANSLATE algorithm on
    unseen data, without correction tables.

    ``engine`` selects the implementation: ``"loop"`` is the per-rule
    reference path below, ``"compiled"`` routes through
    :class:`repro.serve.CompiledPredictor` (packed-bitset matrix ops,
    bit-identical outputs, much faster on batches), and ``"auto"``
    picks the compiled path whenever there is more than one row to
    predict.

    Rules whose antecedent towards ``target`` is empty are skipped with
    a warning: an empty itemset is contained in every transaction, so
    such a rule would fire on every row and silence real signal.
    """
    source_matrix = np.asarray(source_matrix, dtype=bool)
    if engine not in ("auto", "loop", "compiled"):
        raise ValueError(f"unknown prediction engine {engine!r}")
    if engine == "auto":
        engine = "compiled" if source_matrix.shape[0] > 1 else "loop"
    if engine == "compiled":
        # Imported lazily (and only on this path) so the core layer has
        # no import-time dependency on the serving package; compilation
        # is one pass over the rules, cheaper than the loop it replaces.
        try:
            from repro.serve.compiled import CompiledPredictor
        except ImportError:  # serving layer unavailable: reference path
            engine = "loop"
        else:
            compiled = CompiledPredictor.from_table(
                table, target, source_matrix.shape[1], n_target_items
            )
            return compiled.predict(source_matrix)
    predicted = np.zeros((source_matrix.shape[0], n_target_items), dtype=bool)
    for rule in table:
        if not rule.applies_towards(target):
            continue
        antecedent = list(rule.antecedent(target))
        if not antecedent:
            warnings.warn(
                f"skipping rule {rule!r}: empty antecedent towards "
                f"{target} would fire on every transaction",
                stacklevel=2,
            )
            continue
        rows = source_matrix[:, antecedent].all(axis=1)
        if rows.any():
            predicted[np.ix_(rows, list(rule.consequent(target)))] = True
    return predicted


def prediction_scores(
    predicted: np.ndarray, actual: np.ndarray, target: Side
) -> PredictionScores:
    """Micro-averaged scores of a predicted view against ground truth."""
    predicted = np.asarray(predicted, dtype=bool)
    actual = np.asarray(actual, dtype=bool)
    if predicted.shape != actual.shape:
        raise ValueError("predicted and actual shapes differ")
    return PredictionScores(
        target=target,
        true_positives=int((predicted & actual).sum()),
        false_positives=int((predicted & ~actual).sum()),
        false_negatives=int((~predicted & actual).sum()),
    )


def holdout_evaluation(
    dataset: TwoViewDataset,
    translator,
    train_fraction: float = 0.7,
    rng: np.random.Generator | int | None = 0,
) -> dict[str, PredictionScores]:
    """Fit on a train split, predict both views on the held-out split.

    ``translator`` is any object with a ``fit(dataset) -> result`` method
    whose result exposes ``.table`` (all TRANSLATOR classes qualify).
    Returns scores keyed by ``"left_to_right"`` and ``"right_to_left"``.
    """
    train, test = dataset.split(train_fraction, rng=rng)
    result = translator.fit(train)
    table = result.table
    forward = prediction_scores(
        predict_view(test.left, table, Side.RIGHT, dataset.n_right),
        test.right,
        Side.RIGHT,
    )
    backward = prediction_scores(
        predict_view(test.right, table, Side.LEFT, dataset.n_left),
        test.left,
        Side.LEFT,
    )
    return {"left_to_right": forward, "right_to_left": backward}
