"""Post-hoc pruning of translation tables.

The paper's algorithms only ever *add* rules; once a rule is in the table
it stays, even if later additions make it redundant (its uncovered cells
get covered by other rules while its length and errors keep costing
bits).  This module adds the natural post-processing the KRIMP line of
work applies to code tables: iteratively remove the rule whose removal
decreases the total encoded length most, until no removal helps.

Removal cannot be done incrementally on a :class:`CoverState` (translated
cells are unions over rules), so every candidate removal is scored by
re-covering from scratch — ``O(|T|^2)`` state rebuilds, fine for the
table sizes MDL selection produces.

This is an extension beyond the paper, evaluated by the ablation
benchmark ``bench_ablation_pruning_tables``.
"""

from __future__ import annotations

import dataclasses

from repro.data.dataset import TwoViewDataset
from repro.core.encoding import CodeLengthModel
from repro.core.rules import TranslationRule
from repro.core.state import CoverState
from repro.core.table import TranslationTable

__all__ = ["PruneResult", "prune_table"]


@dataclasses.dataclass
class PruneResult:
    """Outcome of pruning a translation table."""

    table: TranslationTable
    removed: list[TranslationRule]
    bits_before: float
    bits_after: float

    @property
    def improvement_bits(self) -> float:
        """Total encoded-length reduction achieved by pruning."""
        return self.bits_before - self.bits_after


def _total_length(
    dataset: TwoViewDataset,
    rules: list[TranslationRule],
    codes: CodeLengthModel,
) -> float:
    state = CoverState(dataset, codes)
    for rule in rules:
        state.add_rule(rule)
    return state.total_length()


def prune_table(
    dataset: TwoViewDataset,
    table: TranslationTable,
    codes: CodeLengthModel | None = None,
) -> PruneResult:
    """Greedily remove rules while removal improves compression.

    Each round scores every single-rule removal and applies the best one
    when it strictly reduces the total encoded length; stops otherwise.
    The result's table preserves the surviving rules' original order.
    """
    if codes is None:
        codes = CodeLengthModel(dataset)
    rules = list(table)
    current = _total_length(dataset, rules, codes)
    before = current
    removed: list[TranslationRule] = []
    improved = True
    while improved and rules:
        improved = False
        best_index = -1
        best_length = current
        for index in range(len(rules)):
            candidate = rules[:index] + rules[index + 1 :]
            length = _total_length(dataset, candidate, codes)
            if length < best_length - 1e-12:
                best_length = length
                best_index = index
        if best_index >= 0:
            removed.append(rules.pop(best_index))
            current = best_length
            improved = True
    return PruneResult(
        table=TranslationTable(rules),
        removed=removed,
        bits_before=before,
        bits_after=current,
    )
