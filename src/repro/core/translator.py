"""The TRANSLATOR algorithms (paper, Section 5).

Three model-induction strategies over the same cover state:

* :class:`TranslatorExact` — Algorithm 2: iteratively add the *provably
  best* rule found by :class:`~repro.core.search.ExactRuleSearch`, until
  no rule improves compression.  Parameter-free.
* :class:`TranslatorSelect` — Algorithm 3: per iteration, rank all rules
  constructible from a fixed candidate set (closed frequent two-view
  itemsets) by gain, and add the top-``k`` that do not overlap in items
  and still improve compression.
* :class:`TranslatorGreedy` — single-pass KRIMP-style filtering: order the
  candidates (length desc, support desc), consider each exactly once, add
  the best-direction rule when its gain is strictly positive.

All three return a :class:`TranslatorResult` carrying the final table, the
cover state, and a per-iteration history (used by the Fig. 2 trace).
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro import obs as _obs
from repro.data.dataset import Side, TwoViewDataset
from repro.core.encoding import CodeLengthModel
from repro.core.rules import TranslationRule
from repro.core.search import ExactRuleSearch, SearchCache, SearchStats
from repro.core.state import CoverState
from repro.core.table import TranslationTable
from repro.mining.twoview import TwoViewCandidate, auto_minsup, two_view_candidates

__all__ = [
    "IterationRecord",
    "TranslatorResult",
    "TranslatorExact",
    "TranslatorSelect",
    "TranslatorGreedy",
]


@dataclasses.dataclass(frozen=True)
class IterationRecord:
    """State snapshot taken after one rule was added."""

    index: int
    rule: TranslationRule
    gain: float
    total_bits: float
    table_bits: float
    correction_bits_left: float
    correction_bits_right: float
    uncovered_left: int
    uncovered_right: int
    errors_left: int
    errors_right: int


@dataclasses.dataclass
class TranslatorResult:
    """Outcome of fitting a TRANSLATOR algorithm to a dataset.

    Carries the induced ``table``, the final ``state`` (cover +
    encoded lengths), a per-iteration ``history`` (the Fig. 2 trace),
    wall-clock ``runtime_seconds``, and — for the exact search —
    ``converged`` / ``search_stats``.  Derived metrics are exposed as
    properties (``n_rules``, ``compression_ratio`` = the paper's
    ``L%``, ``correction_fraction``, ``total_bits``) and as a flat
    :meth:`summary` row for tables and sweeps.

    Example::

        result = TranslatorSelect(k=1).fit(data)
        print(result.summary()["compression_ratio"])
    """

    method: str
    dataset_name: str
    table: TranslationTable
    state: CoverState
    history: list[IterationRecord]
    runtime_seconds: float
    converged: bool = True
    search_stats: list[SearchStats] = dataclasses.field(default_factory=list)

    @property
    def n_rules(self) -> int:
        """``|T|``: number of rules in the induced table."""
        return len(self.table)

    @property
    def compression_ratio(self) -> float:
        """``L% = L(D, T) / L(D, ∅)`` as a fraction in (0, 1]."""
        return self.state.compression_ratio()

    @property
    def correction_fraction(self) -> float:
        """``|C|%`` as a fraction."""
        return self.state.correction_fraction()

    @property
    def total_bits(self) -> float:
        """``L(D, T)`` in bits."""
        return self.state.total_length()

    @property
    def gap_bound(self) -> float:
        """Anytime honesty: worst per-search bound on unexplored gain.

        ``0.0`` when every best-rule search ran to completion (the model
        is the greedy algorithm's exact output).  After budgeted
        searches it is the maximum
        :attr:`~repro.core.search.SearchStats.gap_bound` over the fit's
        iterations — no *single* interrupted search left more than this
        many bits of gain unexplored.  It bounds each greedy step, not
        the end-to-end model quality (greedy choices compound), which is
        exactly what the per-iteration searches can prove.
        """
        if not self.search_stats:
            return 0.0
        return max(stats.gap_bound for stats in self.search_stats)

    def summary(self) -> dict[str, object]:
        """One row of a Table 2 / Table 3 style report."""
        return {
            "method": self.method,
            "dataset": self.dataset_name,
            "n_rules": self.n_rules,
            "compression_ratio": self.compression_ratio,
            "correction_fraction": self.correction_fraction,
            "average_rule_length": self.table.average_length,
            "runtime_seconds": self.runtime_seconds,
        }


def _record(state: CoverState, rule: TranslationRule, gain: float) -> IterationRecord:
    snapshot = state.snapshot()
    return IterationRecord(
        index=int(snapshot["n_rules"]),
        rule=rule,
        gain=gain,
        total_bits=float(snapshot["total_bits"]),
        table_bits=float(snapshot["table_bits"]),
        correction_bits_left=float(snapshot["correction_bits_left"]),
        correction_bits_right=float(snapshot["correction_bits_right"]),
        uncovered_left=int(snapshot["uncovered_left"]),
        uncovered_right=int(snapshot["uncovered_right"]),
        errors_left=int(snapshot["errors_left"]),
        errors_right=int(snapshot["errors_right"]),
    )


class TranslatorExact:
    """TRANSLATOR-EXACT (Algorithm 2): greedy with exact best-rule search.

    Parameters
    ----------
    max_iterations:
        Optional cap on the number of rules (``None`` = run to convergence,
        the paper's setting).
    max_rule_size:
        Optional cap on rule size forwarded to the search; ``None``
        reproduces the paper's unbounded search.
    max_nodes_per_search:
        Optional anytime budget per best-rule search.  When hit, the best
        rule found so far is used and ``result.converged`` reports whether
        every search ran to completion.
    kernel:
        Support kernel forwarded to :class:`ExactRuleSearch`:
        ``"bitset"`` (packed, batched), ``"bool"`` (reference) or
        ``"auto"``.  Both return bit-identical models.
    backend:
        Arithmetic backend forwarded to :class:`ExactRuleSearch`:
        ``"native"`` (fused C popcount kernel), ``"numpy"`` (dense
        GEMM), or ``"auto"`` (native when a C toolchain is available
        and the dataset is large enough to benefit, numpy otherwise).
        The fitted model is bit-identical either way.
    n_jobs:
        Worker count for the intra-search root-subtree sharding
        (``None``/``-1`` = all CPUs).  The fitted model — every rule and
        gain in the history — is bit-identical to ``n_jobs=1``; only
        pruning statistics may differ.  Ignored while an anytime
        ``max_nodes_per_search`` budget is set (budgeted searches run
        serially; see :mod:`repro.core.search`).
    time_budget_per_search:
        Optional wall-clock budget in seconds per best-rule search.
        Runs each search through
        :class:`repro.corpus.anytime.AnytimeSearch` — deterministic
        node-budget slices with the clock checked between slices — so
        the *decisions* within each slice stay bit-reproducible even
        though how many slices fit is machine-dependent.  Requires the
        (default) bitset kernel.  ``result.gap_bound`` reports how much
        gain the interrupted searches could have left unexplored.

    Example
    -------
    ::

        from repro import TranslatorExact, generate_planted, SyntheticSpec

        data, _ = generate_planted(SyntheticSpec(n_transactions=200))
        result = TranslatorExact(max_rule_size=4, n_jobs=4).fit(data)
        print(result.n_rules, f"{result.compression_ratio:.2%}")
    """

    def __init__(
        self,
        max_iterations: int | None = None,
        max_rule_size: int | None = None,
        max_nodes_per_search: int | None = None,
        kernel: str = "auto",
        backend: str = "auto",
        n_jobs: int | None = 1,
        time_budget_per_search: float | None = None,
    ) -> None:
        self.max_iterations = max_iterations
        self.max_rule_size = max_rule_size
        self.max_nodes_per_search = max_nodes_per_search
        self.kernel = kernel
        self.backend = backend
        self.n_jobs = n_jobs
        self.time_budget_per_search = time_budget_per_search
        if time_budget_per_search is not None and kernel == "bool":
            raise ValueError(
                "time_budget_per_search requires the bitset kernel "
                "(checkpointed slices)"
            )

    def fit(
        self,
        dataset: TwoViewDataset | None = None,
        codes: CodeLengthModel | None = None,
        cache: SearchCache | None = None,
        store=None,
    ) -> TranslatorResult:
        """Induce a translation table for ``dataset`` (or a column store).

        ``cache`` optionally injects a pre-built :class:`SearchCache` for
        ``dataset`` (the streaming buffer builds one from its
        incrementally maintained packed columns, skipping the repack);
        it must have been constructed for this exact dataset object.

        ``store`` accepts a :class:`repro.corpus.ColumnStore` instead of
        a dataset: the store's already-packed column blocks are stitched
        into the search cache directly (no repacking), and the Boolean
        views are materialised once.  This is the deliberate exit from
        out-of-core mode — a full multi-item fit needs the columns
        resident; use :func:`repro.corpus.topk_pairs` for queries that
        must stay O(block).
        """
        start = time.perf_counter()
        if store is not None:
            if dataset is not None or cache is not None:
                raise ValueError("pass either store= or dataset=/cache=, not both")
            dataset = store.to_dataset()
            cache = SearchCache(
                dataset,
                left_bits=store.left_bits(),
                right_bits=store.right_bits(),
            )
        if dataset is None:
            raise ValueError("fit needs a dataset or a store")
        state = CoverState(dataset, codes)
        history: list[IterationRecord] = []
        all_stats: list[SearchStats] = []
        converged = True
        if cache is not None and cache.dataset is not dataset:
            raise ValueError("cache was built for a different dataset")
        # Packed masks and integer item matrices are dataset-static: build
        # them once and reuse them across all greedy iterations.
        if cache is None:
            cache = SearchCache(dataset)
        while self.max_iterations is None or len(state.table) < self.max_iterations:
            if self.time_budget_per_search is not None:
                from repro.corpus.anytime import AnytimeSearch

                outcome = AnytimeSearch(
                    state,
                    max_nodes=self.max_nodes_per_search,
                    time_budget=self.time_budget_per_search,
                    max_rule_size=self.max_rule_size,
                    kernel=self.kernel,
                    backend=self.backend,
                    cache=cache,
                ).run()
                rule, gain, stats = outcome.rule, outcome.gain, outcome.stats
            else:
                search = ExactRuleSearch(
                    state,
                    max_rule_size=self.max_rule_size,
                    max_nodes=self.max_nodes_per_search,
                    kernel=self.kernel,
                    backend=self.backend,
                    cache=cache,
                    n_jobs=self.n_jobs,
                )
                rule, gain, stats = search.find_best_rule()
            all_stats.append(stats)
            converged = converged and stats.complete
            if rule is None:
                break
            state.add_rule(rule)
            history.append(_record(state, rule, gain))
        result = TranslatorResult(
            method="translator-exact",
            dataset_name=dataset.name,
            table=state.table,
            state=state,
            history=history,
            runtime_seconds=time.perf_counter() - start,
            converged=converged,
            search_stats=all_stats,
        )
        inst = _obs.ACTIVE
        if inst is not None:
            inst.observe_fit(
                result.method, result.runtime_seconds, len(history)
            )
        return result


class _CandidateBased:
    """Shared candidate handling for SELECT and GREEDY.

    The default candidate budget is 10,000 — the low end of the paper's
    10K-200K range — because gain evaluation in pure Python is roughly two
    orders of magnitude slower than the paper's C++ implementation; raise
    ``max_candidates`` to match the paper's upper bound when runtime is no
    concern.
    """

    def __init__(
        self,
        minsup: int | None = None,
        candidates: list[TwoViewCandidate] | None = None,
        closed: bool = True,
        max_candidates: int = 10_000,
        kernel: str = "auto",
        joint_bits=None,
    ) -> None:
        self.minsup = minsup
        self.candidates = candidates
        self.closed = closed
        self.max_candidates = max_candidates
        self.kernel = kernel
        #: Optional pre-packed joint-matrix columns (left items first),
        #: forwarded to the candidate miner so it skips its internal
        #: repack; candidates are bit-identical either way.  Set by the
        #: multi-view translator, which packs each view exactly once.
        self.joint_bits = joint_bits

    def _get_candidates(self, dataset: TwoViewDataset) -> list[TwoViewCandidate]:
        if self.candidates is not None:
            return self.candidates
        if self.minsup is not None:
            # Mine with head-room above the budget, then keep the most
            # supported candidates — an explicit minsup should not abort
            # just because the dataset is denser than expected.  When even
            # the head-room overflows, raise the threshold adaptively (the
            # paper's own recipe: "fix minsup such that the number of
            # candidates remains manageable").
            minsup = self.minsup
            while True:
                try:
                    candidates = two_view_candidates(
                        dataset,
                        minsup,
                        closed=self.closed,
                        max_candidates=20 * self.max_candidates,
                        kernel=self.kernel,
                        bits=self.joint_bits,
                    )
                    break
                except RuntimeError:
                    if minsup >= dataset.n_transactions:
                        raise
                    minsup = min(dataset.n_transactions, 2 * minsup)
            return candidates[: self.max_candidates]
        __, candidates = auto_minsup(
            dataset,
            target_candidates=self.max_candidates,
            closed=self.closed,
            kernel=self.kernel,
            bits=self.joint_bits,
        )
        return candidates


class TranslatorSelect(_CandidateBased):
    """TRANSLATOR-SELECT(k) (Algorithm 3).

    Parameters
    ----------
    k:
        Number of rules selected per iteration (the paper evaluates
        ``k=1`` and ``k=25``).
    minsup:
        Absolute minimum support for candidate mining; ``None`` tunes it
        automatically to the candidate budget (paper, Section 6.1).
    candidates:
        Pre-mined candidates, overriding ``minsup``.
    closed:
        Mine closed candidates (the paper's choice).
    """

    def __init__(
        self,
        k: int = 1,
        minsup: int | None = None,
        candidates: list[TwoViewCandidate] | None = None,
        closed: bool = True,
        max_candidates: int = 10_000,
        max_iterations: int | None = None,
        kernel: str = "auto",
        joint_bits=None,
    ) -> None:
        super().__init__(minsup, candidates, closed, max_candidates, kernel, joint_bits)
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self.max_iterations = max_iterations

    def fit(
        self, dataset: TwoViewDataset, codes: CodeLengthModel | None = None
    ) -> TranslatorResult:
        """Induce a translation table by iterative top-k candidate selection.

        Candidate gains are cached between iterations and recomputed only
        when stale.  A candidate's gain reads right-view cells in its
        consequent columns and left-view cells in its antecedent columns;
        adding a rule changes right cells only in the applied rule's
        ``rhs`` columns and left cells only in its ``lhs`` columns.  A
        cached gain is therefore exact until one of those column sets
        intersects the candidate's — the "dirty column" test below — which
        keeps iterations far below ``O(|candidates|)`` in practice without
        changing the algorithm's semantics.
        """
        start = time.perf_counter()
        candidates = self._get_candidates(dataset)
        state = CoverState(dataset, codes)
        history: list[IterationRecord] = []
        supports = [
            (
                np.flatnonzero(dataset.support_mask(Side.LEFT, candidate.lhs)),
                np.flatnonzero(dataset.support_mask(Side.RIGHT, candidate.rhs)),
            )
            for candidate in candidates
        ]
        lhs_sets = [set(candidate.lhs) for candidate in candidates]
        rhs_sets = [set(candidate.rhs) for candidate in candidates]
        cached: list[tuple[float, TranslationRule] | None] = [None] * len(candidates)
        dirty_left: set[int] = set(range(dataset.n_left))
        dirty_right: set[int] = set(range(dataset.n_right))

        iteration = 0
        while self.max_iterations is None or iteration < self.max_iterations:
            iteration += 1
            for index, candidate in enumerate(candidates):
                entry = cached[index]
                stale = (
                    entry is None
                    or (lhs_sets[index] & dirty_left)
                    or (rhs_sets[index] & dirty_right)
                )
                if stale:
                    support_left, support_right = supports[index]
                    cached[index] = state.best_direction(
                        candidate.lhs,
                        candidate.rhs,
                        support_left=support_left,
                        support_right=support_right,
                    )
            dirty_left = set()
            dirty_right = set()
            scored = [
                (gain, rule)
                for rule, gain in (entry for entry in cached if entry is not None)
                if gain > 0 and rule not in state.table
            ]
            if not scored:
                break
            scored.sort(key=lambda pair: -pair[0])
            top_k = scored[: self.k]
            used: set[tuple[str, int]] = set()
            added_any = False
            for __, rule in top_k:
                rule_items = {("L", item) for item in rule.lhs} | {
                    ("R", item) for item in rule.rhs
                }
                if rule_items & used:
                    # Overlaps a rule added this round: its cached gain is
                    # stale, so it is discarded for this iteration (Alg. 3).
                    continue
                actual_gain = state.gain(rule)
                if actual_gain > 0 and rule not in state.table:
                    state.add_rule(rule)
                    history.append(_record(state, rule, actual_gain))
                    used |= rule_items
                    added_any = True
                    if rule.direction.applies_forward:
                        dirty_right |= set(rule.rhs)
                    if rule.direction.applies_backward:
                        dirty_left |= set(rule.lhs)
            if not added_any:
                break
        return TranslatorResult(
            method=f"translator-select({self.k})",
            dataset_name=dataset.name,
            table=state.table,
            state=state,
            history=history,
            runtime_seconds=time.perf_counter() - start,
        )


class TranslatorGreedy(_CandidateBased):
    """TRANSLATOR-GREEDY: single-pass candidate filtering (Section 5.4).

    Candidates are ordered descending by length and, on equal length, by
    support; each is considered exactly once and the best-direction rule
    is added when its compression gain is strictly positive.
    """

    def fit(
        self, dataset: TwoViewDataset, codes: CodeLengthModel | None = None
    ) -> TranslatorResult:
        """Induce a translation table in one pass over the candidates."""
        start = time.perf_counter()
        candidates = self._get_candidates(dataset)
        ordered = sorted(
            candidates,
            key=lambda candidate: (-candidate.size, -candidate.support, candidate.lhs, candidate.rhs),
        )
        state = CoverState(dataset, codes)
        history: list[IterationRecord] = []
        for candidate in ordered:
            rule, gain = state.best_direction(candidate.lhs, candidate.rhs)
            if gain > 0 and rule not in state.table:
                state.add_rule(rule)
                history.append(_record(state, rule, gain))
        return TranslatorResult(
            method="translator-greedy",
            dataset_name=dataset.name,
            table=state.table,
            state=state,
            history=history,
            runtime_seconds=time.perf_counter() - start,
        )
