"""The TRANSLATE scheme and correction tables (paper, Section 3).

Translation maps one view of the dataset onto a reconstruction of the
other: every rule whose antecedent occurs in the source transaction adds
its consequent to the translated transaction (Algorithm 1).  Rule order is
irrelevant.  Because the reconstruction is imperfect, a *correction table*
``C`` records the cell-wise XOR between the translated and the true view;
applying it makes translation lossless:

    t_R = TRANSLATE(t_L, T) ⊕ c_t

The correction table splits into ``U`` (uncovered: true ones the rules
missed) and ``E`` (errors: ones the rules introduced wrongly), with
``C = U ∪ E`` and ``U ∩ E = ∅`` (Section 5.1).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Set

import numpy as np

from repro.data.dataset import Side, TwoViewDataset
from repro.core.rules import TranslationRule
from repro.core.table import TranslationTable

__all__ = [
    "translate_view",
    "translate_transaction",
    "CorrectionTables",
    "corrections",
    "reconstruct",
]


def translate_view(
    dataset: TwoViewDataset,
    table: TranslationTable | Iterable[TranslationRule],
    target: Side,
) -> np.ndarray:
    """Translate the opposite view of ``dataset`` towards ``target``.

    Vectorised application of Algorithm 1 to all transactions at once:
    returns a Boolean matrix of shape ``(n, |I_target|)`` containing the
    union of the consequents of all firing rules per transaction.
    """
    source = target.opposite
    translated = np.zeros(
        (dataset.n_transactions, dataset.n_side(target)), dtype=bool
    )
    for rule in table:
        if not rule.applies_towards(target):
            continue
        rows = dataset.support_mask(source, rule.antecedent(target))
        if rows.any():
            translated[np.ix_(rows, rule.consequent(target))] = True
    return translated


def translate_transaction(
    source_items: Set[int],
    table: TranslationTable | Iterable[TranslationRule],
    target: Side = Side.RIGHT,
) -> frozenset[int]:
    """Translate a single transaction (Algorithm 1, literal form).

    ``source_items`` is the set of item indices present in the source view
    of the transaction.  Returns the translated itemset for ``target``.
    """
    translated: set[int] = set()
    for rule in table:
        if not rule.applies_towards(target):
            continue
        if set(rule.antecedent(target)) <= source_items:
            translated.update(rule.consequent(target))
    return frozenset(translated)


@dataclasses.dataclass(frozen=True)
class CorrectionTables:
    """All correction artefacts of a dataset/table pair.

    Attributes hold Boolean matrices aligned with the corresponding view:
    ``translated_*`` are the raw rule-based reconstructions, ``uncovered_*``
    the ``U`` tables, ``errors_*`` the ``E`` tables and ``correction_*``
    their unions ``C = U ∪ E = translated XOR data``.
    """

    translated_left: np.ndarray
    translated_right: np.ndarray
    uncovered_left: np.ndarray
    uncovered_right: np.ndarray
    errors_left: np.ndarray
    errors_right: np.ndarray

    @property
    def correction_left(self) -> np.ndarray:
        """``C_L = U_L ∪ E_L``."""
        return self.uncovered_left | self.errors_left

    @property
    def correction_right(self) -> np.ndarray:
        """``C_R = U_R ∪ E_R``."""
        return self.uncovered_right | self.errors_right

    def correction(self, side: Side) -> np.ndarray:
        """Correction table of one side."""
        return self.correction_left if side is Side.LEFT else self.correction_right

    @property
    def n_correction_cells(self) -> int:
        """``|C| = |U| + |E|`` over both sides (the numerator of |C|%)."""
        return int(self.correction_left.sum() + self.correction_right.sum())


def corrections(
    dataset: TwoViewDataset,
    table: TranslationTable | Iterable[TranslationRule],
) -> CorrectionTables:
    """Compute translated views and correction tables for both directions.

    Args:
        dataset: The two-view dataset being encoded.
        table: The translation rules (any iterable; order = cover order).

    Returns:
        A :class:`CorrectionTables` bundle: per-direction translated
        views plus the correction sets that make TRANSLATE lossless —
        ``reconstruct`` applied to it returns the original views
        exactly (Algorithm 1; property-tested in
        ``tests/test_properties.py``).
    """
    rules = list(table)
    translated_right = translate_view(dataset, rules, Side.RIGHT)
    translated_left = translate_view(dataset, rules, Side.LEFT)
    return CorrectionTables(
        translated_left=translated_left,
        translated_right=translated_right,
        uncovered_left=dataset.left & ~translated_left,
        uncovered_right=dataset.right & ~translated_right,
        errors_left=translated_left & ~dataset.left,
        errors_right=translated_right & ~dataset.right,
    )


def reconstruct(
    dataset: TwoViewDataset,
    table: TranslationTable | Iterable[TranslationRule],
    target: Side,
    correction: np.ndarray | None = None,
) -> np.ndarray:
    """Losslessly reconstruct one view from the other.

    When ``correction`` is omitted it is derived from the dataset itself;
    passing a stored correction table demonstrates the lossless pipeline:
    ``reconstruct == dataset.view(target)`` always holds.
    """
    rules = list(table)
    translated = translate_view(dataset, rules, target)
    if correction is None:
        correction = translated ^ dataset.view(target)
    return translated ^ correction
