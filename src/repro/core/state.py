"""Incremental cover state for translation-table construction.

All three TRANSLATOR algorithms grow a table one rule at a time, and the
compression gain of a candidate rule (paper, Eq. 1-2) must be evaluated
against the *current* table thousands of times per iteration.  This module
maintains the derived state — translated views, uncovered tables ``U``,
error tables ``E`` and all encoded-length totals — incrementally, and
computes gains as vectorised masked sums:

    Δ_{D|T}(X -> Y) = Σ_{t: X ⊆ t_L}  L(Y ∩ U_t^R | D_R)
                                     - L(Y \\ (t_R ∪ E_t^R) | D_R)

Key facts exploited (Section 5.1): rules are only ever added, so the
translated views grow monotonically, ``U`` shrinks monotonically and ``E``
grows monotonically; an error can never be removed again.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Side, TwoViewDataset
from repro.core.encoding import CodeLengthModel
from repro.core.rules import Direction, TranslationRule
from repro.core.table import TranslationTable

__all__ = ["CoverState"]


class CoverState:
    """Mutable state of a translation table being constructed for a dataset.

    The state owns a :class:`TranslationTable` plus the matrices derived
    from it.  Rules are added through :meth:`add_rule`, which keeps
    everything consistent in ``O(|supp| * |rule|)`` time.

    Parameters
    ----------
    dataset:
        The two-view dataset being modelled.
    code_lengths:
        Optional pre-built :class:`CodeLengthModel` (shared across states
        to avoid recomputation).
    """

    def __init__(
        self,
        dataset: TwoViewDataset,
        code_lengths: CodeLengthModel | None = None,
    ) -> None:
        self.dataset = dataset
        self.codes = code_lengths if code_lengths is not None else CodeLengthModel(dataset)
        self.table = TranslationTable()
        n = dataset.n_transactions
        self.translated_left = np.zeros((n, dataset.n_left), dtype=bool)
        self.translated_right = np.zeros((n, dataset.n_right), dtype=bool)
        # With an empty table everything is uncovered and nothing is an error.
        self.uncovered_left = dataset.left.copy()
        self.uncovered_right = dataset.right.copy()
        self.errors_left = np.zeros_like(dataset.left)
        self.errors_right = np.zeros_like(dataset.right)
        # Finite per-item weights: infinite codes belong to never-occurring
        # items, which can never be covered nor erroneously introduced by
        # rules built from occurring itemsets (guarded in gain/add paths).
        self._weights_left = np.where(
            np.isfinite(self.codes.lengths_left), self.codes.lengths_left, 0.0
        )
        self._weights_right = np.where(
            np.isfinite(self.codes.lengths_right), self.codes.lengths_right, 0.0
        )
        self.table_bits = 0.0
        self.correction_bits_left = float(
            np.dot(self.uncovered_left.sum(axis=0), self._weights_left)
        )
        self.correction_bits_right = float(
            np.dot(self.uncovered_right.sum(axis=0), self._weights_right)
        )
        self.baseline_bits = self.correction_bits_left + self.correction_bits_right

    # ------------------------------------------------------------------
    # Length accounting
    # ------------------------------------------------------------------
    def total_length(self) -> float:
        """``L(D_{L<->R}, T) = L(T) + L(C_L|T) + L(C_R|T)`` in bits."""
        return self.table_bits + self.correction_bits_left + self.correction_bits_right

    def compression_ratio(self) -> float:
        """``L% = L(D, T) / L(D, ∅)`` (reported as a fraction, not percent)."""
        if self.baseline_bits == 0:
            return 1.0
        return self.total_length() / self.baseline_bits

    def correction_fraction(self) -> float:
        """``|C|% = |C| / ((|I_L| + |I_R|) * |D|)`` (Section 6, fraction)."""
        cells = int(self.uncovered_left.sum() + self.errors_left.sum())
        cells += int(self.uncovered_right.sum() + self.errors_right.sum())
        denominator = self.dataset.n_items * self.dataset.n_transactions
        return cells / denominator if denominator else 0.0

    def snapshot(self) -> dict[str, float | int]:
        """Per-iteration statistics used by the Fig. 2 construction trace."""
        return {
            "n_rules": len(self.table),
            "uncovered_left": int(self.uncovered_left.sum()),
            "uncovered_right": int(self.uncovered_right.sum()),
            "errors_left": int(self.errors_left.sum()),
            "errors_right": int(self.errors_right.sum()),
            "table_bits": self.table_bits,
            "correction_bits_left": self.correction_bits_left,
            "correction_bits_right": self.correction_bits_right,
            "total_bits": self.total_length(),
            "compression_ratio": self.compression_ratio(),
        }

    # ------------------------------------------------------------------
    # Gain computation (Eq. 1-2)
    # ------------------------------------------------------------------
    def _delta_cells(
        self, target: Side, rows: np.ndarray, consequent: tuple[int, ...]
    ) -> float:
        """``Δ_{D|T}`` of one direction given the antecedent's support rows.

        ``rows`` is an integer index array of the transactions in which the
        antecedent occurs (the fast path used by the candidate-based
        algorithms, which precompute supports once).
        """
        if rows.size == 0:
            return 0.0
        consequent_columns = list(consequent)
        if target is Side.RIGHT:
            uncovered = self.uncovered_right
            translated = self.translated_right
            data = self.dataset.right
            weights = self._weights_right[consequent_columns]
        else:
            uncovered = self.uncovered_left
            translated = self.translated_left
            data = self.dataset.left
            weights = self._weights_left[consequent_columns]
        grid = np.ix_(rows, consequent_columns)
        covered_cells = uncovered[grid]
        # New errors: consequent items neither present in the data nor
        # already translated (already-translated absent items are in E).
        error_cells = ~(data[grid] | translated[grid])
        return float(covered_cells.sum(axis=0) @ weights) - float(
            error_cells.sum(axis=0) @ weights
        )

    def _delta_towards(
        self, target: Side, antecedent: tuple[int, ...], consequent: tuple[int, ...]
    ) -> float:
        """``Δ_{D|T}`` of one direction: covered bits minus new error bits."""
        source = target.opposite
        rows = np.flatnonzero(self.dataset.support_mask(source, antecedent))
        return self._delta_cells(target, rows, consequent)

    def delta_forward(self, lhs: tuple[int, ...], rhs: tuple[int, ...]) -> float:
        """``Δ_{D|T}(X -> Y)``: data-length reduction of the forward part."""
        return self._delta_towards(Side.RIGHT, lhs, rhs)

    def delta_backward(self, lhs: tuple[int, ...], rhs: tuple[int, ...]) -> float:
        """``Δ_{D|T}(X <- Y)``: data-length reduction of the backward part."""
        return self._delta_towards(Side.LEFT, rhs, lhs)

    def gain(self, rule: TranslationRule) -> float:
        """Total compression gain ``Δ_{D,T}(rule)`` (positive = better).

        Equals ``L(D, T) - L(D, T ∪ {rule})``: the data-length reduction of
        the applicable directions minus the encoded length of the rule.
        """
        delta = 0.0
        if rule.direction.applies_forward:
            delta += self.delta_forward(rule.lhs, rule.rhs)
        if rule.direction.applies_backward:
            delta += self.delta_backward(rule.lhs, rule.rhs)
        return delta - self.codes.rule_length(rule)

    def best_direction(
        self,
        lhs: tuple[int, ...],
        rhs: tuple[int, ...],
        support_left: np.ndarray | None = None,
        support_right: np.ndarray | None = None,
    ) -> tuple[TranslationRule, float]:
        """Best of the three rule instantiations of an itemset pair.

        Computes the two directional deltas once and derives all three
        gains from them (the bidirectional delta is their sum, Section 5.1).
        ``support_left`` / ``support_right`` optionally pass precomputed
        support row-index arrays of ``lhs`` / ``rhs`` (the candidate-based
        algorithms reuse them across iterations).
        """
        if support_left is None:
            support_left = np.flatnonzero(self.dataset.support_mask(Side.LEFT, lhs))
        if support_right is None:
            support_right = np.flatnonzero(self.dataset.support_mask(Side.RIGHT, rhs))
        forward = self._delta_cells(Side.RIGHT, support_left, rhs)
        backward = self._delta_cells(Side.LEFT, support_right, lhs)
        base_bits = self.codes.itemset_length(Side.LEFT, lhs) + self.codes.itemset_length(
            Side.RIGHT, rhs
        )
        gains = {
            Direction.FORWARD: forward - base_bits - 2.0,
            Direction.BACKWARD: backward - base_bits - 2.0,
            Direction.BOTH: forward + backward - base_bits - 1.0,
        }
        direction = max(gains, key=lambda key: gains[key])
        return TranslationRule(lhs, rhs, direction), gains[direction]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _apply_towards(
        self, target: Side, antecedent: tuple[int, ...], consequent: tuple[int, ...]
    ) -> None:
        source = target.opposite
        rows = self.dataset.support_mask(source, antecedent)
        if not rows.any():
            return
        columns = list(consequent)
        if target is Side.RIGHT:
            translated, uncovered, errors = (
                self.translated_right,
                self.uncovered_right,
                self.errors_right,
            )
            data = self.dataset.right
            weights = self._weights_right[columns]
        else:
            translated, uncovered, errors = (
                self.translated_left,
                self.uncovered_left,
                self.errors_left,
            )
            data = self.dataset.left
            weights = self._weights_left[columns]
        grid = np.ix_(rows, columns)
        newly_covered = uncovered[grid]
        new_errors = ~(data[grid] | translated[grid])
        covered_bits = float(newly_covered.sum(axis=0) @ weights)
        error_bits = float(new_errors.sum(axis=0) @ weights)
        translated[grid] = True
        uncovered[grid] = False
        errors[grid] |= new_errors
        if target is Side.RIGHT:
            self.correction_bits_right += error_bits - covered_bits
        else:
            self.correction_bits_left += error_bits - covered_bits

    def add_rule(self, rule: TranslationRule) -> None:
        """Add ``rule`` to the table and update all derived state."""
        self.table.add(rule)
        self.table_bits += self.codes.rule_length(rule)
        if rule.direction.applies_forward:
            self._apply_towards(Side.RIGHT, rule.lhs, rule.rhs)
        if rule.direction.applies_backward:
            self._apply_towards(Side.LEFT, rule.rhs, rule.lhs)

    # ------------------------------------------------------------------
    # Bounds support (Section 5.2)
    # ------------------------------------------------------------------
    def transaction_upper_bounds(self, side: Side) -> np.ndarray:
        """``tub`` vector: encoded size of each transaction's uncovered items.

        ``tub(t_side) = L(U_t^side | D_side)``; constant during the search
        for a single rule, recomputed between iterations.
        """
        if side is Side.RIGHT:
            return self.uncovered_right @ self._weights_right
        return self.uncovered_left @ self._weights_left
