"""Translation tables.

A translation table is a set of translation rules (paper, Definition 2).
Rule order never influences translation (Algorithm 1 unions all matching
consequents), so the table behaves as an ordered container purely for
reporting purposes: rules keep the order in which the search added them,
which is also the order of decreasing compression gain for the greedy
algorithms.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.data.dataset import TwoViewDataset
from repro.data.schema import ViewSchema
from repro.core.rules import Direction, TranslationRule

__all__ = ["TABLE_SCHEMA_VERSION", "TranslationTable"]

#: Current on-disk schema version of :meth:`TranslationTable.to_json`.
#: Version 1 was a bare JSON list of rule dicts; version 2 wraps the
#: rules in an object carrying this number so serving artifacts (and any
#: future field) can evolve without breaking old readers.  Version 3
#: adds an optional ``"schema"`` section carrying the views'
#: :class:`~repro.data.schema.ViewSchema` payloads — emitted only when
#: the table carries schemas, so schema-less tables still serialise as
#: byte-identical version-2 documents and legacy readers are unaffected.
TABLE_SCHEMA_VERSION = 3


class TranslationTable:
    """An ordered collection of unique translation rules.

    The model ``T`` of the paper: rules are kept in insertion order
    (the cover order used by TRANSLATE), duplicates are rejected, and
    the table knows how to render itself against a dataset's item
    names and to serialise to/from JSON (:meth:`save`, :meth:`load`).

    Args:
        rules: Optional initial rules, added in iteration order.
        left_schema: Optional :class:`~repro.data.schema.ViewSchema`
            provenance of the left-view items, carried into the payload.
        right_schema: Optional right-view schema.

    Example::

        >>> from repro import TranslationRule, TranslationTable
        >>> table = TranslationTable([TranslationRule((0,), (1,), "->")])
        >>> len(table)
        1
    """

    def __init__(
        self,
        rules: Iterable[TranslationRule] = (),
        left_schema: ViewSchema | None = None,
        right_schema: ViewSchema | None = None,
    ) -> None:
        self._rules: list[TranslationRule] = []
        self._seen: set[TranslationRule] = set()
        self.left_schema = left_schema
        self.right_schema = right_schema
        for rule in rules:
            self.add(rule)

    def with_schemas(
        self, left_schema: ViewSchema | None, right_schema: ViewSchema | None
    ) -> "TranslationTable":
        """Copy of the table carrying the given view schemas."""
        return TranslationTable(self._rules, left_schema, right_schema)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def add(self, rule: TranslationRule) -> None:
        """Append ``rule``; duplicate rules are rejected."""
        if not isinstance(rule, TranslationRule):
            raise TypeError(f"expected TranslationRule, got {type(rule).__name__}")
        if rule in self._seen:
            raise ValueError(f"duplicate rule {rule}")
        self._rules.append(rule)
        self._seen.add(rule)

    def __iter__(self) -> Iterator[TranslationRule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __getitem__(self, index: int) -> TranslationRule:
        return self._rules[index]

    def __contains__(self, rule: object) -> bool:
        return rule in self._seen

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TranslationTable):
            return NotImplemented
        return set(self._rules) == set(other._rules)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def n_bidirectional(self) -> int:
        """Number of ``<->`` rules."""
        return sum(1 for rule in self._rules if rule.direction is Direction.BOTH)

    @property
    def n_unidirectional(self) -> int:
        """Number of ``->`` or ``<-`` rules."""
        return len(self._rules) - self.n_bidirectional

    @property
    def average_length(self) -> float:
        """Average number of items per rule (the ``l`` column of Table 3)."""
        if not self._rules:
            return 0.0
        return sum(rule.size for rule in self._rules) / len(self._rules)

    def items_used(self) -> tuple[set[int], set[int]]:
        """Distinct left and right items appearing in any rule."""
        left: set[int] = set()
        right: set[int] = set()
        for rule in self._rules:
            left.update(rule.lhs)
            right.update(rule.rhs)
        return left, right

    def rules_with_item(
        self, item: int, left: bool
    ) -> list[TranslationRule]:
        """All rules containing a given item on the given side (Fig. 6)."""
        if left:
            return [rule for rule in self._rules if item in rule.lhs]
        return [rule for rule in self._rules if item in rule.rhs]

    # ------------------------------------------------------------------
    # Rendering / serialisation
    # ------------------------------------------------------------------
    def render(self, dataset: TwoViewDataset | None = None, limit: int | None = None) -> str:
        """Multi-line human-readable listing of the rules."""
        rows = self._rules if limit is None else self._rules[:limit]
        lines = [rule.render(dataset) for rule in rows]
        if limit is not None and len(self._rules) > limit:
            lines.append(f"... ({len(self._rules) - limit} more rules)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"TranslationTable({len(self._rules)} rules, "
            f"{self.n_bidirectional} bidirectional)"
        )

    def to_payload(self) -> dict[str, object]:
        """JSON-serialisable dict form.

        Schema-less tables emit the version-2 document unchanged (byte
        stability for existing artifacts and their content hashes);
        tables carrying view schemas emit version 3 with a ``"schema"``
        section.
        """
        if self.left_schema is None and self.right_schema is None:
            return {
                "schema_version": 2,
                "rules": [rule.to_dict() for rule in self._rules],
            }
        return {
            "schema_version": TABLE_SCHEMA_VERSION,
            "rules": [rule.to_dict() for rule in self._rules],
            "schema": {
                "left": self.left_schema.to_payload() if self.left_schema else None,
                "right": self.right_schema.to_payload() if self.right_schema else None,
            },
        }

    @classmethod
    def from_payload(cls, payload: object) -> "TranslationTable":
        """Inverse of :meth:`to_payload`; also accepts the legacy format.

        Schema version 1 tables were serialised as a bare list of rule
        dicts; they load transparently.  A schema version newer than
        :data:`TABLE_SCHEMA_VERSION` is rejected rather than silently
        misread.
        """
        left_schema = right_schema = None
        if isinstance(payload, list):  # schema version 1 (legacy)
            entries = payload
        elif isinstance(payload, dict):
            version = payload.get("schema_version")
            if not isinstance(version, int) or not 1 <= version <= TABLE_SCHEMA_VERSION:
                raise ValueError(
                    f"unsupported table schema_version {version!r} "
                    f"(this library reads versions 1..{TABLE_SCHEMA_VERSION})"
                )
            entries = payload.get("rules")
            if not isinstance(entries, list):
                raise ValueError("table payload has no 'rules' list")
            schemas = payload.get("schema")
            if schemas is not None:
                if not isinstance(schemas, dict):
                    raise ValueError("table 'schema' section must be an object")
                if schemas.get("left") is not None:
                    left_schema = ViewSchema.from_payload(schemas["left"])
                if schemas.get("right") is not None:
                    right_schema = ViewSchema.from_payload(schemas["right"])
        else:
            raise ValueError(
                f"table payload must be a list or dict, got {type(payload).__name__}"
            )
        return cls(
            (TranslationRule.from_dict(entry) for entry in entries),
            left_schema=left_schema,
            right_schema=right_schema,
        )

    def to_json(self) -> str:
        """Serialise the table to a JSON string."""
        return json.dumps(self.to_payload(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "TranslationTable":
        """Inverse of :meth:`to_json` (legacy bare-list payloads included)."""
        return cls.from_payload(json.loads(text))

    def save(self, path: str | Path) -> None:
        """Write the table to ``path`` as JSON."""
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "TranslationTable":
        """Read a table previously written with :meth:`save`."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
