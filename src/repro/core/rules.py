"""Translation rules.

A translation rule ``X ⇒ Y`` consists of a non-empty antecedent itemset
``X`` over the left vocabulary, a direction in ``{->, <-, <->}``, and a
non-empty consequent itemset ``Y`` over the right vocabulary (paper,
Definition 1).  Rules are immutable value objects; item indices are column
positions within their respective view.
"""

from __future__ import annotations

import dataclasses
import enum
from collections.abc import Iterable

from repro.data.dataset import Side, TwoViewDataset

__all__ = ["Direction", "TranslationRule"]


class Direction(enum.Enum):
    """Rule direction: which translations the rule participates in.

    ``FORWARD`` (``"->"``) rules predict right-view items from the
    left, ``BACKWARD`` (``"<-"``) the reverse, ``BOTH`` (``"<->"``)
    participate in both translations for the price of one rule entry
    (Section 3 of the paper).

    Example::

        >>> from repro import Direction
        >>> Direction("->").applies_forward
        True
    """

    FORWARD = "->"  # left to right only
    BACKWARD = "<-"  # right to left only
    BOTH = "<->"  # bidirectional

    @property
    def encoded_bits(self) -> int:
        """``L(dir)``: 1 bit for bidirectional, 2 bits otherwise (Section 4.1)."""
        return 1 if self is Direction.BOTH else 2

    @property
    def applies_forward(self) -> bool:
        """Whether the rule fires when translating left to right."""
        return self in (Direction.FORWARD, Direction.BOTH)

    @property
    def applies_backward(self) -> bool:
        """Whether the rule fires when translating right to left."""
        return self in (Direction.BACKWARD, Direction.BOTH)

    @classmethod
    def from_string(cls, text: str) -> "Direction":
        """Parse ``'->'``, ``'<-'`` or ``'<->'``."""
        for member in cls:
            if member.value == text:
                return member
        raise ValueError(f"invalid direction {text!r}")

    def __str__(self) -> str:
        return self.value


def _normalise_itemset(items: Iterable[int], what: str) -> tuple[int, ...]:
    itemset = tuple(sorted(set(int(item) for item in items)))
    if not itemset:
        raise ValueError(f"{what} must be non-empty")
    if itemset[0] < 0:
        raise ValueError(f"{what} contains a negative item index")
    return itemset


@dataclasses.dataclass(frozen=True)
class TranslationRule:
    """An immutable translation rule ``X ⇒ Y``.

    Attributes
    ----------
    lhs:
        Sorted left-view column indices of the antecedent ``X``.
    rhs:
        Sorted right-view column indices of the consequent ``Y``.
    direction:
        The rule's :class:`Direction`.
    """

    lhs: tuple[int, ...]
    rhs: tuple[int, ...]
    direction: Direction

    def __post_init__(self) -> None:
        object.__setattr__(self, "lhs", _normalise_itemset(self.lhs, "lhs"))
        object.__setattr__(self, "rhs", _normalise_itemset(self.rhs, "rhs"))
        if not isinstance(self.direction, Direction):
            object.__setattr__(self, "direction", Direction.from_string(self.direction))

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total number of items in the rule."""
        return len(self.lhs) + len(self.rhs)

    def antecedent(self, target: Side) -> tuple[int, ...]:
        """The itemset matched when translating *towards* ``target``."""
        return self.lhs if target is Side.RIGHT else self.rhs

    def consequent(self, target: Side) -> tuple[int, ...]:
        """The itemset emitted when translating *towards* ``target``."""
        return self.rhs if target is Side.RIGHT else self.lhs

    def applies_towards(self, target: Side) -> bool:
        """Whether the rule fires when translating towards ``target``."""
        if target is Side.RIGHT:
            return self.direction.applies_forward
        return self.direction.applies_backward

    def with_direction(self, direction: Direction) -> "TranslationRule":
        """Return a copy of the rule with a different direction."""
        return TranslationRule(self.lhs, self.rhs, direction)

    # ------------------------------------------------------------------
    def render(self, dataset: TwoViewDataset | None = None) -> str:
        """Human-readable form, with item names when a dataset is given.

        When the dataset carries view schemas the items render in
        original units (``age ∈ [30, 45)`` instead of ``age=bin3``).
        """
        if dataset is None:
            left = ", ".join(map(str, self.lhs))
            right = ", ".join(map(str, self.rhs))
        else:
            left = ", ".join(dataset.item_label(Side.LEFT, item) for item in self.lhs)
            right = ", ".join(dataset.item_label(Side.RIGHT, item) for item in self.rhs)
        return f"{{{left}}} {self.direction} {{{right}}}"

    def __str__(self) -> str:
        return self.render()

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation."""
        return {
            "lhs": list(self.lhs),
            "rhs": list(self.rhs),
            "direction": self.direction.value,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "TranslationRule":
        """Inverse of :meth:`to_dict`."""
        return cls(
            tuple(payload["lhs"]),  # type: ignore[arg-type]
            tuple(payload["rhs"]),  # type: ignore[arg-type]
            Direction.from_string(str(payload["direction"])),
        )
