"""Packed-bitset kernel for transaction-set algebra.

Every miner and the exact rule search spend most of their time intersecting
*transaction sets* (which transactions contain an item / itemset) and
measuring the result — plain counts for supports, weighted sums for the
paper's ``tub``/``rub`` bounds.  The seed implementation stored those sets
as ``n_transactions``-length Boolean numpy arrays; this module packs them
into 64-bit words so a set intersection touches 64x less memory and a
support count is a handful of ``popcount`` instructions.

Word layout
-----------
A transaction set over ``n`` transactions is stored as ``ceil(n / 64)``
``uint64`` words.  Packing runs through ``np.packbits(..,
bitorder="little")`` on the *byte view* of the word array, and unpacking
reverses the identical byte view, so transaction ``t`` always lives at byte
``t // 8``, bit ``t % 8`` of the buffer regardless of platform endianness;
bitwise AND/OR/ANDNOT and popcount are bit-position agnostic, which makes
every operation in this module endian-safe.  Padding bits (positions ``n ..
64 * n_words``) are guaranteed zero by the packing helpers and preserved
zero by AND; OR/ANDNOT of two packed masks also keep the padding zero
because both operands have zero padding.

Popcount strategy
-----------------
``np.bitwise_count`` (numpy >= 2.0) is used when available; otherwise an
8-bit lookup table applied to the byte view of the words (one gather + sum
per 8 transactions).  Weighted popcounts — ``sum(weights[t] for set bits
t)``, the generic primitive for ``tub @ supp`` style bounds — use
word-blocked accumulation: only the non-zero words are unpacked, and their
bits are folded against a ``(n_words, 64)`` padded weight table, so the
cost scales with the population rather than the universe.

Note that the exact search (:mod:`repro.core.search`) does *not* compute
its bounds through :func:`weighted_popcount`: it needs bit-identical
results across kernels, which floating-point reductions cannot promise,
so it quantizes its weights to fixed-point integers and batches the
weighted sums as exact matrix products, relying on this module only for
the (exact) packing, bitwise and counting primitives.  The float-weighted
helpers and the ``and/or/andnot`` row algebra are the module's
general-purpose surface for other consumers (and are exercised directly
by the property tests).

Backends
--------
The batch primitives that dominate the large-``n`` regimes —
:func:`and_popcount_rows`, :func:`fixed_weighted_popcount`,
:func:`child_metrics_rows`, :func:`subset_match_rows`,
:func:`or_union_rows`, :func:`match_union_rows`, :func:`and_reduce_rows`
— run on one of two interchangeable backends, selected per call (or per
consumer) with ``backend="numpy"|"native"|"auto"``, mirroring the
search's ``kernel=`` selector:

* ``"numpy"`` — the reference vectorised paths in this module; always
  available.
* ``"native"`` — the fused C kernel of :mod:`repro.native`, compiled on
  demand with the system ``cc`` and loaded via ctypes; raises when no
  toolchain is available.
* ``"auto"`` — ``"native"`` when a kernel could be built, ``"numpy"``
  otherwise (the fallback is silent and automatic; set
  ``REPRO_BACKEND=numpy`` to pin the default, or
  ``REPRO_NATIVE_DISABLE=1`` to simulate a machine without a compiler).

Both backends are **bit-identical**: every primitive is exact integer
arithmetic (counts, fixed-point weighted sums, word ops) whose result
does not depend on the evaluation order, enforced by the property tests
in ``tests/test_native.py``.

Concurrency
-----------
Packed masks and :class:`BitMatrix` instances are immutable once built
(:meth:`BitMatrix.row` returns read-only views by convention), so they
are safe to share across the worker threads of the sharded search and
beam expansion (``n_jobs > 1``): every operation here allocates its
result instead of writing into an operand.  Build them once per fit —
:class:`repro.core.search.SearchCache` and ``TranslatorBeam.fit`` do —
and hand the same instance to every shard.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro import obs as _obs

__all__ = [
    "BACKENDS",
    "WORD_BITS",
    "BitMatrix",
    "and_popcount_rows",
    "and_reduce_many_rows",
    "and_reduce_rows",
    "child_metrics_rows",
    "fixed_weight_table",
    "fixed_weighted_popcount",
    "match_union_rows",
    "n_words_for",
    "native_kernel",
    "or_union_rows",
    "pack_mask",
    "pack_rows_at",
    "resolve_backend",
    "shift_rows",
    "subset_match_rows",
    "unpack_mask",
    "popcount",
    "popcount_rows",
    "weight_table",
    "weighted_popcount",
]

WORD_BITS = 64
_WORD_BYTES = WORD_BITS // 8

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")
# Fallback: population count of every byte value (applied to the byte view).
_POPCOUNT8 = np.array([bin(value).count("1") for value in range(256)], dtype=np.uint64)


def n_words_for(n_bits: int) -> int:
    """Number of 64-bit words needed to hold ``n_bits`` bit positions."""
    if n_bits < 0:
        raise ValueError("n_bits must be non-negative")
    return (n_bits + WORD_BITS - 1) // WORD_BITS


def pack_mask(mask: np.ndarray) -> np.ndarray:
    """Pack a 1-D Boolean mask into a ``uint64`` word array (padding zero)."""
    mask = np.ascontiguousarray(mask, dtype=bool)
    if mask.ndim != 1:
        raise ValueError("mask must be 1-dimensional")
    words = n_words_for(mask.size)
    buffer = np.zeros(words * _WORD_BYTES, dtype=np.uint8)
    packed = np.packbits(mask, bitorder="little")
    buffer[: packed.size] = packed
    return buffer.view(np.uint64)


def _pack_rows(matrix: np.ndarray) -> np.ndarray:
    """Pack each row of a 2-D Boolean matrix into words (padding zero)."""
    matrix = np.ascontiguousarray(matrix, dtype=bool)
    n_rows, n_bits = matrix.shape
    words = n_words_for(n_bits)
    buffer = np.zeros((n_rows, words * _WORD_BYTES), dtype=np.uint8)
    if n_bits:
        packed = np.packbits(matrix, axis=1, bitorder="little")
        buffer[:, : packed.shape[1]] = packed
    return buffer.view(np.uint64)


def pack_rows_at(matrix: np.ndarray, offset: int) -> np.ndarray:
    """Pack a ``(k, n_items)`` Boolean chunk at a bit ``offset`` of word 0.

    The streaming append primitive: transaction ``i`` of the chunk lands
    at bit position ``offset + i`` of item row ``j`` in the returned
    ``(n_items, n_words_for(offset + k))`` word array, and the first
    ``offset`` bit positions are zero.  ORing the first returned word
    into an existing buffer whose bits at and above ``offset`` are still
    zero — the tail word of an append-only buffer — therefore splices
    the chunk in exactly, touching only the tail words.

    Args:
        matrix: ``(k, n_items)`` Boolean chunk, one row per new
            transaction (the same orientation the dataset views use).
        offset: Bit position inside the first word where transaction 0
            goes; must be in ``[0, 64)``.
    """
    matrix = np.ascontiguousarray(matrix, dtype=bool)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-dimensional")
    if not 0 <= offset < WORD_BITS:
        raise ValueError(f"offset must be in [0, {WORD_BITS}), got {offset}")
    k, n_items = matrix.shape
    padded = np.zeros((n_items, offset + k), dtype=bool)
    padded[:, offset:] = matrix.T
    return _pack_rows(padded)


def shift_rows(words: np.ndarray, shift: int) -> np.ndarray:
    """Shift every row of a 2-D word array down by ``shift`` bit positions.

    Bit ``i + shift`` of the input becomes bit ``i`` of the output (the
    top ``shift`` bits of the last word fill with zeros).  This is the
    window-rotation primitive of the streaming buffer: extracting a
    window whose first live transaction sits mid-word is one
    ``shift_rows`` over the live words instead of a full repack.

    Args:
        words: ``(n_rows, n_words)`` word array.
        shift: Bit distance, in ``[0, 64)``.
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError("words must be 2-dimensional")
    if not 0 <= shift < WORD_BITS:
        raise ValueError(f"shift must be in [0, {WORD_BITS}), got {shift}")
    if shift == 0 or words.shape[1] == 0:
        return words.copy()
    out = words >> np.uint64(shift)
    out[:, :-1] |= words[:, 1:] << np.uint64(WORD_BITS - shift)
    return out


def unpack_mask(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_mask`: words back to a Boolean mask."""
    if n_bits == 0:
        return np.zeros(0, dtype=bool)
    bits = np.unpackbits(
        np.ascontiguousarray(words).view(np.uint8), bitorder="little"
    )
    return bits[:n_bits].astype(bool)


def popcount(words: np.ndarray) -> int:
    """Total number of set bits in a word array."""
    if words.size == 0:
        return 0
    if _HAS_BITWISE_COUNT:
        return int(np.bitwise_count(words).sum())
    return int(_POPCOUNT8[np.ascontiguousarray(words).view(np.uint8)].sum())


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """Per-row set-bit counts of a 2-D word array."""
    if words.size == 0:
        return np.zeros(words.shape[0], dtype=np.int64)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words).sum(axis=1).astype(np.int64)
    byte_view = np.ascontiguousarray(words).view(np.uint8)
    return _POPCOUNT8[byte_view].sum(axis=1).astype(np.int64)


def weight_table(weights: np.ndarray) -> np.ndarray:
    """Lay per-transaction weights out as a ``(n_words, 64)`` padded table.

    The table is the companion of a packed mask: word ``w`` of the mask
    selects within row ``w`` of the table, and the padding tail is zero so
    padded bit positions can never contribute.
    """
    weights = np.ascontiguousarray(weights, dtype=np.float64)
    if weights.ndim != 1:
        raise ValueError("weights must be 1-dimensional")
    words = n_words_for(weights.size)
    table = np.zeros((words, WORD_BITS), dtype=np.float64)
    table.reshape(-1)[: weights.size] = weights
    return table


def weighted_popcount(words: np.ndarray, table: np.ndarray) -> float:
    """``sum(weights[t] for set bits t)`` via word-blocked accumulation.

    ``table`` must come from :func:`weight_table` for the same universe
    size.  Only the non-zero words are unpacked and folded against their
    table rows, so sparse sets cost proportionally less.
    """
    if words.size != table.shape[0]:
        raise ValueError("words and weight table disagree on universe size")
    active = np.flatnonzero(words)
    if active.size == 0:
        return 0.0
    bits = np.unpackbits(
        np.ascontiguousarray(words[active]).view(np.uint8), bitorder="little"
    )
    return float(np.dot(bits.astype(np.float64), table[active].reshape(-1)))


# ----------------------------------------------------------------------
# Backend dispatch (numpy reference paths vs the native C kernel)
# ----------------------------------------------------------------------

BACKENDS = ("auto", "numpy", "native")

# Rows per chunk for the numpy (batch, sets, words) broadcasts; bounds
# peak memory at ~chunk * n_sets * n_words * 8 B.
_CHUNK_ROWS = 1024


def _native_available() -> bool:
    from repro import native

    return native.available()


def resolve_backend(backend: str = "auto") -> str:
    """Normalise a backend spec to ``"numpy"`` or ``"native"``.

    ``"auto"`` resolves to ``"native"`` when the C kernel is (or can be)
    built for this process and to ``"numpy"`` otherwise — a missing
    toolchain never raises, which is the module's fallback contract.
    The ``REPRO_BACKEND`` environment variable pins what ``"auto"``
    prefers: ``numpy`` forces the reference paths, ``native`` insists on
    preferring the kernel (still falling back silently when it cannot be
    built), and any other value raises ``ValueError`` so a typo is never
    silently ignored.  An explicit ``backend="native"`` argument with no
    working toolchain raises ``RuntimeError`` carrying the build error.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "auto":
        import os

        preferred = os.environ.get("REPRO_BACKEND", "").strip().lower()
        if preferred and preferred not in ("auto", "numpy", "native"):
            raise ValueError(
                f"REPRO_BACKEND must be 'numpy', 'native' or 'auto', "
                f"got {os.environ['REPRO_BACKEND']!r}"
            )
        if preferred == "numpy":
            return "numpy"
        return "native" if _native_available() else "numpy"
    if backend == "native" and not _native_available():
        from repro import native

        raise RuntimeError(
            f"native backend requested but unavailable: {native.native_error()}"
        )
    return backend


def native_kernel(backend: str = "auto"):
    """Resolve ``backend`` to a loaded native kernel, or ``None`` for numpy."""
    if resolve_backend(backend) == "numpy":
        return None
    from repro import native

    return native.load_kernel()


def _row_bits(words: np.ndarray) -> np.ndarray:
    """Little-endian bit expansion of a 2-D word array (reference path)."""
    if words.shape[1] == 0:
        return np.zeros((words.shape[0], 0), dtype=np.uint8)
    return np.unpackbits(
        np.ascontiguousarray(words).view(np.uint8), axis=1, bitorder="little"
    )


def fixed_weight_table(weights: np.ndarray) -> np.ndarray:
    """Lay integer-valued weights out as a flat padded ``int64`` table.

    The fixed-point companion of :func:`weight_table`: entry ``64 * w + b``
    weighs bit ``b`` of word ``w``, and the padding tail is zero.  The
    weights may arrive as integer-valued ``float64`` (how the search
    carries its quantized code lengths); they are converted exactly.
    """
    weights = np.asarray(weights)
    if weights.ndim != 1:
        raise ValueError("weights must be 1-dimensional")
    table = np.zeros(n_words_for(weights.size) * WORD_BITS, dtype=np.int64)
    table[: weights.size] = weights.astype(np.int64)
    return table


def and_popcount_rows(
    rows: np.ndarray, mask: np.ndarray | None = None, backend: str = "auto"
) -> np.ndarray:
    """Fused per-row ``popcount(rows[i] & mask)`` (``mask=None``: plain)."""
    kernel = native_kernel(backend)
    if _obs.ACTIVE is not None:
        _obs.ACTIVE.count_bitset(
            "and_popcount_rows", "native" if kernel is not None else "numpy"
        )
    if kernel is not None:
        return kernel.and_popcount(rows, mask)
    return popcount_rows(rows if mask is None else rows & mask)


def fixed_weighted_popcount(
    words: np.ndarray, table: np.ndarray, backend: str = "auto"
) -> int:
    """Exact integer ``sum(table[b] for set bits b)`` of one packed mask.

    ``table`` comes from :func:`fixed_weight_table` for the same universe
    size.  This is the fixed-point sibling of :func:`weighted_popcount`:
    all arithmetic is int64, so the result is independent of summation
    order and identical across backends.
    """
    kernel = native_kernel(backend)
    if _obs.ACTIVE is not None:
        _obs.ACTIVE.count_bitset(
            "fixed_weighted_popcount", "native" if kernel is not None else "numpy"
        )
    if kernel is not None:
        return kernel.weighted_popcount(words, table)
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.size * WORD_BITS != table.size:
        raise ValueError("words and weight table disagree on universe size")
    if words.size == 0:
        return 0
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return int(table[np.flatnonzero(bits)].sum())


def child_metrics_rows(
    rows: np.ndarray,
    supp: np.ndarray,
    supp_other: np.ndarray,
    gain_table: np.ndarray,
    wsum_table: np.ndarray | None = None,
    backend: str = "auto",
) -> tuple[np.ndarray | None, np.ndarray, np.ndarray, np.ndarray]:
    """Fused per-row search metrics over ``new = rows[i] & supp``.

    Returns ``(wsums, gains, counts, joints)`` — for every packed row:
    the fixed-point weighted popcounts of ``new`` under ``wsum_table``
    (``None`` when the table is) and ``gain_table``, ``|new|``, and
    ``|new & supp_other|``.  This is the one call the native search
    backend makes per node in place of the dense four-column GEMM; the
    numpy path here is the order-independent reference used by the
    property tests (the search's numpy backend keeps its original GEMM
    formulation, which is equal bit for bit).
    """
    kernel = native_kernel(backend)
    if _obs.ACTIVE is not None:
        _obs.ACTIVE.count_bitset(
            "child_metrics_rows", "native" if kernel is not None else "numpy"
        )
    if kernel is not None:
        return kernel.child_metrics(rows, supp, supp_other, gain_table, wsum_table)
    rows = np.ascontiguousarray(rows, dtype=np.uint64)
    new = rows & supp
    counts = popcount_rows(new)
    joints = popcount_rows(new & supp_other)
    # Integer sums < 2**51 are exact in float64, so riding BLAS here is
    # still bit-identical to the int64 accumulation of the C kernel.
    bits = _row_bits(new).astype(np.float64)
    gains = np.rint(bits @ gain_table.astype(np.float64)).astype(np.int64)
    wsums = None
    if wsum_table is not None:
        wsums = np.rint(bits @ wsum_table.astype(np.float64)).astype(np.int64)
    return wsums, gains, counts, joints


def subset_match_rows(
    rows: np.ndarray, sets: np.ndarray, backend: str = "auto"
) -> np.ndarray:
    """``(n_rows, n_sets)`` Boolean packed subset test.

    Entry ``(i, r)`` is true iff ``sets[r]`` is a subset of ``rows[i]``
    (``rows[i] & sets[r] == sets[r]``).  The native path early-exits per
    pair on the first disagreeing word; the numpy path evaluates the
    same test as a chunked broadcast.
    """
    kernel = native_kernel(backend)
    if _obs.ACTIVE is not None:
        _obs.ACTIVE.count_bitset(
            "subset_match_rows", "native" if kernel is not None else "numpy"
        )
    if kernel is not None:
        return kernel.subset_match(rows, sets)
    rows = np.ascontiguousarray(rows, dtype=np.uint64)
    sets = np.ascontiguousarray(sets, dtype=np.uint64)
    out = np.empty((rows.shape[0], sets.shape[0]), dtype=bool)
    for start in range(0, rows.shape[0], _CHUNK_ROWS):
        chunk = rows[start : start + _CHUNK_ROWS]
        conjunction = chunk[:, None, :] & sets[None, :, :]
        out[start : start + _CHUNK_ROWS] = (
            conjunction == sets[None, :, :]
        ).all(axis=2)
    return out


def or_union_rows(
    fired: np.ndarray, cons: np.ndarray, backend: str = "auto"
) -> np.ndarray:
    """Weighted OR: per row, the union of the selected consequent rows.

    ``fired`` is a ``(n_rows, n_sets)`` Boolean selector and ``cons`` a
    ``(n_sets, n_words)`` packed matrix; row ``i`` of the result is the
    OR of the ``cons`` rows whose flag is set (zero words when none is).
    """
    kernel = native_kernel(backend)
    if _obs.ACTIVE is not None:
        _obs.ACTIVE.count_bitset(
            "or_union_rows", "native" if kernel is not None else "numpy"
        )
    if kernel is not None:
        return kernel.or_union(fired, cons)
    fired = np.asarray(fired, dtype=bool)
    cons = np.ascontiguousarray(cons, dtype=np.uint64)
    out = np.zeros((fired.shape[0], cons.shape[1]), dtype=np.uint64)
    for start in range(0, fired.shape[0], _CHUNK_ROWS):
        chunk = fired[start : start + _CHUNK_ROWS]
        if not chunk.any():
            continue
        selected = np.where(chunk[:, :, None], cons[None, :, :], np.uint64(0))
        out[start : start + _CHUNK_ROWS] = np.bitwise_or.reduce(selected, axis=1)
    return out


def match_union_rows(
    rows: np.ndarray,
    ant: np.ndarray,
    cons: np.ndarray,
    backend: str = "auto",
) -> np.ndarray:
    """Fused subset test + consequent union (the bulk predict primitive).

    Row ``i`` of the result is the OR of ``cons[r]`` over every rule
    ``r`` whose packed antecedent ``ant[r]`` is a subset of ``rows[i]``
    — one pass over the packed words on the native backend, never
    materialising the intermediate fired matrix.
    """
    kernel = native_kernel(backend)
    if _obs.ACTIVE is not None:
        _obs.ACTIVE.count_bitset(
            "match_union_rows", "native" if kernel is not None else "numpy"
        )
    if kernel is not None:
        return kernel.match_union(rows, ant, cons)
    return or_union_rows(
        subset_match_rows(rows, ant, backend="numpy"), cons, backend="numpy"
    )


def and_reduce_many_rows(
    rows: np.ndarray, offsets: np.ndarray, backend: str = "auto"
) -> tuple[np.ndarray, np.ndarray]:
    """Grouped AND-reduce + popcount over consecutive row groups.

    ``offsets`` is a monotonically increasing index array with
    ``offsets[0] == 0`` and ``offsets[-1] == n_rows``; group ``g``
    covers ``rows[offsets[g]:offsets[g + 1]]`` and must be non-empty.
    Returns ``(regions, counts)``: the per-group AND-reduced words and
    their populations.  One call updates every tracked itemset of a
    :class:`repro.stream.StreamBuffer` side, amortising the dispatch
    overhead that per-itemset calls would pay on tiny word regions.
    """
    offsets = np.ascontiguousarray(offsets, dtype=np.int64)
    rows = np.ascontiguousarray(rows, dtype=np.uint64)
    if offsets.size < 1 or offsets[0] != 0 or offsets[-1] != rows.shape[0]:
        raise ValueError("offsets must run from 0 to n_rows")
    if offsets.size > 1 and (np.diff(offsets) < 1).any():
        raise ValueError("every offset group must be non-empty")
    kernel = native_kernel(backend)
    if _obs.ACTIVE is not None:
        _obs.ACTIVE.count_bitset(
            "and_reduce_many_rows", "native" if kernel is not None else "numpy"
        )
    if kernel is not None:
        return kernel.and_reduce_many(rows, offsets)
    if offsets.size == 1:
        return np.zeros((0, rows.shape[1]), dtype=np.uint64), np.zeros(
            0, dtype=np.int64
        )
    if rows.shape[1] == 0:
        regions = np.zeros((offsets.size - 1, 0), dtype=np.uint64)
    else:
        regions = np.bitwise_and.reduceat(rows, offsets[:-1], axis=0)
    return regions, popcount_rows(regions)


def and_reduce_rows(
    rows: np.ndarray, backend: str = "auto"
) -> tuple[np.ndarray, int]:
    """AND-reduce packed rows; returns ``(region, popcount(region))``.

    The streaming buffer's fused tracked-support update: the region is
    the packed support of an itemset over the word range covered by
    ``rows`` and the count is its population, computed in one pass on
    the native backend.  ``rows`` must have at least one row.
    """
    kernel = native_kernel(backend)
    if _obs.ACTIVE is not None:
        _obs.ACTIVE.count_bitset(
            "and_reduce_rows", "native" if kernel is not None else "numpy"
        )
    if kernel is not None:
        return kernel.and_reduce(rows)
    rows = np.ascontiguousarray(rows, dtype=np.uint64)
    if rows.shape[0] == 0:
        raise ValueError("and_reduce_rows needs at least one row")
    region = np.bitwise_and.reduce(rows, axis=0)
    return region, popcount(region)


class BitMatrix:
    """Transaction sets of many items as an ``(n_items, n_words)`` word array.

    Row ``i`` is the packed transaction set of item ``i``.  Built from the
    library's transaction-by-item Boolean matrices with
    :meth:`from_bool_columns` (one row per *column* of the input, matching
    how miners index items).
    """

    __slots__ = ("words", "n_bits")

    def __init__(self, words: np.ndarray, n_bits: int) -> None:
        words = np.ascontiguousarray(words, dtype=np.uint64)
        if words.ndim != 2:
            raise ValueError("words must be 2-dimensional")
        if words.shape[1] != n_words_for(n_bits):
            raise ValueError("word count does not match n_bits")
        self.words = words
        self.n_bits = n_bits

    # ------------------------------------------------------------------
    @classmethod
    def from_bool_columns(cls, matrix: np.ndarray) -> "BitMatrix":
        """Pack each *column* of a ``(n_transactions, n_items)`` matrix."""
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.ndim != 2:
            raise ValueError("matrix must be 2-dimensional")
        return cls(_pack_rows(matrix.T), matrix.shape[0])

    @classmethod
    def from_bool_rows(cls, matrix: np.ndarray) -> "BitMatrix":
        """Pack each *row* of a ``(n_items, n_transactions)`` matrix."""
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.ndim != 2:
            raise ValueError("matrix must be 2-dimensional")
        return cls(_pack_rows(matrix), matrix.shape[1])

    # ------------------------------------------------------------------
    @property
    def n_items(self) -> int:
        return self.words.shape[0]

    @property
    def n_words(self) -> int:
        return self.words.shape[1]

    def row(self, item: int) -> np.ndarray:
        """Packed transaction set of one item (a view, do not mutate)."""
        return self.words[item]

    def __iter__(self) -> Iterator[np.ndarray]:
        """Iterate over the packed per-item rows."""
        return iter(self.words)

    def __len__(self) -> int:
        return self.n_items

    def to_bool_columns(self) -> np.ndarray:
        """Unpack back to a ``(n_transactions, n_items)`` Boolean matrix."""
        out = np.zeros((self.n_bits, self.n_items), dtype=bool)
        for item in range(self.n_items):
            out[:, item] = unpack_mask(self.words[item], self.n_bits)
        return out

    # ------------------------------------------------------------------
    # Vectorized set algebra
    # ------------------------------------------------------------------
    def and_mask(self, mask_words: np.ndarray) -> np.ndarray:
        """All rows intersected with one packed mask: ``rows & mask``."""
        return self.words & mask_words

    def or_mask(self, mask_words: np.ndarray) -> np.ndarray:
        """All rows united with one packed mask: ``rows | mask``."""
        return self.words | mask_words

    def andnot_mask(self, mask_words: np.ndarray) -> np.ndarray:
        """All rows minus one packed mask: ``rows & ~mask``.

        The complement is taken on the mask's words only, so the (zero)
        padding of the rows keeps the result's padding zero.
        """
        return self.words & ~mask_words

    def support(self, items: Iterable[int]) -> np.ndarray:
        """Packed transaction set of an itemset (AND over its rows).

        An empty itemset returns the full universe, mirroring
        :meth:`repro.data.dataset.TwoViewDataset.support_mask`.
        """
        columns = list(items)
        if not columns:
            return pack_mask(np.ones(self.n_bits, dtype=bool))
        if len(columns) == 1:
            return self.words[columns[0]].copy()
        return np.bitwise_and.reduce(self.words[columns], axis=0)

    def counts(self) -> np.ndarray:
        """Per-item support counts."""
        return popcount_rows(self.words)
