"""Packed-bitset kernel for transaction-set algebra.

Every miner and the exact rule search spend most of their time intersecting
*transaction sets* (which transactions contain an item / itemset) and
measuring the result — plain counts for supports, weighted sums for the
paper's ``tub``/``rub`` bounds.  The seed implementation stored those sets
as ``n_transactions``-length Boolean numpy arrays; this module packs them
into 64-bit words so a set intersection touches 64x less memory and a
support count is a handful of ``popcount`` instructions.

Word layout
-----------
A transaction set over ``n`` transactions is stored as ``ceil(n / 64)``
``uint64`` words.  Packing runs through ``np.packbits(..,
bitorder="little")`` on the *byte view* of the word array, and unpacking
reverses the identical byte view, so transaction ``t`` always lives at byte
``t // 8``, bit ``t % 8`` of the buffer regardless of platform endianness;
bitwise AND/OR/ANDNOT and popcount are bit-position agnostic, which makes
every operation in this module endian-safe.  Padding bits (positions ``n ..
64 * n_words``) are guaranteed zero by the packing helpers and preserved
zero by AND; OR/ANDNOT of two packed masks also keep the padding zero
because both operands have zero padding.

Popcount strategy
-----------------
``np.bitwise_count`` (numpy >= 2.0) is used when available; otherwise an
8-bit lookup table applied to the byte view of the words (one gather + sum
per 8 transactions).  Weighted popcounts — ``sum(weights[t] for set bits
t)``, the generic primitive for ``tub @ supp`` style bounds — use
word-blocked accumulation: only the non-zero words are unpacked, and their
bits are folded against a ``(n_words, 64)`` padded weight table, so the
cost scales with the population rather than the universe.

Note that the exact search (:mod:`repro.core.search`) does *not* compute
its bounds through :func:`weighted_popcount`: it needs bit-identical
results across kernels, which floating-point reductions cannot promise,
so it quantizes its weights to fixed-point integers and batches the
weighted sums as exact matrix products, relying on this module only for
the (exact) packing, bitwise and counting primitives.  The float-weighted
helpers and the ``and/or/andnot`` row algebra are the module's
general-purpose surface for other consumers (and are exercised directly
by the property tests).

Concurrency
-----------
Packed masks and :class:`BitMatrix` instances are immutable once built
(:meth:`BitMatrix.row` returns read-only views by convention), so they
are safe to share across the worker threads of the sharded search and
beam expansion (``n_jobs > 1``): every operation here allocates its
result instead of writing into an operand.  Build them once per fit —
:class:`repro.core.search.SearchCache` and ``TranslatorBeam.fit`` do —
and hand the same instance to every shard.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "WORD_BITS",
    "BitMatrix",
    "n_words_for",
    "pack_mask",
    "pack_rows_at",
    "shift_rows",
    "unpack_mask",
    "popcount",
    "popcount_rows",
    "weight_table",
    "weighted_popcount",
]

WORD_BITS = 64
_WORD_BYTES = WORD_BITS // 8

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")
# Fallback: population count of every byte value (applied to the byte view).
_POPCOUNT8 = np.array([bin(value).count("1") for value in range(256)], dtype=np.uint64)


def n_words_for(n_bits: int) -> int:
    """Number of 64-bit words needed to hold ``n_bits`` bit positions."""
    if n_bits < 0:
        raise ValueError("n_bits must be non-negative")
    return (n_bits + WORD_BITS - 1) // WORD_BITS


def pack_mask(mask: np.ndarray) -> np.ndarray:
    """Pack a 1-D Boolean mask into a ``uint64`` word array (padding zero)."""
    mask = np.ascontiguousarray(mask, dtype=bool)
    if mask.ndim != 1:
        raise ValueError("mask must be 1-dimensional")
    words = n_words_for(mask.size)
    buffer = np.zeros(words * _WORD_BYTES, dtype=np.uint8)
    packed = np.packbits(mask, bitorder="little")
    buffer[: packed.size] = packed
    return buffer.view(np.uint64)


def _pack_rows(matrix: np.ndarray) -> np.ndarray:
    """Pack each row of a 2-D Boolean matrix into words (padding zero)."""
    matrix = np.ascontiguousarray(matrix, dtype=bool)
    n_rows, n_bits = matrix.shape
    words = n_words_for(n_bits)
    buffer = np.zeros((n_rows, words * _WORD_BYTES), dtype=np.uint8)
    if n_bits:
        packed = np.packbits(matrix, axis=1, bitorder="little")
        buffer[:, : packed.shape[1]] = packed
    return buffer.view(np.uint64)


def pack_rows_at(matrix: np.ndarray, offset: int) -> np.ndarray:
    """Pack a ``(k, n_items)`` Boolean chunk at a bit ``offset`` of word 0.

    The streaming append primitive: transaction ``i`` of the chunk lands
    at bit position ``offset + i`` of item row ``j`` in the returned
    ``(n_items, n_words_for(offset + k))`` word array, and the first
    ``offset`` bit positions are zero.  ORing the first returned word
    into an existing buffer whose bits at and above ``offset`` are still
    zero — the tail word of an append-only buffer — therefore splices
    the chunk in exactly, touching only the tail words.

    Args:
        matrix: ``(k, n_items)`` Boolean chunk, one row per new
            transaction (the same orientation the dataset views use).
        offset: Bit position inside the first word where transaction 0
            goes; must be in ``[0, 64)``.
    """
    matrix = np.ascontiguousarray(matrix, dtype=bool)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-dimensional")
    if not 0 <= offset < WORD_BITS:
        raise ValueError(f"offset must be in [0, {WORD_BITS}), got {offset}")
    k, n_items = matrix.shape
    padded = np.zeros((n_items, offset + k), dtype=bool)
    padded[:, offset:] = matrix.T
    return _pack_rows(padded)


def shift_rows(words: np.ndarray, shift: int) -> np.ndarray:
    """Shift every row of a 2-D word array down by ``shift`` bit positions.

    Bit ``i + shift`` of the input becomes bit ``i`` of the output (the
    top ``shift`` bits of the last word fill with zeros).  This is the
    window-rotation primitive of the streaming buffer: extracting a
    window whose first live transaction sits mid-word is one
    ``shift_rows`` over the live words instead of a full repack.

    Args:
        words: ``(n_rows, n_words)`` word array.
        shift: Bit distance, in ``[0, 64)``.
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError("words must be 2-dimensional")
    if not 0 <= shift < WORD_BITS:
        raise ValueError(f"shift must be in [0, {WORD_BITS}), got {shift}")
    if shift == 0 or words.shape[1] == 0:
        return words.copy()
    out = words >> np.uint64(shift)
    out[:, :-1] |= words[:, 1:] << np.uint64(WORD_BITS - shift)
    return out


def unpack_mask(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_mask`: words back to a Boolean mask."""
    if n_bits == 0:
        return np.zeros(0, dtype=bool)
    bits = np.unpackbits(
        np.ascontiguousarray(words).view(np.uint8), bitorder="little"
    )
    return bits[:n_bits].astype(bool)


def popcount(words: np.ndarray) -> int:
    """Total number of set bits in a word array."""
    if words.size == 0:
        return 0
    if _HAS_BITWISE_COUNT:
        return int(np.bitwise_count(words).sum())
    return int(_POPCOUNT8[np.ascontiguousarray(words).view(np.uint8)].sum())


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """Per-row set-bit counts of a 2-D word array."""
    if words.size == 0:
        return np.zeros(words.shape[0], dtype=np.int64)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words).sum(axis=1).astype(np.int64)
    byte_view = np.ascontiguousarray(words).view(np.uint8)
    return _POPCOUNT8[byte_view].sum(axis=1).astype(np.int64)


def weight_table(weights: np.ndarray) -> np.ndarray:
    """Lay per-transaction weights out as a ``(n_words, 64)`` padded table.

    The table is the companion of a packed mask: word ``w`` of the mask
    selects within row ``w`` of the table, and the padding tail is zero so
    padded bit positions can never contribute.
    """
    weights = np.ascontiguousarray(weights, dtype=np.float64)
    if weights.ndim != 1:
        raise ValueError("weights must be 1-dimensional")
    words = n_words_for(weights.size)
    table = np.zeros((words, WORD_BITS), dtype=np.float64)
    table.reshape(-1)[: weights.size] = weights
    return table


def weighted_popcount(words: np.ndarray, table: np.ndarray) -> float:
    """``sum(weights[t] for set bits t)`` via word-blocked accumulation.

    ``table`` must come from :func:`weight_table` for the same universe
    size.  Only the non-zero words are unpacked and folded against their
    table rows, so sparse sets cost proportionally less.
    """
    if words.size != table.shape[0]:
        raise ValueError("words and weight table disagree on universe size")
    active = np.flatnonzero(words)
    if active.size == 0:
        return 0.0
    bits = np.unpackbits(
        np.ascontiguousarray(words[active]).view(np.uint8), bitorder="little"
    )
    return float(np.dot(bits.astype(np.float64), table[active].reshape(-1)))


class BitMatrix:
    """Transaction sets of many items as an ``(n_items, n_words)`` word array.

    Row ``i`` is the packed transaction set of item ``i``.  Built from the
    library's transaction-by-item Boolean matrices with
    :meth:`from_bool_columns` (one row per *column* of the input, matching
    how miners index items).
    """

    __slots__ = ("words", "n_bits")

    def __init__(self, words: np.ndarray, n_bits: int) -> None:
        words = np.ascontiguousarray(words, dtype=np.uint64)
        if words.ndim != 2:
            raise ValueError("words must be 2-dimensional")
        if words.shape[1] != n_words_for(n_bits):
            raise ValueError("word count does not match n_bits")
        self.words = words
        self.n_bits = n_bits

    # ------------------------------------------------------------------
    @classmethod
    def from_bool_columns(cls, matrix: np.ndarray) -> "BitMatrix":
        """Pack each *column* of a ``(n_transactions, n_items)`` matrix."""
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.ndim != 2:
            raise ValueError("matrix must be 2-dimensional")
        return cls(_pack_rows(matrix.T), matrix.shape[0])

    @classmethod
    def from_bool_rows(cls, matrix: np.ndarray) -> "BitMatrix":
        """Pack each *row* of a ``(n_items, n_transactions)`` matrix."""
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.ndim != 2:
            raise ValueError("matrix must be 2-dimensional")
        return cls(_pack_rows(matrix), matrix.shape[1])

    # ------------------------------------------------------------------
    @property
    def n_items(self) -> int:
        return self.words.shape[0]

    @property
    def n_words(self) -> int:
        return self.words.shape[1]

    def row(self, item: int) -> np.ndarray:
        """Packed transaction set of one item (a view, do not mutate)."""
        return self.words[item]

    def __iter__(self) -> Iterator[np.ndarray]:
        """Iterate over the packed per-item rows."""
        return iter(self.words)

    def __len__(self) -> int:
        return self.n_items

    def to_bool_columns(self) -> np.ndarray:
        """Unpack back to a ``(n_transactions, n_items)`` Boolean matrix."""
        out = np.zeros((self.n_bits, self.n_items), dtype=bool)
        for item in range(self.n_items):
            out[:, item] = unpack_mask(self.words[item], self.n_bits)
        return out

    # ------------------------------------------------------------------
    # Vectorized set algebra
    # ------------------------------------------------------------------
    def and_mask(self, mask_words: np.ndarray) -> np.ndarray:
        """All rows intersected with one packed mask: ``rows & mask``."""
        return self.words & mask_words

    def or_mask(self, mask_words: np.ndarray) -> np.ndarray:
        """All rows united with one packed mask: ``rows | mask``."""
        return self.words | mask_words

    def andnot_mask(self, mask_words: np.ndarray) -> np.ndarray:
        """All rows minus one packed mask: ``rows & ~mask``.

        The complement is taken on the mask's words only, so the (zero)
        padding of the rows keeps the result's padding zero.
        """
        return self.words & ~mask_words

    def support(self, items: Iterable[int]) -> np.ndarray:
        """Packed transaction set of an itemset (AND over its rows).

        An empty itemset returns the full universe, mirroring
        :meth:`repro.data.dataset.TwoViewDataset.support_mask`.
        """
        columns = list(items)
        if not columns:
            return pack_mask(np.ones(self.n_bits, dtype=bool))
        if len(columns) == 1:
            return self.words[columns[0]].copy()
        return np.bitwise_and.reduce(self.words[columns], axis=0)

    def counts(self) -> np.ndarray:
        """Per-item support counts."""
        return popcount_rows(self.words)
