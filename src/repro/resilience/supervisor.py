"""Supervision and window checkpointing for long-running loops.

Two halves, used together by the streaming maintenance subsystem:

* :class:`Supervisor` — restart a crashed asyncio task with capped,
  deterministic backoff (a :class:`~repro.resilience.policy.RetryPolicy`
  schedule).  It restarts on ordinary exceptions *and*
  :class:`~repro.resilience.faults.CrashPoint` (the chaos harness's
  simulated process death), gives up after ``max_restarts`` by
  re-raising the final failure, and records every restart in
  :attr:`Supervisor.events`.
* :class:`WindowCheckpoint` + :func:`save_checkpoint` /
  :func:`load_checkpoint` — an atomic, fsynced, hash-verified snapshot
  of a stream window (both Boolean view matrices) and its source
  offset (``rows_seen``).  A restarted
  :class:`~repro.stream.maintenance.MaintenanceLoop` restores the
  window, skips the already-consumed rows of its (replayable) source
  and continues — because incremental packing is bit-identical to
  from-scratch packing, the resumed loop publishes models
  **bit-identical** to an uncrashed run (enforced by
  ``tests/test_resilience.py``).

The checkpoint file is a single ``.npz`` (zip CRCs catch torn tails)
holding the two packed-origin Boolean window matrices plus a JSON
metadata entry with a SHA-256 over the array bytes; it is written to a
temp file, fsynced, then ``os.replace``\\ d — a crash can only ever
leave the *previous* complete checkpoint behind, never a torn one.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import io
import json
import logging
import os
import tempfile
from collections.abc import Callable
from pathlib import Path

import numpy as np

from repro import obs as _obs
from repro.resilience.faults import CrashPoint, fault_point
from repro.resilience.policy import RetryPolicy

__all__ = [
    "CheckpointError",
    "RestartEvent",
    "Supervisor",
    "WindowCheckpoint",
    "load_checkpoint",
    "save_checkpoint",
]

logger = logging.getLogger(__name__)

#: Schema version of the checkpoint file format.
CHECKPOINT_SCHEMA_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint file is unreadable, torn or hash-mismatched."""


@dataclasses.dataclass
class RestartEvent:
    """One supervisor restart (kept in :attr:`Supervisor.events`)."""

    attempt: int
    delay: float
    error: str


class Supervisor:
    """Restart a crashing coroutine with capped backoff.

    Args:
        factory: ``factory(attempt)`` builds a **fresh** awaitable for
            each run (attempt 0 is the first start).  Rebuilding matters:
            a crashed maintenance loop needs a new source iterator and a
            new buffer restored from its checkpoint, not the half-dead
            originals.
        max_restarts: Restarts allowed after the first start; the
            failure that exhausts them propagates to the caller.
        policy: Backoff schedule between restarts (deterministic; the
            default sleeps at most ~0.1 s total so supervised tests stay
            fast).
        restart_on: Exception types that trigger a restart.  Includes
            :class:`~repro.resilience.faults.CrashPoint` by default;
            ``KeyboardInterrupt``/``SystemExit``/``CancelledError``
            always propagate.

    Example::

        supervisor = Supervisor(lambda attempt: make_loop().run())
        await supervisor.run()
    """

    def __init__(
        self,
        factory: Callable[[int], object],
        max_restarts: int = 3,
        policy: RetryPolicy | None = None,
        restart_on: tuple[type[BaseException], ...] = (Exception, CrashPoint),
    ) -> None:
        if max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        self.factory = factory
        self.max_restarts = max_restarts
        self.policy = policy if policy is not None else RetryPolicy(
            attempts=max_restarts + 1,
            base_delay=0.01,
            max_delay=0.05,
            jitter=0.0,
        )
        self.restart_on = restart_on
        self.events: list[RestartEvent] = []

    @property
    def restarts(self) -> int:
        """How many restarts have happened so far."""
        return len(self.events)

    async def run(self):
        """Run (and re-run) the supervised task; returns its result.

        The awaitable from ``factory(attempt)`` is awaited; a failure
        matching ``restart_on`` is recorded and, while restarts remain,
        retried after the policy's backoff.  The terminal failure is
        re-raised unchanged.
        """
        attempt = 0
        while True:
            try:
                return await self.factory(attempt)
            except asyncio.CancelledError:
                raise
            except self.restart_on as error:
                if attempt >= self.max_restarts:
                    raise
                delay = self.policy.delay(attempt)
                self.events.append(
                    RestartEvent(
                        attempt=attempt + 1,
                        delay=delay,
                        error=f"{type(error).__name__}: {error}",
                    )
                )
                if _obs.ACTIVE is not None:
                    _obs.ACTIVE.supervisor_restart()
                logger.warning(
                    "supervised task failed (%s); restart %d/%d in %.3fs",
                    f"{type(error).__name__}: {error}",
                    attempt + 1,
                    self.max_restarts,
                    delay,
                    extra={
                        "attempt": attempt + 1,
                        "max_restarts": self.max_restarts,
                        "delay": delay,
                    },
                )
                attempt += 1
                if delay > 0:
                    await asyncio.sleep(delay)


@dataclasses.dataclass
class WindowCheckpoint:
    """A resumable snapshot of a stream window and its source offset.

    Attributes
    ----------
    model_name:
        The maintained registry model (sanity-checked on restore).
    rows_seen:
        Source rows consumed when the snapshot was taken — the resumed
        loop skips exactly this many rows of its replayed source.
    rows_since_check:
        The maintenance loop's check-cadence counter at snapshot time.
    left, right:
        Boolean view matrices of the live window (the canonical window
        content; re-packing them is bit-identical to the crashed
        buffer's incremental columns).
    appended_total, evicted_total:
        The buffer's lifetime counters (restored for observability).
    published_version:
        Registry version last published by the loop, if any.
    """

    model_name: str
    rows_seen: int
    rows_since_check: int
    left: np.ndarray
    right: np.ndarray
    appended_total: int = 0
    evicted_total: int = 0
    published_version: int | None = None

    @classmethod
    def capture(
        cls,
        buffer,
        model_name: str,
        rows_seen: int,
        rows_since_check: int = 0,
        published_version: int | None = None,
    ) -> "WindowCheckpoint":
        """Snapshot a :class:`~repro.stream.buffer.StreamBuffer` window."""
        window = buffer.window_dataset()
        return cls(
            model_name=model_name,
            rows_seen=rows_seen,
            rows_since_check=rows_since_check,
            left=np.array(window.left, dtype=bool, copy=True),
            right=np.array(window.right, dtype=bool, copy=True),
            appended_total=buffer.appended_total,
            evicted_total=buffer.evicted_total,
            published_version=published_version,
        )

    def restore_into(self, buffer) -> None:
        """Refill an **empty** buffer with the checkpointed window.

        Incremental packing is bit-identical to from-scratch packing,
        so the restored buffer's packed columns (and therefore every
        subsequent refit) match the crashed buffer's exactly.
        """
        if len(buffer) != 0:
            raise ValueError("checkpoint restore needs an empty buffer")
        if (buffer.n_left, buffer.n_right) != (
            self.left.shape[1],
            self.right.shape[1],
        ):
            raise CheckpointError(
                f"checkpoint vocabularies ({self.left.shape[1]}, "
                f"{self.right.shape[1]}) do not match the buffer "
                f"({buffer.n_left}, {buffer.n_right})"
            )
        if self.left.shape[0]:
            buffer.append(self.left, self.right)
        buffer.restore_counters(self.appended_total, self.evicted_total)

    def _meta(self) -> dict:
        return {
            "checkpoint_schema_version": CHECKPOINT_SCHEMA_VERSION,
            "model_name": self.model_name,
            "rows_seen": self.rows_seen,
            "rows_since_check": self.rows_since_check,
            "appended_total": self.appended_total,
            "evicted_total": self.evicted_total,
            "published_version": self.published_version,
            "array_sha256": _array_digest(self.left, self.right),
        }


def _array_digest(left: np.ndarray, right: np.ndarray) -> str:
    digest = hashlib.sha256()
    digest.update(repr((left.shape, right.shape)).encode("ascii"))
    digest.update(np.ascontiguousarray(left).tobytes())
    digest.update(np.ascontiguousarray(right).tobytes())
    return digest.hexdigest()


def save_checkpoint(path: str | os.PathLike, checkpoint: WindowCheckpoint) -> Path:
    """Atomically write ``checkpoint`` to ``path`` (fsync + ``os.replace``).

    The bytes are fully serialised first, fsynced to a temp file in the
    target directory, then swapped in — a crash at any instant leaves
    either the previous checkpoint or the new one, never a torn file.
    Returns the path written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    buffer = io.BytesIO()
    meta = json.dumps(checkpoint._meta(), sort_keys=True).encode("utf-8")
    np.savez(
        buffer,
        left=checkpoint.left,
        right=checkpoint.right,
        meta=np.frombuffer(meta, dtype=np.uint8),
    )
    data = fault_point("checkpoint.bytes", data=buffer.getvalue())
    handle, temp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-ckpt-")
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(data)
            stream.flush()
            os.fsync(stream.fileno())
        fault_point("checkpoint.replace")
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)
    return path


def load_checkpoint(path: str | os.PathLike) -> WindowCheckpoint | None:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Returns ``None`` when no checkpoint exists; raises
    :class:`CheckpointError` for a file that exists but is unreadable,
    schema-incompatible or hash-mismatched — callers (the maintenance
    loop) treat that as "no usable checkpoint" and start fresh rather
    than resuming from damaged state.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        with np.load(path, allow_pickle=False) as archive:
            left = np.ascontiguousarray(archive["left"], dtype=bool)
            right = np.ascontiguousarray(archive["right"], dtype=bool)
            meta = json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))
    except Exception as error:
        raise CheckpointError(f"unreadable checkpoint {path}: {error}") from error
    schema = meta.get("checkpoint_schema_version")
    if schema != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint schema {schema!r} in {path} "
            f"(this library reads version {CHECKPOINT_SCHEMA_VERSION})"
        )
    if meta.get("array_sha256") != _array_digest(left, right):
        raise CheckpointError(
            f"checkpoint {path} failed its content hash — refusing to "
            "resume from corrupt state"
        )
    return WindowCheckpoint(
        model_name=str(meta["model_name"]),
        rows_seen=int(meta["rows_seen"]),
        rows_since_check=int(meta.get("rows_since_check") or 0),
        left=left,
        right=right,
        appended_total=int(meta.get("appended_total") or 0),
        evicted_total=int(meta.get("evicted_total") or 0),
        published_version=meta.get("published_version"),
    )


def _fsync_directory(directory: Path) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir-fsync
        pass
    finally:
        os.close(fd)
