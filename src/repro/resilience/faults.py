"""Programmable fault injection for chaos tests.

Production code marks its hazardous operations with
:func:`fault_point`::

    payload = fault_point("registry.artifact.bytes", data=payload)
    stream.write(payload)
    fault_point("registry.publish.before_latest")

With no injector installed a fault point is a counter-free no-op (one
module-global ``is None`` check).  A test installs a
:class:`FaultInjector` carrying a *fault plan* — which operation, which
call number, what failure — and the marked code then fails exactly the
way real infrastructure does:

============  =====================================================
kind          effect at the matching fault point
============  =====================================================
``error``     raise :class:`InjectedFault` (an ordinary exception)
``crash``     raise :class:`CrashPoint` — subclasses
              ``BaseException`` so it pierces ``except Exception``
              handlers the way a ``kill -9`` pierces everything
``delay``     block for ``delay`` seconds (stalled disk / peer)
``corrupt``   flip a byte of the operation's ``data`` (bit rot)
``truncate``  drop the tail of ``data`` (torn / partial write)
============  =====================================================

Plans are deterministic — "fail the 3rd write, then work" — so chaos
tests are exact replays, not flaky roulette.  Install via the context
manager (:meth:`FaultInjector.active`) so the global hook is always
restored.
"""

from __future__ import annotations

import dataclasses
import fnmatch
import threading
import time
from collections import Counter

__all__ = [
    "CrashPoint",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "fault_point",
]


class InjectedFault(RuntimeError):
    """A scripted failure raised at a fault point (an ordinary error)."""


class CrashPoint(BaseException):
    """A scripted *process death* raised at a fault point.

    Subclasses ``BaseException`` so ordinary ``except Exception``
    recovery code cannot swallow it — exactly like a power loss or
    ``kill -9``, the only handlers that may see it are the supervisor
    and test harnesses.
    """


@dataclasses.dataclass
class FaultRule:
    """One entry of a fault plan.

    Attributes
    ----------
    op:
        ``fnmatch`` pattern matched against the fault point's operation
        name (``"registry.*"`` matches every registry operation).
    kind:
        ``"error"``, ``"crash"``, ``"delay"``, ``"corrupt"`` or
        ``"truncate"``.
    nth:
        1-based index of the first *matching call* that fires.
    times:
        How many consecutive matching calls fire from ``nth`` on
        (``-1`` = every one, forever).
    delay:
        Seconds to block for ``kind="delay"``.
    at:
        Byte offset for ``corrupt``/``truncate`` (``None`` = middle of
        the data).
    message:
        Optional detail carried by the raised exception.
    """

    op: str
    kind: str = "error"
    nth: int = 1
    times: int = 1
    delay: float = 0.0
    at: int | None = None
    message: str = ""

    _KINDS = ("error", "crash", "delay", "corrupt", "truncate")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (use {self._KINDS})")
        if self.nth < 1:
            raise ValueError("nth is 1-based and must be positive")
        if self.times < -1 or self.times == 0:
            raise ValueError("times must be positive or -1 (forever)")

    def applies(self, call_number: int) -> bool:
        """Whether this rule fires on matching call ``call_number``."""
        if call_number < self.nth:
            return False
        return self.times == -1 or call_number < self.nth + self.times


class FaultInjector:
    """A scriptable set of :class:`FaultRule` entries plus call counters.

    Build a plan with :meth:`plan` (fluent), install it around the code
    under test with :meth:`active`, then assert on :attr:`fired`::

        injector = FaultInjector().plan(
            "registry.artifact.bytes", kind="truncate", nth=2
        )
        with injector.active():
            registry.publish(artifact)      # second write is torn
        assert injector.fired

    Counters are per *operation name* (not per rule) and thread-safe —
    maintenance loops hop between the event loop and worker threads.
    """

    def __init__(self, rules: list[FaultRule] | None = None) -> None:
        self.rules: list[FaultRule] = list(rules or [])
        self.calls: Counter[str] = Counter()
        #: ``(operation, kind, call_number)`` of every fault fired.
        self.fired: list[tuple[str, str, int]] = []
        self._lock = threading.Lock()

    def plan(self, op: str, kind: str = "error", **kwargs) -> "FaultInjector":
        """Append a :class:`FaultRule`; returns ``self`` for chaining."""
        self.rules.append(FaultRule(op=op, kind=kind, **kwargs))
        return self

    # ------------------------------------------------------------------
    def fire(self, op: str, data: bytes | None = None) -> bytes | None:
        """Evaluate the plan at fault point ``op``; returns ``data``.

        Called by :func:`fault_point`.  At most one rule acts per call
        (the first whose pattern and call number match); byte-mangling
        kinds return the modified ``data``, raising kinds raise.
        """
        with self._lock:
            self.calls[op] += 1
            number = self.calls[op]
            rule = next(
                (
                    rule
                    for rule in self.rules
                    if fnmatch.fnmatch(op, rule.op)
                    and rule.applies(self._matched(rule, op, number))
                ),
                None,
            )
            if rule is not None:
                self.fired.append((op, rule.kind, number))
        if rule is None:
            return data
        detail = rule.message or f"injected {rule.kind} at {op} (call {number})"
        if rule.kind == "error":
            raise InjectedFault(detail)
        if rule.kind == "crash":
            raise CrashPoint(detail)
        if rule.kind == "delay":
            time.sleep(rule.delay)
            return data
        if data is None:
            raise InjectedFault(
                f"fault rule {rule.kind!r} at {op} needs byte data, "
                "but the fault point carries none"
            )
        at = rule.at if rule.at is not None else len(data) // 2
        at = max(0, min(at, max(0, len(data) - 1)))
        if rule.kind == "corrupt":
            if not data:
                return data
            return data[:at] + bytes([data[at] ^ 0xFF]) + data[at + 1 :]
        return data[:at]  # truncate: the torn write kept only a prefix

    def _matched(self, rule: FaultRule, op: str, number: int) -> int:
        # Counters are per operation name; a wildcard rule sees each
        # concrete operation's own call number, which keeps "fail the
        # 2nd artifact write" meaningful under interleaved operations.
        return number

    # ------------------------------------------------------------------
    def install(self) -> "FaultInjector":
        """Make this injector the process-wide active one."""
        global _ACTIVE
        _ACTIVE = self
        return self

    def uninstall(self) -> None:
        """Deactivate (only if currently active)."""
        global _ACTIVE
        if _ACTIVE is self:
            _ACTIVE = None

    def active(self) -> "_Installed":
        """Context manager: install on enter, uninstall on exit."""
        return _Installed(self)

    def __repr__(self) -> str:
        return (
            f"FaultInjector(rules={len(self.rules)}, "
            f"calls={sum(self.calls.values())}, fired={len(self.fired)})"
        )


class _Installed:
    """Context manager returned by :meth:`FaultInjector.active`."""

    def __init__(self, injector: FaultInjector) -> None:
        self._injector = injector

    def __enter__(self) -> FaultInjector:
        return self._injector.install()

    def __exit__(self, *exc_info) -> None:
        self._injector.uninstall()


_ACTIVE: FaultInjector | None = None


def fault_point(op: str, data: bytes | None = None) -> bytes | None:
    """Declare a hazardous operation; a no-op unless an injector is active.

    Returns ``data`` unchanged (or chaos-modified: corrupted or
    truncated); raising fault kinds raise from here.  Sprinkle at the
    points where real infrastructure fails — before/after writes,
    around renames, per consumed row — and leave them in production
    code: the inactive cost is one global ``is None`` check.
    """
    if _ACTIVE is None:
        return data
    return _ACTIVE.fire(op, data)
