"""Fault tolerance: retries, circuit breaking, fault injection, supervision.

The ROADMAP's "millions of users" story needs every serving and
maintenance process to be individually crash-safe before it can be
replicated: a malformed input line, a torn artifact write or a stalled
client must degrade one request — never the whole process.  This
package is the dependency-free layer that provides (and *proves*) that,
in three modules:

* :mod:`~repro.resilience.policy` — :class:`RetryPolicy` (exponential
  backoff with deterministic seeded jitter), :class:`Deadline` and
  :class:`CircuitBreaker`: the reusable decision pieces, all driven by
  an injectable clock so tests never sleep;
* :mod:`~repro.resilience.faults` — :class:`FaultInjector`, a
  programmable chaos harness.  Production code marks its hazardous
  operations with :func:`fault_point` (a no-op until an injector is
  installed); tests script fault plans — fail the Nth call, delay,
  corrupt or truncate bytes, or :class:`CrashPoint` (a simulated
  process death that pierces ``except Exception``) — and assert the
  system recovers;
* :mod:`~repro.resilience.supervisor` — :class:`Supervisor`, an asyncio
  restart-with-capped-backoff driver, plus window *checkpointing*
  (:func:`save_checkpoint` / :func:`load_checkpoint`): an atomic,
  fsynced, hash-verified snapshot of a
  :class:`~repro.stream.buffer.StreamBuffer` window and its source
  offset, from which a restarted
  :class:`~repro.stream.maintenance.MaintenanceLoop` resumes and
  publishes models bit-identical to an uncrashed run.

The serving stack builds on this: graceful drain and ``/readyz`` in
:class:`~repro.serve.server.PredictionServer`, last-good degradation
behind a :class:`CircuitBreaker` in
:class:`~repro.serve.server.PredictionService`, and quarantine of
corrupt versions in :class:`~repro.serve.registry.ModelRegistry`.
See ``docs/resilience.md`` for the supervision model, the checkpoint
format and a fault-plan cookbook; ``tests/test_resilience.py``
(``pytest -m chaos_smoke``) is the chaos suite.
"""

from repro.resilience.faults import (
    CrashPoint,
    FaultInjector,
    FaultRule,
    InjectedFault,
    fault_point,
)
from repro.resilience.policy import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
)
from repro.resilience.supervisor import (
    CheckpointError,
    RestartEvent,
    Supervisor,
    WindowCheckpoint,
    load_checkpoint,
    save_checkpoint,
)

__all__ = [
    "CheckpointError",
    "CircuitBreaker",
    "CircuitOpenError",
    "CrashPoint",
    "Deadline",
    "DeadlineExceeded",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "RestartEvent",
    "RetryPolicy",
    "Supervisor",
    "WindowCheckpoint",
    "fault_point",
    "load_checkpoint",
    "save_checkpoint",
]
