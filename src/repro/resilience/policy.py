"""Retry, deadline and circuit-breaker policies.

The decision pieces of the fault-tolerance layer, shared by the
registry, the prediction service and the maintenance supervisor.  All
three are plain objects driven by an injectable monotonic clock, so
unit tests exercise every state transition without sleeping, and a
:class:`RetryPolicy`'s jitter is *deterministic* under a seed — two
processes configured identically back off identically, and chaos tests
replay exactly.
"""

from __future__ import annotations

import asyncio
import logging
import random
import time
from collections.abc import Callable, Iterator

from repro import obs as _obs

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceeded",
    "RetryPolicy",
]

logger = logging.getLogger(__name__)


class DeadlineExceeded(TimeoutError):
    """An operation ran past its :class:`Deadline`."""


class CircuitOpenError(RuntimeError):
    """A :class:`CircuitBreaker` is open: the guarded call was refused."""


class RetryPolicy:
    """Exponential backoff with deterministic seeded jitter.

    ``delay(attempt)`` grows as ``base_delay * multiplier**attempt``,
    capped at ``max_delay``, then spread by ``±jitter`` (a fraction of
    the delay) using a PRNG seeded from ``(seed, attempt)`` — the same
    policy always produces the same schedule, so backoff behaviour in
    chaos tests and across restarted replicas is reproducible, while
    distinct seeds de-synchronise a fleet (no thundering herd).

    Args:
        attempts: Total tries (first call + retries); must be >= 1.
        base_delay: Seconds before the first retry.
        multiplier: Per-attempt growth factor.
        max_delay: Ceiling on any single delay (pre-jitter).
        jitter: Fractional spread, e.g. ``0.25`` = ±25%.
        seed: Jitter seed; equal seeds give equal schedules.

    Example::

        >>> from repro.resilience import RetryPolicy
        >>> policy = RetryPolicy(attempts=3, base_delay=0.1, jitter=0.0)
        >>> [round(d, 3) for d in policy.delays()]
        [0.1, 0.2]
    """

    def __init__(
        self,
        attempts: int = 3,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 5.0,
        jitter: float = 0.25,
        seed: int = 0,
    ) -> None:
        if attempts < 1:
            raise ValueError("attempts must be at least 1")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be non-negative")
        if multiplier < 1.0:
            raise ValueError("multiplier must be at least 1.0")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        self.attempts = attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.seed = seed

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based), jittered."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        delay = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        if self.jitter == 0.0 or delay == 0.0:
            return delay
        rng = random.Random(self.seed * 1_000_003 + attempt)
        spread = self.jitter * (2.0 * rng.random() - 1.0)  # in [-jitter, +jitter]
        return max(0.0, delay * (1.0 + spread))

    def delays(self) -> Iterator[float]:
        """The full backoff schedule (``attempts - 1`` delays)."""
        return (self.delay(attempt) for attempt in range(self.attempts - 1))

    def call(
        self,
        fn: Callable,
        *args,
        retry_on: tuple[type[BaseException], ...] = (Exception,),
        deadline: "Deadline | None" = None,
        sleep: Callable[[float], None] = time.sleep,
        **kwargs,
    ):
        """Run ``fn(*args, **kwargs)``, retrying ``retry_on`` failures.

        Sleeps the policy's (deterministic) backoff between attempts;
        an optional ``deadline`` bounds the whole sequence — no retry
        starts past it.  The last failure propagates when attempts (or
        the deadline) run out.
        """
        last: BaseException | None = None
        for attempt in range(self.attempts):
            if deadline is not None and deadline.expired():
                deadline.check("retry sequence")
            try:
                return fn(*args, **kwargs)
            except retry_on as error:
                last = error
                if attempt == self.attempts - 1:
                    raise
                pause = self.delay(attempt)
                if deadline is not None and pause > deadline.remaining():
                    raise
                sleep(pause)
        raise last  # pragma: no cover - loop always returns or raises

    async def call_async(
        self,
        fn: Callable,
        *args,
        retry_on: tuple[type[BaseException], ...] = (Exception,),
        deadline: "Deadline | None" = None,
        **kwargs,
    ):
        """Async variant of :meth:`call` (backoff via ``asyncio.sleep``)."""
        last: BaseException | None = None
        for attempt in range(self.attempts):
            if deadline is not None and deadline.expired():
                deadline.check("retry sequence")
            try:
                result = fn(*args, **kwargs)
                if asyncio.iscoroutine(result):
                    result = await result
                return result
            except asyncio.CancelledError:
                raise
            except retry_on as error:
                last = error
                if attempt == self.attempts - 1:
                    raise
                pause = self.delay(attempt)
                if deadline is not None and pause > deadline.remaining():
                    raise
                await asyncio.sleep(pause)
        raise last  # pragma: no cover - loop always returns or raises

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(attempts={self.attempts}, base_delay={self.base_delay}, "
            f"multiplier={self.multiplier}, max_delay={self.max_delay}, "
            f"jitter={self.jitter}, seed={self.seed})"
        )


class Deadline:
    """A wall-time budget measured on a monotonic clock.

    Args:
        seconds: Budget from *now*; ``None`` means unbounded.
        clock: Monotonic time source (injectable for tests).

    Example::

        >>> from repro.resilience import Deadline
        >>> tick = iter([0.0, 1.0, 3.0]).__next__
        >>> deadline = Deadline(2.0, clock=tick)
        >>> deadline.remaining()
        1.0
        >>> deadline.expired()
        True
    """

    def __init__(
        self,
        seconds: float | None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds is not None and seconds < 0:
            raise ValueError("deadline seconds must be non-negative")
        self._clock = clock
        self.started = clock()
        self.expires = None if seconds is None else self.started + seconds

    def remaining(self) -> float:
        """Seconds left (``inf`` when unbounded, never negative)."""
        if self.expires is None:
            return float("inf")
        return max(0.0, self.expires - self._clock())

    def expired(self) -> bool:
        """Whether the budget has run out."""
        return self.expires is not None and self._clock() >= self.expires

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` if the budget has run out."""
        if self.expired():
            raise DeadlineExceeded(f"{what} exceeded its deadline")


class CircuitBreaker:
    """Stop hammering a failing dependency; probe it after a cooldown.

    Classic three-state breaker: *closed* (calls flow; consecutive
    failures are counted), *open* (calls are refused with
    :class:`CircuitOpenError` until ``reset_timeout`` passes), and
    *half-open* (one probe call is let through — success closes the
    breaker, failure re-opens it).  The prediction service puts one in
    front of registry artifact loads so a corrupt artifact directory
    costs one disk attempt per cooldown, not one per request.

    Args:
        failure_threshold: Consecutive failures that open the breaker.
        reset_timeout: Seconds the breaker stays open before probing.
        clock: Monotonic time source (injectable for tests).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be non-negative")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        """Current state: ``closed``, ``open`` or ``half-open``."""
        if self._opened_at is None:
            return self.CLOSED
        if self._clock() - self._opened_at >= self.reset_timeout:
            return self.HALF_OPEN
        return self.OPEN

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        In the half-open state only the *first* caller gets the probe;
        concurrent callers are refused until the probe resolves.
        """
        state = self.state
        if state == self.CLOSED:
            return True
        if state == self.HALF_OPEN and not self._probing:
            self._probing = True
            return True
        return False

    def guard(self, dependency: str = "dependency") -> None:
        """:meth:`allow` or raise :class:`CircuitOpenError`."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit for {dependency} is {self.state} after "
                f"{self._failures} consecutive failure(s)"
            )

    def record_success(self) -> None:
        """Note a successful call: close the breaker, reset counters."""
        was_open = self._opened_at is not None
        self._failures = 0
        self._opened_at = None
        self._probing = False
        if was_open:
            if _obs.ACTIVE is not None:
                _obs.ACTIVE.breaker_event("closed")
            logger.info("circuit breaker closed after successful probe")

    def record_failure(self) -> None:
        """Note a failed call: count it, opening/re-opening as needed."""
        self._failures += 1
        self._probing = False
        if self._failures >= self.failure_threshold or self._opened_at is not None:
            newly_opened = self._opened_at is None
            self._opened_at = self._clock()
            if newly_opened:
                if _obs.ACTIVE is not None:
                    _obs.ACTIVE.breaker_event("opened")
                logger.warning(
                    "circuit breaker opened after %d consecutive failure(s)",
                    self._failures,
                    extra={"failures": self._failures},
                )

    def call(self, fn: Callable, *args, dependency: str = "dependency", **kwargs):
        """Run ``fn`` under the breaker, recording the outcome."""
        self.guard(dependency)
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, failures={self._failures}, "
            f"threshold={self.failure_threshold}, reset={self.reset_timeout})"
        )
