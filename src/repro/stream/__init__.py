"""Streaming ingestion and incremental model maintenance.

The ROADMAP's live-traffic story needs more than a fast server: data
arrives as a stream, and a translation table fitted on a static batch
goes stale as the cross-view association shifts.  This package closes
the loop from serving back to search, in four layers:

* :mod:`~repro.stream.buffer` — :class:`StreamBuffer`, a sliding/
  tumbling window that maintains the Boolean views **and** the packed
  uint64 bitset columns of :mod:`repro.core.bitset` incrementally
  (append packs only the word-tail, eviction rotates dead words out),
  plus tracked per-rule support counts in ``O(new words)``;
* :mod:`~repro.stream.drift` — :class:`DriftMonitor`, MDL scoring of
  the published table against the incoming window with a
  randomization-based significance test
  (:mod:`repro.eval.randomization`) and a refit-candidate staleness
  trigger;
* :mod:`~repro.stream.source` / :mod:`~repro.stream.codec` — row
  sources (in-process feed, JSONL tail, packed binary frames; the
  binary codec is shared with the server's ``/predict`` ingestion);
* :mod:`~repro.stream.maintenance` — :class:`MaintenanceLoop` +
  :class:`RefitPolicy`, the asyncio driver that refits through
  ``TranslatorExact``/``TranslatorBeam`` (no repack — the buffer's
  packed columns are injected) and publishes into the PR 3
  :class:`~repro.serve.registry.ModelRegistry`, hot-swapping a running
  :class:`~repro.serve.server.PredictionServer` via the atomic
  ``latest`` pointer.

CLI: ``repro-translator stream``.  See ``docs/streaming.md`` for the
architecture and window semantics, and ``benchmarks/bench_stream.py``
(``BENCH_stream.json``) for the incremental-vs-repack numbers.
"""

from repro.stream.buffer import StreamBuffer, TrackedItemset
from repro.stream.codec import (
    PACKED_MAGIC,
    PACKED_VERSION,
    decode_packed_rows,
    encode_packed_rows,
    iter_packed_frames,
)
from repro.stream.drift import DriftMonitor, DriftReport, score_table
from repro.stream.maintenance import (
    MaintenanceEvent,
    MaintenanceLoop,
    RefitPolicy,
    fit_window,
)
from repro.stream.source import FeedSource, JsonlSource, PackedSource, rows_to_matrix

__all__ = [
    "PACKED_MAGIC",
    "PACKED_VERSION",
    "DriftMonitor",
    "DriftReport",
    "FeedSource",
    "JsonlSource",
    "MaintenanceEvent",
    "MaintenanceLoop",
    "PackedSource",
    "RefitPolicy",
    "StreamBuffer",
    "TrackedItemset",
    "decode_packed_rows",
    "encode_packed_rows",
    "fit_window",
    "iter_packed_frames",
    "rows_to_matrix",
    "score_table",
]
