"""Row sources feeding the maintenance loop.

Every source is an async iterable of ``(left_items, right_items)``
pairs — sparse item-index lists over the stream's two vocabularies.
Three transports cover the deployment shapes:

* :class:`FeedSource` — an in-process ``asyncio`` queue; tests and
  embedded producers push rows directly.
* :class:`JsonlSource` — a JSON-lines file or pipe, one transaction per
  line, either ``{"left": [...], "right": [...]}`` or a bare
  ``[[...], [...]]`` pair.  With ``follow=True`` the source tails the
  file (``tail -f`` style) instead of stopping at EOF.
* :class:`PackedSource` — a file of concatenated two-view binary frames
  (:mod:`repro.stream.codec`), for producers that already hold packed
  matrices; each frame may carry many rows.

Sources validate item indices against their vocabulary bounds so a
malformed producer fails loudly at the ingestion edge, not deep inside
a refit.
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path

import numpy as np

__all__ = ["FeedSource", "JsonlSource", "PackedSource", "rows_to_matrix"]


def rows_to_matrix(rows, n_items: int) -> np.ndarray:
    """Sparse item-index lists to a dense ``(len(rows), n_items)`` matrix.

    Raises ``ValueError`` on out-of-range indices — the shared
    validation of every ingestion path.
    """
    matrix = np.zeros((len(rows), n_items), dtype=bool)
    for index, row in enumerate(rows):
        for item in row:
            item = int(item)
            if not 0 <= item < n_items:
                raise ValueError(
                    f"row {index}: item index {item} outside the vocabulary "
                    f"(0..{n_items - 1})"
                )
            matrix[index, item] = True
    return matrix


def _parse_jsonl_line(line: str) -> tuple[list[int], list[int]]:
    record = json.loads(line)
    if isinstance(record, dict):
        left, right = record.get("left"), record.get("right")
    elif isinstance(record, (list, tuple)) and len(record) == 2:
        left, right = record
    else:
        raise ValueError(
            'each JSONL line must be {"left": [...], "right": [...]} or a '
            "[left, right] pair"
        )
    if not isinstance(left, list) or not isinstance(right, list):
        raise ValueError("both views of a JSONL row must be item-index lists")
    return [int(item) for item in left], [int(item) for item in right]


class FeedSource:
    """In-process row feed backed by an ``asyncio.Queue``.

    Producers :meth:`put` rows (and finally :meth:`close`); the
    maintenance loop consumes the source until it drains.

    Example::

        source = FeedSource()
        await source.put([0, 2], [1])
        source.close()
    """

    _SENTINEL = object()

    def __init__(self, maxsize: int = 0) -> None:
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=maxsize)
        self._closed = False

    async def put(self, left_items, right_items) -> None:
        """Enqueue one transaction (two item-index lists)."""
        if self._closed:
            raise RuntimeError("cannot put rows into a closed FeedSource")
        await self._queue.put((list(left_items), list(right_items)))

    def put_nowait(self, left_items, right_items) -> None:
        """Synchronous :meth:`put` for non-async producers."""
        if self._closed:
            raise RuntimeError("cannot put rows into a closed FeedSource")
        self._queue.put_nowait((list(left_items), list(right_items)))

    def close(self) -> None:
        """Signal end of stream; pending rows still drain."""
        if not self._closed:
            self._closed = True
            self._queue.put_nowait(self._SENTINEL)

    def __aiter__(self):
        return self

    async def __anext__(self):
        item = await self._queue.get()
        if item is self._SENTINEL:
            raise StopAsyncIteration
        return item


class JsonlSource:
    """Rows from a JSON-lines file, optionally tailing it forever.

    Args:
        path: The file to read (a growing log file works with
            ``follow=True``).
        follow: Keep polling for new lines at EOF instead of stopping;
            stop conditions are ``max_rows`` or :meth:`stop`.
        poll_interval: Seconds between EOF polls while following.
        max_rows: Optional hard row cap (applies with or without
            ``follow``).
        strict: With the default ``False``, a malformed line is skipped
            and counted in :attr:`malformed_rows` instead of killing the
            whole stream — one producer hiccup should not take down a
            maintenance loop mid-run.  Set ``True`` to fail loudly on
            the first bad line (the right mode for validating a file).

    Attributes
    ----------
    malformed_rows:
        Lines skipped so far in lenient mode (monotone across
        iterations; surfaced by the maintenance loop's stats).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        follow: bool = False,
        poll_interval: float = 0.05,
        max_rows: int | None = None,
        strict: bool = False,
    ) -> None:
        self.path = Path(path)
        self.follow = follow
        self.poll_interval = poll_interval
        self.max_rows = max_rows
        self.strict = strict
        self.malformed_rows = 0
        self._stopped = False

    def stop(self) -> None:
        """Make a following source finish after its current poll."""
        self._stopped = True

    async def __aiter__(self):
        emitted = 0
        pending = ""
        with self.path.open("r", encoding="utf-8") as stream:
            while True:
                chunk = stream.readline()
                if not chunk:
                    if not self.follow or self._stopped:
                        break
                    await asyncio.sleep(self.poll_interval)
                    continue
                pending += chunk
                if self.follow and not pending.endswith("\n"):
                    # The producer is mid-write: readline returned a
                    # partial line.  Buffer until the newline lands.
                    # (If stop() arrives first, the incomplete line is
                    # discarded — it was never fully produced.)
                    continue
                line, pending = pending, ""
                if not line.strip():
                    continue
                try:
                    row = _parse_jsonl_line(line)
                except (ValueError, TypeError):
                    if self.strict:
                        raise
                    self.malformed_rows += 1
                    continue
                yield row
                emitted += 1
                if self.max_rows is not None and emitted >= self.max_rows:
                    return


class PackedSource:
    """Rows from a file of concatenated two-view packed frames.

    Each frame (:func:`repro.stream.codec.encode_packed_rows` with a
    ``right=`` view) may carry many rows; the source flattens them back
    into per-transaction index pairs.
    """

    def __init__(self, path: str | os.PathLike, max_rows: int | None = None) -> None:
        self.path = Path(path)
        self.max_rows = max_rows

    async def __aiter__(self):
        from repro.stream.codec import read_frame

        emitted = 0
        # Frames are read one at a time, so only the current frame's
        # bytes (and matrices) are ever resident — a multi-GB stream
        # file costs one frame of memory, not its full size.
        with self.path.open("rb") as stream:
            while True:
                frame = read_frame(stream)
                if frame is None:
                    return
                __, left, right = frame
                if right is None:
                    raise ValueError(
                        "stream frames must carry both views "
                        "(encode with right=... / n_items_right)"
                    )
                for row in range(left.shape[0]):
                    yield (
                        np.flatnonzero(left[row]).tolist(),
                        np.flatnonzero(right[row]).tolist(),
                    )
                    emitted += 1
                    if self.max_rows is not None and emitted >= self.max_rows:
                        return
