"""The maintenance loop: ingest, detect drift, refit, hot-swap.

Closes the loop from serving back to search: rows stream in
(:mod:`repro.stream.source`), the :class:`~repro.stream.buffer.StreamBuffer`
maintains the window incrementally, the
:class:`~repro.stream.drift.DriftMonitor` scores the currently published
table against it, and when drift is flagged the freshly fitted candidate
is published into a :class:`~repro.serve.registry.ModelRegistry` — whose
atomic ``latest`` pointer a running
:class:`~repro.serve.server.PredictionServer` re-reads within its
``latest_ttl_seconds``, so the swap needs no restart.

Refits run through the normal TRANSLATOR entry points
(:class:`~repro.core.translator.TranslatorExact` /
:class:`~repro.core.beam.TranslatorBeam`) with the buffer's
incrementally packed columns injected (:func:`fit_window`), on a worker
thread so ingestion never blocks on a fit.

CLI: ``repro-translator stream``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import logging
import os
from pathlib import Path

from repro import obs as _obs
from repro.core.beam import TranslatorBeam
from repro.core.table import TranslationTable
from repro.core.translator import TranslatorExact
from repro.resilience.faults import fault_point
from repro.resilience.supervisor import (
    CheckpointError,
    WindowCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.serve.artifact import ModelArtifact
from repro.serve.registry import ModelRegistry
from repro.stream.buffer import StreamBuffer
from repro.stream.drift import DriftMonitor, DriftReport
from repro.stream.source import rows_to_matrix

__all__ = ["MaintenanceEvent", "MaintenanceLoop", "RefitPolicy", "fit_window"]

logger = logging.getLogger(__name__)


def fit_window(translator, buffer: StreamBuffer, name: str = "stream-window"):
    """Fit ``translator`` on the buffer's live window without repacking.

    Routes the buffer's incrementally maintained packed columns into the
    translator's refit entry point (``cache=`` for
    :class:`~repro.core.translator.TranslatorExact`, ``bits=`` for
    :class:`~repro.core.beam.TranslatorBeam`; other translators fall
    back to a plain fit).  The fitted model is bit-identical to a batch
    fit on the same window because the injected columns are.
    """
    dataset, cache = buffer.refit_context(name)
    if isinstance(translator, TranslatorExact):
        return translator.fit(dataset, cache=cache)
    if isinstance(translator, TranslatorBeam):
        return translator.fit(dataset, bits=(cache.left_bits, cache.right_bits))
    return translator.fit(dataset)


@dataclasses.dataclass
class RefitPolicy:
    """When the maintenance loop checks, refits and publishes.

    Args:
        window: Target live-window size (rows).  ``sliding`` keeps the
            newest ``window`` rows and checks every ``check_every``
            appended rows; ``tumbling`` accumulates ``window`` rows,
            checks/refits once on the full block, then clears it.
        policy: ``"sliding"`` or ``"tumbling"``.
        check_every: Appended-row cadence between drift checks
            (sliding; a tumbling window checks exactly once per block).
        min_rows: No check or refit below this window fill.
        always_publish: Publish every refit candidate regardless of the
            drift decision (a shadow-deploy style policy).
    """

    window: int = 512
    policy: str = "sliding"
    check_every: int = 128
    min_rows: int = 64
    always_publish: bool = False

    def __post_init__(self) -> None:
        if self.policy not in ("sliding", "tumbling"):
            raise ValueError(f"unknown window policy {self.policy!r}")
        if self.window < 1:
            raise ValueError("window must be positive")
        if self.check_every < 1:
            raise ValueError("check_every must be positive")
        if self.min_rows < 1:
            raise ValueError("min_rows must be positive")
        if self.window < self.min_rows:
            raise ValueError(
                f"window ({self.window}) must be at least min_rows "
                f"({self.min_rows}); a full block below the fit floor "
                "could never be checked"
            )


@dataclasses.dataclass
class MaintenanceEvent:
    """One check/publish decision of the loop (kept in ``loop.events``)."""

    rows_seen: int
    window_rows: int
    published_version: int | None
    report: DriftReport | None

    @property
    def published(self) -> bool:
        """Whether this event published a new model version."""
        return self.published_version is not None


class MaintenanceLoop:
    """Consume a row source and keep a registry model fresh.

    Args:
        source: Async iterable of ``(left_items, right_items)`` rows
            (:mod:`repro.stream.source`).
        buffer: The window buffer (its vocabulary defines the stream's).
        registry: Where model versions are published.
        model_name: Registry model to maintain.  If it already has
            versions, the latest table is adopted as the drift baseline;
            otherwise the first refit bootstraps version 1.
        translator: The refit engine (``TranslatorExact`` /
            ``TranslatorBeam`` get the no-repack path; any ``.fit`` works).
        policy: The :class:`RefitPolicy`.
        monitor: Optional pre-configured :class:`DriftMonitor`; by
            default one is built once a baseline table exists.
        monitor_factory: How monitors are built when ``monitor`` is not
            given — a callable taking the baseline table (the CLI routes
            its threshold flags through this).
        checkpoint_dir: Optional directory for crash-recovery
            checkpoints.  After every drift check the loop atomically
            snapshots its window and source offset
            (:func:`repro.resilience.supervisor.save_checkpoint`); a
            restarted loop (fresh buffer, replayed source) restores the
            window, skips the already-consumed rows and continues —
            publishing models bit-identical to an uncrashed run.  An
            unreadable or stale-schema checkpoint is ignored (fresh
            start) and noted in :attr:`checkpoint_recovery_error`.

    Example::

        loop = MaintenanceLoop(source, buffer, registry, "live", TranslatorExact())
        await loop.run()       # until the source drains
    """

    def __init__(
        self,
        source,
        buffer: StreamBuffer,
        registry: ModelRegistry,
        model_name: str,
        translator,
        policy: RefitPolicy | None = None,
        monitor: DriftMonitor | None = None,
        monitor_factory=DriftMonitor,
        checkpoint_dir: str | os.PathLike | None = None,
    ) -> None:
        self.source = source
        self.buffer = buffer
        self.registry = registry
        self.model_name = model_name
        self.translator = translator
        self.policy = policy if policy is not None else RefitPolicy()
        self.monitor = monitor
        self.monitor_factory = monitor_factory
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.checkpoint_recovery_error: str | None = None
        self.resumed_rows = 0
        self.events: list[MaintenanceEvent] = []
        self.rows_seen = 0
        self._rows_since_check = 0
        self._published_table: TranslationTable | None = None
        self._published_version: int | None = None

    @property
    def checkpoint_path(self) -> Path | None:
        """Where this loop's checkpoint lives (``None`` when disabled)."""
        if self.checkpoint_dir is None:
            return None
        return self.checkpoint_dir / f"{self.model_name}.ckpt.npz"

    # ------------------------------------------------------------------
    def _adopt_published(self) -> None:
        """Adopt the registry's current latest table as the baseline."""
        try:
            artifact = self.registry.load(self.model_name)
        except KeyError:
            return
        self._published_table = artifact.table
        self._published_version = artifact.version
        if self.monitor is None:
            self.monitor = self.monitor_factory(artifact.table)
        else:
            self.monitor.update_table(artifact.table)

    #: Rows gathered before a buffer append; chunked ingestion amortises
    #: the per-append cost (the buffer packs a chunk in O(chunk/64)
    #: words, so feeding it row by row would be pure Python overhead).
    #: Flushes also happen at every check boundary, so the window
    #: contents at each drift check are identical to row-wise feeding.
    ingest_chunk = 64

    # ------------------------------------------------------------------
    def _resume_from_checkpoint(self) -> int:
        """Restore window + offset from disk; returns source rows to skip."""
        path = self.checkpoint_path
        if path is None or len(self.buffer) != 0:
            return 0
        try:
            checkpoint = load_checkpoint(path)
            if checkpoint is None:
                return 0
            if checkpoint.model_name != self.model_name:
                raise CheckpointError(
                    f"checkpoint {path} is for model "
                    f"{checkpoint.model_name!r}, not {self.model_name!r}"
                )
            checkpoint.restore_into(self.buffer)
        except CheckpointError as error:
            # Damaged or foreign state: a fresh start is always correct
            # (the source replays from row 0), just slower.
            self.checkpoint_recovery_error = str(error)
            logger.warning(
                "checkpoint recovery failed, starting fresh: %s",
                error,
                extra={"model": self.model_name, "checkpoint": str(path)},
            )
            return 0
        self.rows_seen = checkpoint.rows_seen
        self._rows_since_check = checkpoint.rows_since_check
        self.resumed_rows = checkpoint.rows_seen
        return checkpoint.rows_seen

    def _save_checkpoint(self) -> None:
        path = self.checkpoint_path
        if path is None:
            return
        save_checkpoint(
            path,
            WindowCheckpoint.capture(
                self.buffer,
                model_name=self.model_name,
                rows_seen=self.rows_seen,
                rows_since_check=self._rows_since_check,
                published_version=self._published_version,
            ),
        )

    async def run(self) -> None:
        """Consume the source to exhaustion, checking and publishing."""
        to_skip = self._resume_from_checkpoint()
        self._adopt_published()
        policy = self.policy
        pending_left: list = []
        pending_right: list = []

        def flush() -> None:
            if not pending_left:
                return
            self.buffer.append(
                rows_to_matrix(pending_left, self.buffer.n_left),
                rows_to_matrix(pending_right, self.buffer.n_right),
            )
            pending_left.clear()
            pending_right.clear()
            if policy.policy == "sliding":
                overflow = len(self.buffer) - policy.window
                if overflow > 0:
                    self.buffer.evict(overflow)

        async for left_items, right_items in self.source:
            if to_skip > 0:
                # Replayed rows the checkpoint already accounts for —
                # consumed from the source but not recounted.
                to_skip -= 1
                continue
            fault_point("maintenance.row")
            pending_left.append(left_items)
            pending_right.append(right_items)
            self.rows_seen += 1
            self._rows_since_check += 1
            if policy.policy == "sliding":
                check_due = (
                    self._rows_since_check >= policy.check_every
                    and len(self.buffer) + len(pending_left) >= policy.min_rows
                )
                if check_due or len(pending_left) >= self.ingest_chunk:
                    flush()
                if check_due:
                    await self._check_and_maybe_publish()
                    # Checkpoint right after the check boundary:
                    # publish-then-checkpoint gives at-least-once
                    # publish semantics (a crash in between republishes
                    # an identical table under a new version —
                    # harmless), never lost windows.
                    self._save_checkpoint()
            else:  # tumbling: blocks fill to exactly `window` rows
                if len(self.buffer) + len(pending_left) >= policy.window:
                    flush()
                    await self._check_and_maybe_publish()
                    self.buffer.evict(len(self.buffer))
                    # After eviction: a resumed tumbling loop starts its
                    # next block empty, exactly like the uncrashed run.
                    self._save_checkpoint()
        flush()
        # A finite source's final rows still get a check — the partial
        # tumbling block, or a sliding stream shorter than check_every
        # (which would otherwise never even bootstrap a model).
        if len(self.buffer) >= policy.min_rows and self._rows_since_check > 0:
            await self._check_and_maybe_publish()
            self._save_checkpoint()

    # ------------------------------------------------------------------
    async def _check_and_maybe_publish(self) -> None:
        self._rows_since_check = 0
        inst = _obs.ACTIVE
        if inst is not None:
            inst.maintenance_event("check", rows_seen=self.rows_seen)
        result = await asyncio.to_thread(
            fit_window, self.translator, self.buffer, f"{self.model_name}-window"
        )
        if inst is not None:
            inst.maintenance_event("refit")
        report: DriftReport | None = None
        if self._published_table is None:
            publish = True  # bootstrap: nothing is serving yet
        else:
            if self.monitor is None:
                self.monitor = self.monitor_factory(self._published_table)
            report = await asyncio.to_thread(
                self.monitor.check, self.buffer.window_dataset(), result
            )
            # Significance-only drift says the structure left the stream
            # — but if the refit candidate is no better than what is
            # already published, swapping it in helps nobody and a
            # structureless stream would republish identical models
            # forever.  Publish only when the candidate actually
            # improves; significance drift stays visible in the events.
            publish = (
                report.drifted and report.degradation > self.monitor.min_degradation
            ) or self.policy.always_publish
            if report.drifted and inst is not None:
                inst.maintenance_event("drift")
            logger.info(
                "drift check: drifted=%s degradation=%.6f publish=%s",
                report.drifted,
                report.degradation,
                publish,
                extra={
                    "model": self.model_name,
                    "rows_seen": self.rows_seen,
                    "window_rows": len(self.buffer),
                    "drifted": report.drifted,
                    "degradation": report.degradation,
                    "drift_reason": report.reason or None,
                    "will_publish": publish,
                },
            )
        version = self._publish(result, report) if publish else None
        if version is not None:
            if inst is not None:
                inst.maintenance_event("publish")
            logger.info(
                "published model version %d",
                version,
                extra={
                    "model": self.model_name,
                    "version": version,
                    "rows_seen": self.rows_seen,
                    "window_rows": len(self.buffer),
                },
            )
        self.events.append(
            MaintenanceEvent(
                rows_seen=self.rows_seen,
                window_rows=len(self.buffer),
                published_version=version,
                report=report,
            )
        )

    def _publish(self, result, report: DriftReport | None) -> int:
        fit_params = {
            "stream": True,
            "rows_seen": self.rows_seen,
            "window": len(self.buffer),
            "policy": self.policy.policy,
            "drift_reason": None if report is None else (report.reason or None),
        }
        artifact = ModelArtifact.from_result(
            self.model_name, self.buffer.window_dataset(), result, fit_params
        )
        published = self.registry.publish(artifact)
        self._published_table = result.table
        self._published_version = published.version
        if self.monitor is None:
            self.monitor = self.monitor_factory(result.table)
        else:
            self.monitor.update_table(result.table)
        return published.version

    @property
    def published_version(self) -> int | None:
        """Version the loop most recently published (or adopted)."""
        return self._published_version
