"""Compact binary row frames shared by the server and the stream sources.

JSON item-index lists are convenient but cost a parse per row; a
high-volume producer (or the prediction server's ``/predict`` endpoint)
can ship rows as a **packed-bitset frame** instead::

    offset  size          content
    0       4             magic  b"2VPB"  (two-view packed binary)
    4       1             format version (currently 1)
    5       4             header length H, little-endian uint32
    9       H             UTF-8 JSON header; must carry integer
                          ``n_rows`` and ``n_items``, may carry request
                          fields (``model``, ``version``, ``target``) or
                          a second view (``n_items_right`` + trailing
                          right-view payload)
    9+H     n_rows*W*8    row-major payload: each row is W = ceil(n_items/64)
                          64-bit words; byte ``j`` holds items ``8j..8j+7``
                          in little bit order (the same byte layout
                          :func:`repro.core.bitset.pack_mask` produces)

Decoding is zero-copy-ish: the payload bytes are viewed with
``np.frombuffer`` and expanded with one vectorised ``unpackbits`` —
no per-row Python work.  Two-view frames (``n_items_right`` present)
simply concatenate a second payload of the same shape for the right
view; the stream's file sources use them, the server accepts the
single-view form on ``/predict``.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.core.bitset import WORD_BITS, n_words_for

__all__ = [
    "PACKED_MAGIC",
    "PACKED_VERSION",
    "decode_packed_rows",
    "encode_packed_rows",
    "frame_payload",
    "iter_packed_frames",
    "read_frame",
]

#: First four bytes of every packed row frame.
PACKED_MAGIC = b"2VPB"
#: Current frame format version.
PACKED_VERSION = 1

_PREFIX = struct.Struct("<4sBI")
#: Upper bound on declared dimensions — rejects absurd headers before
#: any allocation happens.
_MAX_DIM = 100_000_000


def _pack_payload(matrix: np.ndarray) -> bytes:
    """Row-major packed payload bytes of a Boolean matrix."""
    n_rows, n_items = matrix.shape
    row_bytes = n_words_for(n_items) * (WORD_BITS // 8)
    buffer = np.zeros((n_rows, row_bytes), dtype=np.uint8)
    if n_items:
        packed = np.packbits(matrix, axis=1, bitorder="little")
        buffer[:, : packed.shape[1]] = packed
    return buffer.tobytes()


def _unpack_payload(payload: memoryview, n_rows: int, n_items: int) -> np.ndarray:
    """Inverse of :func:`_pack_payload` (one vectorised ``unpackbits``).

    Rejects rows whose padding bits (positions ``n_items ..
    row_words * 64``) are set: the encoder always writes them zero, so a
    frame with set padding is malformed, and truncating it silently
    would make two different byte strings decode to the same matrix —
    ``decode(encode(x))`` must be the *only* accepted representation.
    """
    row_bytes = n_words_for(n_items) * (WORD_BITS // 8)
    raw = np.frombuffer(payload, dtype=np.uint8, count=n_rows * row_bytes)
    if n_items == 0:
        if raw.any():
            raise ValueError("packed frame has set padding bits in its payload")
        return np.zeros((n_rows, 0), dtype=bool)
    raw = raw.reshape(n_rows, row_bytes)
    full_bytes, spare_bits = divmod(n_items, 8)
    tail = raw[:, full_bytes:]
    if spare_bits and tail.size:
        # The byte straddling the boundary may carry its low bits.
        boundary_mask = np.uint8((0xFF << spare_bits) & 0xFF)
        if (tail[:, 0] & boundary_mask).any() or tail[:, 1:].any():
            raise ValueError("packed frame has set padding bits in its final word")
    elif tail.any():
        raise ValueError("packed frame has set padding bits in its final word")
    bits = np.unpackbits(raw, axis=1, bitorder="little")
    return bits[:, :n_items].astype(bool)


def encode_packed_rows(
    matrix: np.ndarray,
    meta: dict | None = None,
    right: np.ndarray | None = None,
) -> bytes:
    """Encode one (or two) Boolean row matrices as a packed frame.

    Args:
        matrix: ``(n_rows, n_items)`` Boolean matrix — the request rows
            (server form) or the left view (two-view form).
        meta: Extra header fields (``model``, ``target``, ...); the
            dimension fields are filled in automatically.
        right: Optional ``(n_rows, n_items_right)`` right-view matrix;
            its presence makes this a two-view frame.
    """
    matrix = np.ascontiguousarray(matrix, dtype=bool)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-dimensional")
    header = dict(meta or {})
    header["n_rows"] = int(matrix.shape[0])
    header["n_items"] = int(matrix.shape[1])
    payload = _pack_payload(matrix)
    if right is not None:
        right = np.ascontiguousarray(right, dtype=bool)
        if right.ndim != 2 or right.shape[0] != matrix.shape[0]:
            raise ValueError("right view must have the same number of rows")
        header["n_items_right"] = int(right.shape[1])
        payload += _pack_payload(right)
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    return (
        _PREFIX.pack(PACKED_MAGIC, PACKED_VERSION, len(header_bytes))
        + header_bytes
        + payload
    )


def _dimension(meta: dict, field: str, required: bool = True) -> int | None:
    """Strictly validated non-negative integer header dimension.

    Only true JSON integers are accepted — a float, bool, string or
    negative value is a malformed frame, not something to coerce —
    and the value must fall in ``[0, _MAX_DIM]``.
    """
    value = meta.get(field)
    if value is None and not required:
        return None
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(
            f"packed frame header field {field!r} must be a non-negative "
            f"integer, got {value!r}"
        )
    if not 0 <= value <= _MAX_DIM:
        raise ValueError(
            f"packed frame header declares absurd dimension {field}={value}"
        )
    return value


def _parse_meta(raw: bytes) -> tuple[dict, int, int, int | None, int]:
    """Validate header bytes; returns ``(meta, n_rows, n_items, n_right,
    payload_bytes)``."""
    try:
        meta = json.loads(raw)
    except ValueError as error:
        raise ValueError(f"packed frame header is not valid JSON: {error}") from error
    if not isinstance(meta, dict):
        raise ValueError("packed frame header must be a JSON object")
    n_rows = _dimension(meta, "n_rows")
    n_items = _dimension(meta, "n_items")
    n_right = _dimension(meta, "n_items_right", required=False)
    word_bytes = WORD_BITS // 8
    body = n_rows * n_words_for(n_items) * word_bytes
    if n_right is not None:
        body += n_rows * n_words_for(n_right) * word_bytes
    return meta, n_rows, n_items, n_right, body


def _validate_prefix(prefix: bytes) -> int:
    """Check magic/version of a frame prefix; returns the header length."""
    magic, version, header_len = _PREFIX.unpack(prefix)
    if magic != PACKED_MAGIC:
        raise ValueError(f"not a packed row frame (magic {magic!r})")
    if version != PACKED_VERSION:
        raise ValueError(f"unsupported packed frame version {version}")
    return header_len


def _unpack_views(
    payload: memoryview, n_rows: int, n_items: int, n_right: int | None
) -> tuple[np.ndarray, np.ndarray | None]:
    left = _unpack_payload(payload, n_rows, n_items)
    if n_right is None:
        return left, None
    right_start = n_rows * n_words_for(n_items) * (WORD_BITS // 8)
    return left, _unpack_payload(payload[right_start:], n_rows, n_right)


def _decode_frame(buffer: bytes, offset: int) -> tuple[dict, np.ndarray, np.ndarray | None, int]:
    """Decode one frame at ``offset``; returns ``(meta, left, right, next_offset)``."""
    view = memoryview(buffer)
    if len(view) - offset < _PREFIX.size:
        raise ValueError("truncated packed frame: missing prefix")
    header_len = _validate_prefix(bytes(view[offset : offset + _PREFIX.size]))
    header_start = offset + _PREFIX.size
    if len(view) - header_start < header_len:
        raise ValueError("truncated packed frame: header cut short")
    meta, n_rows, n_items, n_right, body = _parse_meta(
        bytes(view[header_start : header_start + header_len])
    )
    start = header_start + header_len
    if len(view) - start < body:
        raise ValueError(
            f"truncated packed frame: payload needs {body} bytes, "
            f"{len(view) - start} left"
        )
    left, right = _unpack_views(view[start : start + body], n_rows, n_items, n_right)
    return meta, left, right, start + body


def read_frame(stream) -> tuple[dict, np.ndarray, np.ndarray | None] | None:
    """Read and decode one frame from a binary file object.

    Returns ``(meta, left, right)``, or ``None`` at a clean end of
    file.  Only one frame's bytes are resident at a time, so a
    multi-gigabyte stream file never has to fit in memory
    (:class:`repro.stream.source.PackedSource` iterates this way).
    Raises ``ValueError`` on a frame cut short mid-stream.
    """
    prefix = stream.read(_PREFIX.size)
    if not prefix:
        return None
    if len(prefix) < _PREFIX.size:
        raise ValueError("truncated packed frame: missing prefix")
    header_len = _validate_prefix(prefix)
    header = stream.read(header_len)
    if len(header) < header_len:
        raise ValueError("truncated packed frame: header cut short")
    meta, n_rows, n_items, n_right, body = _parse_meta(header)
    payload = stream.read(body)
    if len(payload) < body:
        raise ValueError(
            f"truncated packed frame: payload needs {body} bytes, "
            f"{len(payload)} left"
        )
    left, right = _unpack_views(memoryview(payload), n_rows, n_items, n_right)
    return meta, left, right


def decode_packed_rows(buffer: bytes) -> tuple[dict, np.ndarray, np.ndarray | None]:
    """Decode a single packed frame (e.g. a ``/predict`` request body).

    Returns ``(meta, matrix, right)`` where ``right`` is ``None`` for
    single-view frames.  Raises ``ValueError`` on malformed input —
    bad magic/version, non-integer or negative header dimensions, a
    payload shorter than the header declares, trailing bytes after the
    frame, and set padding bits in any row's final word — so
    ``decode(encode(x))`` is the only accepted representation and the
    server can map every malformed body to a 400, never a 500 or a
    silent mis-decode.
    """
    meta, left, right, consumed = _decode_frame(buffer, 0)
    if consumed != len(buffer):
        raise ValueError(
            f"{len(buffer) - consumed} trailing byte(s) after the packed frame"
        )
    return meta, left, right


def frame_payload(buffer: bytes) -> memoryview:
    """Payload bytes of a single frame, header skipped (zero-copy).

    The payload layout is canonical — fixed word count per row, padding
    bits zero — so it is the cheapest stable content to hash for
    response-cache keys: 8x fewer bytes than the unpacked Boolean
    matrix.  Validates only the frame prefix; full decoding is
    :func:`decode_packed_rows`'s job.
    """
    view = memoryview(buffer)
    if len(view) < _PREFIX.size:
        raise ValueError("truncated packed frame: missing prefix")
    magic, version, header_len = _PREFIX.unpack_from(view, 0)
    if magic != PACKED_MAGIC:
        raise ValueError(f"not a packed row frame (magic {bytes(magic)!r})")
    if version != PACKED_VERSION:
        raise ValueError(f"unsupported packed frame version {version}")
    if len(view) - _PREFIX.size < header_len:
        raise ValueError("truncated packed frame: header cut short")
    return view[_PREFIX.size + header_len :]


def iter_packed_frames(buffer: bytes):
    """Yield ``(meta, left, right)`` for every frame in a concatenation.

    The on-disk form the stream's packed file source reads: frames are
    simply appended back to back.
    """
    offset = 0
    while offset < len(buffer):
        meta, left, right, offset = _decode_frame(buffer, offset)
        yield meta, left, right
