"""Drift detection for published translation tables.

A translation table fitted on yesterday's window compresses today's
window worse when the cross-view association shifts — the MDL score is
itself the drift statistic.  :class:`DriftMonitor` scores the currently
published table against the incoming window and combines two triggers:

* **Staleness** — the published table's compression ratio on the window
  versus a *refit candidate* fitted on the same window.  A gap above
  ``min_degradation`` means a refit would pay for itself.
* **Significance** — a randomization test in the style of
  :mod:`repro.eval.randomization`: the published table is scored on
  ``n_permutations`` copies of the window whose view pairing has been
  destroyed (:func:`~repro.eval.randomization.permute_pairing`).  If
  the real window no longer compresses significantly better than the
  re-paired nulls, whatever structure the table captured is gone from
  the stream.  Unlike the offline test, the null scores come from
  *static scoring* (no refits), so a check is cheap enough to run
  inside the maintenance loop.

Both triggers are deterministic given the monitor's ``seed`` — each
check draws its permutations from a freshly seeded generator, which the
tests rely on.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.encoding import CodeLengthModel
from repro.core.state import CoverState
from repro.core.table import TranslationTable
from repro.data.dataset import TwoViewDataset
from repro.eval.randomization import permute_pairing

__all__ = ["DriftMonitor", "DriftReport", "score_table"]


def score_table(
    dataset: TwoViewDataset,
    table: TranslationTable,
    codes: CodeLengthModel | None = None,
) -> float:
    """Compression ratio ``L(D, T) / L(D, ∅)`` of a *fixed* table.

    Replays the table's rules through a fresh
    :class:`~repro.core.state.CoverState` on ``dataset`` — static
    evaluation, no search — and returns the attained ratio (< 1 means
    the table still compresses the data).
    """
    state = CoverState(dataset, codes)
    for rule in table:
        state.add_rule(rule)
    return state.compression_ratio()


@dataclasses.dataclass
class DriftReport:
    """Outcome of one drift check of a published table against a window.

    ``drifted`` is the decision; ``reason`` names the trigger
    (``"degradation"``, ``"significance"`` or ``""`` when no drift).
    """

    window_rows: int
    published_ratio: float
    refit_ratio: float
    degradation: float
    null_ratios: list[float]
    p_value: float
    drifted: bool
    reason: str

    def as_dict(self) -> dict[str, object]:
        """Plain-dict form for logs and JSON reports."""
        return dataclasses.asdict(self)


class DriftMonitor:
    """Score a published table against incoming windows and flag drift.

    Args:
        table: The currently published translation table; swap it via
            :meth:`update_table` after every publish.
        min_degradation: Staleness trigger — drift when the published
            ratio exceeds the refit candidate's by more than this.
        significance: Randomization trigger — drift when the empirical
            p-value of the published table's score (versus re-paired
            windows) rises above this level.
        n_permutations: Null-sample count per check; the attainable
            p-value floor is ``1 / (n_permutations + 1)``, so it must be
            at least ``1 / significance - 1`` for the significance
            trigger to ever stay quiet (the defaults sit exactly there).
        seed: Seed of the per-check permutation generator; checks are
            deterministic functions of ``(window, table, seed)``.

    Example::

        monitor = DriftMonitor(published.table)
        report = monitor.check(buffer.window_dataset(), refit_result)
        if report.drifted:
            registry.publish(...)
            monitor.update_table(refit_result.table)
    """

    def __init__(
        self,
        table: TranslationTable,
        min_degradation: float = 0.02,
        significance: float = 0.05,
        n_permutations: int = 19,
        seed: int = 0,
    ) -> None:
        if n_permutations < 1:
            raise ValueError("n_permutations must be positive")
        if 1.0 / (n_permutations + 1) > significance:
            raise ValueError(
                f"{n_permutations} permutation(s) cannot reach p <= "
                f"{significance}; raise n_permutations or significance"
            )
        if min_degradation < 0:
            raise ValueError("min_degradation must be non-negative")
        if not 0.0 < significance < 1.0:
            raise ValueError("significance must be in (0, 1)")
        self.table = table
        self.min_degradation = min_degradation
        self.significance = significance
        self.n_permutations = n_permutations
        self.seed = seed

    def update_table(self, table: TranslationTable) -> None:
        """Adopt a newly published table as the monitored one."""
        self.table = table

    def check(self, window: TwoViewDataset, refit_result) -> DriftReport:
        """Score the published table against ``window`` and decide.

        ``refit_result`` is the refit candidate fitted on the same
        window (any object exposing ``.compression_ratio`` — every
        TRANSLATOR fit result qualifies); the maintenance loop fits it
        anyway, so the check reuses it instead of fitting twice.
        """
        codes = CodeLengthModel(window)
        published_ratio = score_table(window, self.table, codes)
        refit_ratio = float(refit_result.compression_ratio)
        degradation = published_ratio - refit_ratio
        rng = np.random.default_rng(self.seed)
        null_ratios = [
            score_table(permute_pairing(window, rng), self.table)
            for __ in range(self.n_permutations)
        ]
        at_most = sum(1 for ratio in null_ratios if ratio <= published_ratio)
        p_value = (at_most + 1) / (self.n_permutations + 1)
        if degradation > self.min_degradation:
            drifted, reason = True, "degradation"
        elif p_value > self.significance:
            drifted, reason = True, "significance"
        else:
            drifted, reason = False, ""
        return DriftReport(
            window_rows=window.n_transactions,
            published_ratio=published_ratio,
            refit_ratio=refit_ratio,
            degradation=degradation,
            null_ratios=null_ratios,
            p_value=p_value,
            drifted=drifted,
            reason=reason,
        )
