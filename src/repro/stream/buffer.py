"""Append-only two-view row buffer with incremental packed columns.

The streaming subsystem's data structure: a window over a two-view row
stream that keeps **both** representations the rest of the library
wants — the Boolean view matrices (for :class:`~repro.core.state.CoverState`
and dataset construction) and the packed uint64 per-item bitset columns
of :mod:`repro.core.bitset` (for the search kernel and support
counting) — and maintains them *incrementally*:

* **Append** packs only the new word-tail: a chunk of ``k`` rows costs
  ``O(n_items * k / 64)`` word writes (:func:`repro.core.bitset.pack_rows_at`),
  never a repack of the live window.
* **Evict** advances a logical start offset and zeroes the evicted bit
  range (``O(evicted words)``); fully dead leading words are dropped by
  an amortised word-rotation compaction, so a sliding window never
  degenerates into an unbounded buffer.
* **Window extraction** (:meth:`bit_matrix`) is a word slice when the
  window start is word-aligned and one :func:`~repro.core.bitset.shift_rows`
  pass otherwise — ``O(live words)``, bit-identical to packing the
  window from scratch (enforced by ``tests/test_stream.py``).
* **Tracked itemsets** (:meth:`track` / :meth:`track_table`) keep packed
  support masks of registered rule antecedents/consequents aligned to
  the buffer, so the support counts of every published rule update in
  ``O(new words)`` per append instead of ``O(window)``.

A windowed refit takes :meth:`refit_context`, which hands the
incremental packed columns to :class:`repro.core.search.SearchCache` —
the refit then skips the full repack and, because incremental packing
is bit-identical, fits exactly the model a batch fit on the same window
would.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro import obs as _obs
from repro.core.bitset import (
    WORD_BITS,
    BitMatrix,
    and_reduce_many_rows,
    and_reduce_rows,
    n_words_for,
    pack_rows_at,
    popcount,
    popcount_rows,
    resolve_backend,
    shift_rows,
)
from repro.core.search import SearchCache
from repro.data.dataset import Side, TwoViewDataset

__all__ = ["StreamBuffer", "TrackedItemset"]


def _low_mask(bits: int) -> np.uint64:
    """Word mask with bit positions ``0 .. bits-1`` set."""
    return np.uint64((1 << bits) - 1)


class _SideStore:
    """Dual Boolean/packed storage of one view's live rows."""

    __slots__ = ("n_items", "bools", "words", "counts")

    def __init__(self, n_items: int, cap_rows: int) -> None:
        self.n_items = n_items
        self.bools = np.zeros((cap_rows, n_items), dtype=bool)
        self.words = np.zeros((n_items, n_words_for(cap_rows)), dtype=np.uint64)
        self.counts = np.zeros(n_items, dtype=np.int64)


class TrackedItemset:
    """Incrementally maintained support of one itemset over the window.

    Created through :meth:`StreamBuffer.track`; holds the packed support
    mask (AND over the itemset's item columns, aligned to the buffer's
    bit space) and the live support count.  The buffer updates both on
    every append/evict — reads are O(1).
    """

    __slots__ = ("side", "items", "words", "count")

    def __init__(self, side: Side, items: tuple[int, ...]) -> None:
        self.side = side
        self.items = items
        self.words: np.ndarray | None = None  # assigned by the buffer
        self.count = 0


class StreamBuffer:
    """Sliding/tumbling window over a two-view row stream.

    Args:
        n_left, n_right: Vocabulary widths of the two views; every
            appended row chunk must match them.
        left_names, right_names: Optional item names forwarded to
            :meth:`window_dataset`.
        capacity: Initial row capacity hint (the buffer grows as
            needed); useful to pre-size for a known window.
        backend: Word-op backend of the incremental tracked-support
            updates — ``"native"`` (fused C AND-reduce + popcount),
            ``"numpy"``, or ``"auto"``.  Tracker regions are only a few
            words per append, where the measured native gain is parity
            at best, so ``"auto"`` stays on numpy; pass ``"native"``
            explicitly to force the C kernel.  Counts are bit-identical
            either way.

    Example::

        >>> import numpy as np
        >>> from repro.stream import StreamBuffer
        >>> buffer = StreamBuffer(n_left=2, n_right=2)
        >>> buffer.append(np.eye(2, dtype=bool), np.eye(2, dtype=bool))
        >>> buffer.evict(1)
        >>> len(buffer)
        1
    """

    def __init__(
        self,
        n_left: int,
        n_right: int,
        left_names: Sequence[str] | None = None,
        right_names: Sequence[str] | None = None,
        capacity: int = 256,
        backend: str = "auto",
    ) -> None:
        if n_left < 0 or n_right < 0:
            raise ValueError("vocabulary sizes must be non-negative")
        if capacity < 1:
            raise ValueError("capacity must be positive")
        # "auto" deliberately stays on numpy: the per-append regions are
        # a few words, below any size where the native kernel wins
        # (see BENCH_native.json's stream honesty cell).
        self.backend = "numpy" if backend == "auto" else resolve_backend(backend)
        cap_rows = n_words_for(capacity) * WORD_BITS
        self._left = _SideStore(n_left, cap_rows)
        self._right = _SideStore(n_right, cap_rows)
        self.left_names = list(left_names) if left_names is not None else None
        self.right_names = list(right_names) if right_names is not None else None
        self._cap_rows = cap_rows
        self._start = 0  # bit/row offset of the first live transaction
        self._end = 0  # one past the last live transaction
        self._trackers: list[TrackedItemset] = []
        #: Lifetime counters (windows come and go; these only grow).
        self.appended_total = 0
        self.evicted_total = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._end - self._start

    def restore_counters(self, appended_total: int, evicted_total: int) -> None:
        """Reset the lifetime counters to checkpointed values.

        Only meaningful when refilling a fresh buffer from a
        :class:`~repro.resilience.supervisor.WindowCheckpoint` — the
        restoring ``append`` bumped ``appended_total`` as if the window
        were new rows, so the snapshot's lifetime counters are put back
        for continuity of observability.
        """
        if appended_total < 0 or evicted_total < 0:
            raise ValueError("lifetime counters must be non-negative")
        self.appended_total = appended_total
        self.evicted_total = evicted_total

    @property
    def n_left(self) -> int:
        """Left vocabulary width."""
        return self._left.n_items

    @property
    def n_right(self) -> int:
        """Right vocabulary width."""
        return self._right.n_items

    def _store(self, side: Side) -> _SideStore:
        return self._left if side is Side.LEFT else self._right

    def item_counts(self, side: Side) -> np.ndarray:
        """Per-item occurrence counts over the live window (a copy)."""
        return self._store(side).counts.copy()

    # ------------------------------------------------------------------
    # Capacity management
    # ------------------------------------------------------------------
    def _rebase(self, new_cap_rows: int | None = None) -> None:
        """Drop dead leading words (and optionally grow), keeping the
        start offset's sub-word position so no bits ever shift."""
        dead_w = self._start // WORD_BITS
        used_w = n_words_for(self._end)
        live_w = used_w - dead_w
        if new_cap_rows is None and dead_w == 0:
            return
        cap_rows = self._cap_rows if new_cap_rows is None else new_cap_rows
        cap_w = n_words_for(cap_rows)
        row_shift = dead_w * WORD_BITS
        for store in (self._left, self._right):
            words = np.zeros((store.n_items, cap_w), dtype=np.uint64)
            words[:, :live_w] = store.words[:, dead_w:used_w]
            store.words = words
            bools = np.zeros((cap_rows, store.n_items), dtype=bool)
            bools[: self._end - row_shift] = store.bools[row_shift : self._end]
            store.bools = bools
        for tracker in self._trackers:
            words = np.zeros(cap_w, dtype=np.uint64)
            words[:live_w] = tracker.words[dead_w:used_w]
            tracker.words = words
        self._cap_rows = cap_rows
        self._start -= row_shift
        self._end -= row_shift

    def _ensure_capacity(self, new_rows: int) -> None:
        if self._end + new_rows <= self._cap_rows:
            return
        live = len(self)
        needed = live + (self._start % WORD_BITS) + new_rows
        cap_rows = self._cap_rows
        while cap_rows < 2 * needed:
            cap_rows *= 2
        self._rebase(cap_rows)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, left_rows: np.ndarray, right_rows: np.ndarray) -> None:
        """Append a chunk of transactions to the tail of the window.

        ``left_rows`` / ``right_rows`` are ``(k, n_left)`` /
        ``(k, n_right)`` Boolean matrices describing the same ``k`` new
        transactions.  Only the tail words of the packed columns are
        touched (``O(n_items * k / 64)``).
        """
        left_rows = np.ascontiguousarray(left_rows, dtype=bool)
        right_rows = np.ascontiguousarray(right_rows, dtype=bool)
        if left_rows.ndim != 2 or right_rows.ndim != 2:
            raise ValueError("row chunks must be 2-dimensional")
        if left_rows.shape[0] != right_rows.shape[0]:
            raise ValueError(
                "left and right chunks must have the same number of rows: "
                f"{left_rows.shape[0]} != {right_rows.shape[0]}"
            )
        if left_rows.shape[1] != self.n_left or right_rows.shape[1] != self.n_right:
            raise ValueError(
                f"chunk widths ({left_rows.shape[1]}, {right_rows.shape[1]}) do "
                f"not match the buffer ({self.n_left}, {self.n_right})"
            )
        k = left_rows.shape[0]
        if k == 0:
            return
        self._ensure_capacity(k)
        end = self._end
        offset = end % WORD_BITS
        w0 = end // WORD_BITS
        w_hi = n_words_for(end + k)
        for store, rows in ((self._left, left_rows), (self._right, right_rows)):
            store.bools[end : end + k] = rows
            packed = pack_rows_at(rows, offset)
            # Bits at and above ``offset`` of the tail word are still
            # zero (buffer invariant), so OR splices the chunk exactly;
            # and because ``packed`` holds only the new bits, its
            # popcounts are exactly the per-item count increments.
            store.words[:, w0] |= packed[:, 0]
            if packed.shape[1] > 1:
                store.words[:, w0 + 1 : w0 + packed.shape[1]] = packed[:, 1:]
            store.counts += popcount_rows(packed)
        offset_mask = _low_mask(offset) if offset else None
        for side in (Side.LEFT, Side.RIGHT):
            side_trackers = [t for t in self._trackers if t.side is side]
            if not side_trackers:
                continue
            store = self._store(side)
            # The AND over each itemset's freshly written tail words
            # recomputes exactly the bits of this word range; positions
            # below ``offset`` reproduce their previous value, so the
            # count increment is the region's popcount minus theirs.
            # All of a side's itemsets go through ONE grouped fused
            # AND-reduce — the regions are only a few words each, so the
            # win is amortising the dispatch overhead across trackers.
            index: list[int] = []
            offsets = [0]
            for tracker in side_trackers:
                index.extend(tracker.items)
                offsets.append(len(index))
            regions, counts = and_reduce_many_rows(
                store.words[index, w0:w_hi],
                np.asarray(offsets, dtype=np.int64),
                backend=self.backend,
            )
            for tracker, region, region_count in zip(
                side_trackers, regions, counts
            ):
                old_partial = (
                    int(tracker.words[w0] & offset_mask).bit_count()
                    if offset_mask is not None
                    else 0
                )
                tracker.words[w0:w_hi] = region
                tracker.count += int(region_count) - old_partial
        self._end = end + k
        self.appended_total += k
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.stream_append(k, len(self))

    def evict(self, k: int) -> None:
        """Drop the ``k`` oldest live transactions from the window.

        Zeroes the evicted bit range (``O(evicted words)``) and advances
        the window start; dead leading words are dropped by an amortised
        rotation once they outnumber the live ones, so memory stays
        proportional to the window.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        if k > len(self):
            raise ValueError(f"cannot evict {k} of {len(self)} live rows")
        if k == 0:
            return
        lo, hi = self._start, self._start + k
        w_lo = lo // WORD_BITS
        tail = hi % WORD_BITS
        tail_mask = _low_mask(tail) if tail else None
        for store in (self._left, self._right):
            store.counts -= self._range_counts(store.words, lo, hi)
            self._clear_prefix(store.words, lo, hi)
        for tracker in self._trackers:
            # Inlined single-row variant of _range_counts/_clear_prefix.
            dead = tracker.words[w_lo : n_words_for(hi)]
            if tail_mask is None:
                tracker.count -= popcount(dead)
                dead[:] = 0
            else:
                tracker.count -= popcount(dead[:-1]) + int(
                    dead[-1] & tail_mask
                ).bit_count()
                dead[:-1] = 0
                dead[-1] &= ~tail_mask
        self._start = hi
        self.evicted_total += k
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.stream_evict(k, len(self))
        dead_w = self._start // WORD_BITS
        live_w = n_words_for(self._end) - dead_w
        if dead_w >= 8 and dead_w >= live_w:
            self._rebase()

    @staticmethod
    def _range_counts(words: np.ndarray, lo: int, hi: int) -> np.ndarray:
        """Per-row popcounts of bit range ``[lo, hi)``; bits below ``lo``
        must already be zero (the evicted-prefix invariant)."""
        tail = hi % WORD_BITS
        view = words[:, lo // WORD_BITS : n_words_for(hi)]
        if tail:
            view = view.copy()
            view[:, -1] &= _low_mask(tail)
        return popcount_rows(view)

    @staticmethod
    def _clear_prefix(words: np.ndarray, lo: int, hi: int) -> None:
        """Zero bit range ``[lo, hi)``; bits below ``lo`` are already zero."""
        words[:, lo // WORD_BITS : hi // WORD_BITS] = 0
        tail = hi % WORD_BITS
        if tail:
            words[:, hi // WORD_BITS] &= ~_low_mask(tail)

    # ------------------------------------------------------------------
    # Window extraction
    # ------------------------------------------------------------------
    def bit_matrix(self, side: Side) -> BitMatrix:
        """Packed item columns of the live window, bit-identical to
        ``BitMatrix.from_bool_columns(window)``.

        A word slice when the window start is word-aligned; one
        :func:`~repro.core.bitset.shift_rows` pass (the window rotation)
        otherwise.  Either way ``O(live words)`` — never a repack.
        """
        store = self._store(side)
        n_live = len(self)
        out_w = n_words_for(n_live)
        w_lo = self._start // WORD_BITS
        shift = self._start % WORD_BITS
        if shift == 0:
            return BitMatrix(store.words[:, w_lo : w_lo + out_w].copy(), n_live)
        source = np.zeros((store.n_items, out_w + 1), dtype=np.uint64)
        avail = min(out_w + 1, store.words.shape[1] - w_lo)
        source[:, :avail] = store.words[:, w_lo : w_lo + avail]
        return BitMatrix(shift_rows(source, shift)[:, :out_w], n_live)

    def window_dataset(self, name: str = "stream-window") -> TwoViewDataset:
        """The live window as a :class:`~repro.data.dataset.TwoViewDataset`."""
        return TwoViewDataset(
            self._left.bools[self._start : self._end],
            self._right.bools[self._start : self._end],
            self.left_names,
            self.right_names,
            name=name,
        )

    def refit_context(
        self, name: str = "stream-window"
    ) -> tuple[TwoViewDataset, SearchCache]:
        """Window dataset plus a :class:`SearchCache` built from the
        incrementally maintained packed columns.

        Hand both to :meth:`repro.core.translator.TranslatorExact.fit`
        (``fit(dataset, cache=cache)``) so the refit skips the full
        repack; the fitted model is bit-identical to a batch fit on the
        same window because the injected columns are.
        """
        dataset = self.window_dataset(name)
        cache = SearchCache(
            dataset,
            left_bits=self.bit_matrix(Side.LEFT),
            right_bits=self.bit_matrix(Side.RIGHT),
        )
        return dataset, cache

    # ------------------------------------------------------------------
    # Tracked itemsets
    # ------------------------------------------------------------------
    def track(self, side: Side, items: Sequence[int]) -> TrackedItemset:
        """Register an itemset for incremental support maintenance.

        Returns a :class:`TrackedItemset` whose ``count`` the buffer
        keeps equal to the itemset's support in the live window, at
        ``O(new words)`` cost per append and ``O(evicted words)`` per
        evict.
        """
        items = tuple(int(item) for item in items)
        store = self._store(side)
        if not items:
            raise ValueError("cannot track an empty itemset")
        if any(not 0 <= item < store.n_items for item in items):
            raise ValueError(f"itemset {items} outside the {side.value} vocabulary")
        tracker = TrackedItemset(side, items)
        # Bits outside [start, end) are zero in every item column, so the
        # full-width AND is already correctly windowed.
        tracker.words, tracker.count = and_reduce_rows(
            store.words[list(items)], backend=self.backend
        )
        self._trackers.append(tracker)
        return tracker

    def track_table(self, table) -> list[tuple[TrackedItemset, TrackedItemset]]:
        """Track every rule of a translation table.

        Returns ``(lhs, rhs)`` tracker pairs in rule order — the live
        antecedent/consequent supports of each published rule, kept
        fresh by the incremental append/evict path.
        """
        return [
            (self.track(Side.LEFT, rule.lhs), self.track(Side.RIGHT, rule.rhs))
            for rule in table
        ]

    def untrack_all(self) -> None:
        """Drop every registered tracker (e.g. after a model swap)."""
        self._trackers.clear()

    def __repr__(self) -> str:
        return (
            f"StreamBuffer(n_left={self.n_left}, n_right={self.n_right}, "
            f"live={len(self)}, appended={self.appended_total}, "
            f"evicted={self.evicted_total}, trackers={len(self._trackers)})"
        )
