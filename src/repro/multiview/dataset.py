"""Boolean datasets with an arbitrary number of views."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.data.dataset import TwoViewDataset
from repro.data.schema import ViewSchema

__all__ = ["MultiViewDataset"]


class MultiViewDataset:
    """A Boolean dataset whose attributes split into ``k >= 2`` views.

    Parameters
    ----------
    views:
        Boolean matrices, one per view, all with the same number of rows.
    view_names:
        Optional names of the views (defaults to ``view0, view1, ...``).
    item_names:
        Optional per-view item name lists.
    name:
        Dataset name for reports.
    schemas:
        Optional per-view :class:`~repro.data.schema.ViewSchema` lists
        (``None`` entries allowed), carrying item provenance from the
        pre-processing pipeline into every projected view pair.
    """

    def __init__(
        self,
        views: Sequence[object],
        view_names: Sequence[str] | None = None,
        item_names: Sequence[Sequence[str]] | None = None,
        name: str = "multiview",
        schemas: Sequence[object] | None = None,
    ) -> None:
        if len(views) < 2:
            raise ValueError("a multi-view dataset needs at least two views")
        matrices = []
        for index, view in enumerate(views):
            array = np.asarray(view)
            if array.ndim != 2:
                raise ValueError(f"view {index} must be 2-dimensional")
            if array.dtype != bool:
                if not np.isin(array, (0, 1)).all():
                    raise ValueError(f"view {index} must be Boolean")
                array = array.astype(bool)
            matrices.append(np.ascontiguousarray(array))
        n = matrices[0].shape[0]
        if any(matrix.shape[0] != n for matrix in matrices):
            raise ValueError("all views must have the same number of transactions")
        self.views = matrices
        self.view_names = (
            list(view_names)
            if view_names is not None
            else [f"view{index}" for index in range(len(matrices))]
        )
        if len(self.view_names) != len(matrices):
            raise ValueError("view_names length does not match view count")
        if item_names is None:
            self.item_names = [
                [f"{view_name}:{column}" for column in range(matrix.shape[1])]
                for view_name, matrix in zip(self.view_names, matrices)
            ]
        else:
            self.item_names = [list(names) for names in item_names]
            for index, (names, matrix) in enumerate(zip(self.item_names, matrices)):
                if len(names) != matrix.shape[1]:
                    raise ValueError(f"item_names[{index}] length mismatch")
        if schemas is None:
            self.schemas: list[ViewSchema | None] = [None] * len(matrices)
        else:
            if len(schemas) != len(matrices):
                raise ValueError("schemas length does not match view count")
            for index, (schema, matrix) in enumerate(zip(schemas, matrices)):
                if schema is not None and len(schema) != matrix.shape[1]:
                    raise ValueError(f"schemas[{index}] length mismatch")
            self.schemas = list(schemas)
        self.name = name

    # ------------------------------------------------------------------
    @property
    def n_transactions(self) -> int:
        """Number of transactions shared by all views."""
        return self.views[0].shape[0]

    @property
    def n_views(self) -> int:
        """Number of views ``k``."""
        return len(self.views)

    def view_pairs(self) -> list[tuple[int, int]]:
        """All unordered view index pairs ``(i, j)`` with ``i < j``."""
        return [
            (first, second)
            for first in range(self.n_views)
            for second in range(first + 1, self.n_views)
        ]

    def pair(self, first: int, second: int) -> TwoViewDataset:
        """Project onto one view pair as a :class:`TwoViewDataset`."""
        if not 0 <= first < self.n_views or not 0 <= second < self.n_views:
            raise IndexError("view index out of range")
        if first == second:
            raise ValueError("a pair needs two distinct views")
        return TwoViewDataset(
            self.views[first],
            self.views[second],
            self.item_names[first],
            self.item_names[second],
            name=f"{self.name}[{self.view_names[first]}~{self.view_names[second]}]",
            left_schema=self.schemas[first],
            right_schema=self.schemas[second],
        )

    def to_payload(self) -> dict[str, object]:
        """JSON-serialisable form (sparse rows per view, schemas included).

        Round-trips exactly through :meth:`from_payload`, including any
        per-view schemas.
        """
        return {
            "name": self.name,
            "view_names": list(self.view_names),
            "item_names": [list(names) for names in self.item_names],
            "n_transactions": self.n_transactions,
            "rows": [
                [np.flatnonzero(matrix[row]).tolist() for row in range(matrix.shape[0])]
                for matrix in self.views
            ],
            "schemas": [
                schema.to_payload() if schema is not None else None
                for schema in self.schemas
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict[str, object]) -> "MultiViewDataset":
        """Inverse of :meth:`to_payload`."""
        item_names = [list(names) for names in payload["item_names"]]
        n = int(payload["n_transactions"])
        views = []
        for names, rows in zip(item_names, payload["rows"]):
            matrix = np.zeros((n, len(names)), dtype=bool)
            for row, columns in enumerate(rows):
                matrix[row, columns] = True
            views.append(matrix)
        schemas = [
            ViewSchema.from_payload(entry) if entry is not None else None
            for entry in payload.get("schemas", [None] * len(views))
        ]
        return cls(
            views,
            view_names=list(payload["view_names"]),
            item_names=item_names,
            name=str(payload.get("name", "multiview")),
            schemas=schemas,
        )

    def __repr__(self) -> str:
        shapes = ", ".join(
            f"{name}:{matrix.shape[1]}"
            for name, matrix in zip(self.view_names, self.views)
        )
        return f"MultiViewDataset(name={self.name!r}, n={self.n_transactions}, views=[{shapes}])"
