"""Pairwise multi-view TRANSLATOR.

Models a :class:`~repro.multiview.dataset.MultiViewDataset` as one
translation table per unordered view pair, each induced with a two-view
TRANSLATOR.  The total encoded length is the sum of the pairwise
bidirectional translation lengths

    L(D, {T_ij}) = sum_{i<j}  L(T_ij) + L(C_i | T_ij) + L(C_j | T_ij),

which reduces exactly to the paper's score for two views.  The pairwise
decomposition keeps the search space tractable (the paper's noted
obstacle for the multi-view generalisation) at the cost of not sharing
rules across pairs.
"""

from __future__ import annotations

import dataclasses
import time

from repro.core.translator import TranslatorResult, TranslatorSelect
from repro.multiview.dataset import MultiViewDataset

__all__ = ["MultiViewResult", "MultiViewTranslator"]


@dataclasses.dataclass
class MultiViewResult:
    """Outcome of fitting the pairwise multi-view translator."""

    dataset_name: str
    pair_results: dict[tuple[int, int], TranslatorResult]
    runtime_seconds: float

    @property
    def n_rules(self) -> int:
        """Total number of rules over all pairwise tables."""
        return sum(result.n_rules for result in self.pair_results.values())

    @property
    def total_bits(self) -> float:
        """Total encoded length over all pairwise translations."""
        return sum(result.total_bits for result in self.pair_results.values())

    @property
    def baseline_bits(self) -> float:
        """Total encoded length under empty tables."""
        return sum(
            result.state.baseline_bits for result in self.pair_results.values()
        )

    @property
    def compression_ratio(self) -> float:
        """Aggregate ``L%`` over all pairs."""
        baseline = self.baseline_bits
        return self.total_bits / baseline if baseline else 1.0

    def summary(self) -> dict[str, object]:
        """Per-pair and aggregate statistics."""
        return {
            "dataset": self.dataset_name,
            "n_pairs": len(self.pair_results),
            "n_rules": self.n_rules,
            "compression_ratio": self.compression_ratio,
            "per_pair": {
                pair: {
                    "n_rules": result.n_rules,
                    "compression_ratio": result.compression_ratio,
                }
                for pair, result in self.pair_results.items()
            },
        }


class MultiViewTranslator:
    """Fit one two-view TRANSLATOR per view pair.

    Parameters mirror :class:`~repro.core.translator.TranslatorSelect`,
    which is used as the underlying per-pair algorithm (the paper's best
    compression/runtime trade-off).
    """

    def __init__(
        self,
        k: int = 1,
        minsup: int | None = None,
        max_candidates: int = 10_000,
    ) -> None:
        self.k = k
        self.minsup = minsup
        self.max_candidates = max_candidates

    def fit(self, dataset: MultiViewDataset) -> MultiViewResult:
        """Induce pairwise translation tables for all view pairs."""
        start = time.perf_counter()
        pair_results: dict[tuple[int, int], TranslatorResult] = {}
        for first, second in dataset.view_pairs():
            pair_data = dataset.pair(first, second)
            translator = TranslatorSelect(
                k=self.k, minsup=self.minsup, max_candidates=self.max_candidates
            )
            pair_results[(first, second)] = translator.fit(pair_data)
        return MultiViewResult(
            dataset_name=dataset.name,
            pair_results=pair_results,
            runtime_seconds=time.perf_counter() - start,
        )
