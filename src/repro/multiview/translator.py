"""Pairwise multi-view TRANSLATOR.

Models a :class:`~repro.multiview.dataset.MultiViewDataset` as one
translation table per unordered view pair, each induced with a two-view
TRANSLATOR.  The total encoded length is the sum of the pairwise
bidirectional translation lengths

    L(D, {T_ij}) = sum_{i<j}  L(T_ij) + L(C_i | T_ij) + L(C_j | T_ij),

which reduces exactly to the paper's score for two views.  The pairwise
decomposition keeps the search space tractable (the paper's noted
obstacle for the multi-view generalisation) at the cost of not sharing
rules across pairs.

Shared packed bitsets
---------------------
Each view's Boolean matrix is packed into uint64 bitset columns exactly
once, and the packed columns are shared across all ``k·(k-1)/2`` pairs:
the exact search receives them through
``SearchCache(left_bits=, right_bits=)``, the candidate miners through a
stitched joint :class:`~repro.core.bitset.BitMatrix`
(:func:`repro.mining.twoview.joint_bits`).  Packing is deterministic, so
the fitted tables are bit-identical to fitting every pair from scratch —
only the redundant per-pair repacks disappear (measured in
``BENCH_kview.json``).

Conditional translation
-----------------------
With ``conditional=True``, pairs are scored *residually* in
:meth:`MultiViewDataset.view_pairs` order: after fitting pair ``(i, j)``,
every transaction matched by one of its accepted rules is marked covered,
and later pairs are fitted only on the still-uncovered transactions.
This answers "what does pair (i, j) explain *beyond* the earlier pairs?"
and avoids re-reporting the same cross-view structure k-1 times.
Residual subsets change the transaction universe, so those fits pack
their (smaller) matrices fresh rather than reusing the shared columns.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.core.bitset import BitMatrix
from repro.core.search import SearchCache
from repro.core.translator import TranslatorExact, TranslatorResult, TranslatorSelect
from repro.mining.twoview import joint_bits
from repro.multiview.dataset import MultiViewDataset

__all__ = ["MultiViewResult", "MultiViewTranslator"]

_METHODS = ("select", "exact")


@dataclasses.dataclass
class MultiViewResult:
    """Outcome of fitting the pairwise multi-view translator."""

    dataset_name: str
    pair_results: dict[tuple[int, int], TranslatorResult]
    runtime_seconds: float
    method: str = "select"
    conditional: bool = False
    #: Transactions each pair was scored on (the full dataset, or the
    #: residual uncovered subset in conditional mode; fully covered pairs
    #: are recorded with their residual count but carry no fit).
    pair_rows: dict[tuple[int, int], int] = dataclasses.field(default_factory=dict)

    @property
    def n_rules(self) -> int:
        """Total number of rules over all pairwise tables."""
        return sum(result.n_rules for result in self.pair_results.values())

    @property
    def total_bits(self) -> float:
        """Total encoded length over all pairwise translations."""
        return sum(result.total_bits for result in self.pair_results.values())

    @property
    def baseline_bits(self) -> float:
        """Total encoded length under empty tables."""
        return sum(
            result.state.baseline_bits for result in self.pair_results.values()
        )

    @property
    def compression_ratio(self) -> float:
        """Aggregate ``L%`` over all pairs."""
        baseline = self.baseline_bits
        return self.total_bits / baseline if baseline else 1.0

    def summary(self) -> dict[str, object]:
        """Per-pair and aggregate statistics."""
        return {
            "dataset": self.dataset_name,
            "method": self.method,
            "conditional": self.conditional,
            "n_pairs": len(self.pair_results),
            "n_rules": self.n_rules,
            "compression_ratio": self.compression_ratio,
            "per_pair": {
                pair: {
                    "n_rules": result.n_rules,
                    "compression_ratio": result.compression_ratio,
                    "rows": self.pair_rows.get(pair, result.state.dataset.n_transactions),
                }
                for pair, result in self.pair_results.items()
            },
        }


class MultiViewTranslator:
    """Fit one two-view TRANSLATOR per view pair over shared packed bitsets.

    Parameters
    ----------
    k:
        Rules selected per iteration (``method="select"`` only).
    minsup:
        Absolute minimum support for candidate mining (``method="select"``;
        ``None`` tunes it automatically).
    max_candidates:
        Candidate budget per pair (``method="select"``).
    method:
        ``"select"`` (the default: TRANSLATOR-SELECT per pair, the
        paper's best compression/runtime trade-off) or ``"exact"``
        (TRANSLATOR-EXACT per pair, fed the shared packed columns via
        ``SearchCache(left_bits=, right_bits=)``).
    conditional:
        Score each pair residually given the transactions already covered
        by earlier pairs' rules (see the module docstring).  Off by
        default — the unconditional decomposition is the published score.
    max_iterations:
        Optional per-pair cap on the number of selection/search rounds.
    max_rule_size:
        Rule-size cap forwarded to the exact search (``method="exact"``).
    kernel:
        Support kernel forwarded to the per-pair algorithm; with
        ``"bool"`` the shared packed columns are not used (the reference
        kernel packs nothing).
    """

    def __init__(
        self,
        k: int = 1,
        minsup: int | None = None,
        max_candidates: int = 10_000,
        method: str = "select",
        conditional: bool = False,
        max_iterations: int | None = None,
        max_rule_size: int | None = None,
        kernel: str = "auto",
    ) -> None:
        if method not in _METHODS:
            raise ValueError(f"unknown method {method!r}; expected one of {_METHODS}")
        self.k = k
        self.minsup = minsup
        self.max_candidates = max_candidates
        self.method = method
        self.conditional = conditional
        self.max_iterations = max_iterations
        self.max_rule_size = max_rule_size
        self.kernel = kernel

    # ------------------------------------------------------------------
    def _fit_pair(self, pair_data, left_bits, right_bits) -> TranslatorResult:
        """Fit one view pair, reusing pre-packed columns when given."""
        if self.method == "exact":
            translator = TranslatorExact(
                max_iterations=self.max_iterations,
                max_rule_size=self.max_rule_size,
                kernel=self.kernel,
            )
            cache = None
            if left_bits is not None and self.kernel != "bool":
                cache = SearchCache(
                    pair_data, left_bits=left_bits, right_bits=right_bits
                )
            return translator.fit(pair_data, cache=cache)
        bits = None
        if left_bits is not None and self.kernel != "bool":
            bits = joint_bits(left_bits, right_bits)
        translator = TranslatorSelect(
            k=self.k,
            minsup=self.minsup,
            max_candidates=self.max_candidates,
            max_iterations=self.max_iterations,
            kernel=self.kernel,
            joint_bits=bits,
        )
        return translator.fit(pair_data)

    def fit(self, dataset: MultiViewDataset) -> MultiViewResult:
        """Induce pairwise translation tables for all view pairs.

        The views are packed once up front; every unconditional pair fit
        reuses the shared columns and is bit-identical to a from-scratch
        two-view fit of that pair.
        """
        start = time.perf_counter()
        pack = self.kernel != "bool"
        view_bits = (
            [BitMatrix.from_bool_columns(view) for view in dataset.views]
            if pack
            else [None] * dataset.n_views
        )
        covered = np.zeros(dataset.n_transactions, dtype=bool)
        pair_results: dict[tuple[int, int], TranslatorResult] = {}
        pair_rows: dict[tuple[int, int], int] = {}
        for first, second in dataset.view_pairs():
            residual = None
            if self.conditional and covered.any():
                residual = np.flatnonzero(~covered)
                pair_rows[(first, second)] = int(residual.size)
                if residual.size == 0:
                    # Everything already explained by earlier pairs.
                    continue
                pair_data = dataset.pair(first, second).subset(
                    residual, name=f"{dataset.name}[{first}~{second}|residual]"
                )
                # The residual subset lives on a different transaction
                # universe; its (smaller) matrices are packed fresh.
                result = self._fit_pair(pair_data, None, None)
            else:
                pair_data = dataset.pair(first, second)
                pair_rows[(first, second)] = pair_data.n_transactions
                result = self._fit_pair(
                    pair_data, view_bits[first], view_bits[second]
                )
            pair_results[(first, second)] = result
            if self.conditional:
                fired = np.zeros(pair_data.n_transactions, dtype=bool)
                for rule in result.table:
                    fired |= pair_data.joint_support_mask(rule.lhs, rule.rhs)
                if residual is None:
                    covered |= fired
                else:
                    covered[residual[fired]] = True
        return MultiViewResult(
            dataset_name=dataset.name,
            pair_results=pair_results,
            runtime_seconds=time.perf_counter() - start,
            method=self.method,
            conditional=self.conditional,
            pair_rows=pair_rows,
        )
