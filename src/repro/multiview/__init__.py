"""Multi-view extension (the paper's future-work direction).

The paper concludes: "Directions for future work include, for instance,
extending this approach to ... cases with more than two views.  This
requires designing a suitable pattern based encoding for the data, and a
procedure to enumerate the corresponding search space."

This subpackage implements the natural pairwise instantiation of that
programme: a :class:`~repro.multiview.dataset.MultiViewDataset` over ``k``
views, and a :class:`~repro.multiview.translator.MultiViewTranslator`
that models the data as one translation table per unordered view pair,
each selected with the two-view MDL criterion.  The total encoded length
is the sum over all pairwise bidirectional translations — a direct
generalisation of ``L(D_{L<->R}, T)`` that reduces to the paper's score
for ``k = 2``.
"""

from repro.multiview.dataset import MultiViewDataset
from repro.multiview.translator import MultiViewResult, MultiViewTranslator

__all__ = ["MultiViewDataset", "MultiViewResult", "MultiViewTranslator"]
