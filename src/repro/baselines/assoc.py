"""Cross-view association rule mining (paper, Section 6.3, first baseline).

Classic support/confidence association rule mining (Agrawal et al., 1993)
adapted to the two-view setting: the antecedent must lie entirely in one
view and the consequent entirely in the other.  The paper uses this
baseline to demonstrate the *pattern explosion* — with thresholds tuned to
match TRANSLATOR's output ("the lowest c+ and |supp| values for any rules
found in our translation tables"), it returns orders of magnitude more
rules (up to 153,609 on House).
"""

from __future__ import annotations

import dataclasses

from repro.data.dataset import Side, TwoViewDataset
from repro.core.rules import Direction, TranslationRule
from repro.mining.twoview import two_view_candidates

__all__ = ["AssociationRule", "mine_crossview_rules", "merge_bidirectional"]


@dataclasses.dataclass(frozen=True)
class AssociationRule:
    """A mined cross-view association rule with its quality measures.

    ``direction`` tells which view the antecedent lives in: ``FORWARD``
    means the antecedent is the left itemset.
    """

    lhs: tuple[int, ...]
    rhs: tuple[int, ...]
    direction: Direction
    support: int
    confidence: float

    def to_translation_rule(self) -> TranslationRule:
        """Drop the quality measures, keep the rule."""
        return TranslationRule(self.lhs, self.rhs, self.direction)


def mine_crossview_rules(
    dataset: TwoViewDataset,
    minsup: int,
    minconf: float,
    max_size: int | None = None,
    max_rules: int | None = None,
) -> list[AssociationRule]:
    """Mine all cross-view association rules of both directions.

    Every frequent two-view itemset ``Z = X ∪ Y`` yields up to two rules,
    ``X -> Y`` and ``X <- Y`` (antecedent fully in one view, consequent in
    the other), kept when their confidence reaches ``minconf``.

    Parameters
    ----------
    dataset:
        The two-view dataset.
    minsup:
        Absolute minimum joint support.
    minconf:
        Minimum confidence in [0, 1].
    max_size:
        Optional cap on total itemset size.
    max_rules:
        Safety cap; raises ``RuntimeError`` beyond it (the explosion this
        baseline is known for is real).
    """
    if not 0.0 <= minconf <= 1.0:
        raise ValueError("minconf must be in [0, 1]")
    candidates = two_view_candidates(
        dataset, minsup, closed=False, max_size=max_size,
        max_candidates=None if max_rules is None else 50 * max_rules,
    )
    rules: list[AssociationRule] = []
    for candidate in candidates:
        joint_support = candidate.support
        lhs_support = dataset.support_count(Side.LEFT, candidate.lhs)
        rhs_support = dataset.support_count(Side.RIGHT, candidate.rhs)
        forward_confidence = joint_support / lhs_support if lhs_support else 0.0
        backward_confidence = joint_support / rhs_support if rhs_support else 0.0
        if forward_confidence >= minconf:
            rules.append(
                AssociationRule(
                    candidate.lhs, candidate.rhs, Direction.FORWARD,
                    joint_support, forward_confidence,
                )
            )
        if backward_confidence >= minconf:
            rules.append(
                AssociationRule(
                    candidate.lhs, candidate.rhs, Direction.BACKWARD,
                    joint_support, backward_confidence,
                )
            )
        if max_rules is not None and len(rules) > max_rules:
            raise RuntimeError(
                f"association rule mining exceeded max_rules={max_rules}; "
                "raise the thresholds (this is the pattern explosion)"
            )
    return rules


def merge_bidirectional(rules: list[AssociationRule]) -> list[AssociationRule]:
    """Merge forward/backward rule pairs over the same itemsets.

    Mirrors the paper's MAGNUM OPUS post-processing: "the two sets of rules
    are merged, with rules found in both sets resulting into a single
    bidirectional rule".  The merged rule keeps the maximum confidence of
    the two directions (the ``c+`` convention).
    """
    by_itemsets: dict[tuple[tuple[int, ...], tuple[int, ...]], list[AssociationRule]] = {}
    for rule in rules:
        by_itemsets.setdefault((rule.lhs, rule.rhs), []).append(rule)
    merged: list[AssociationRule] = []
    for (lhs, rhs), group in by_itemsets.items():
        directions = {rule.direction for rule in group}
        best_confidence = max(rule.confidence for rule in group)
        support = max(rule.support for rule in group)
        if Direction.FORWARD in directions and Direction.BACKWARD in directions:
            merged.append(
                AssociationRule(lhs, rhs, Direction.BOTH, support, best_confidence)
            )
        else:
            merged.extend(group)
    merged.sort(key=lambda rule: (-rule.confidence, -rule.support, rule.lhs, rule.rhs))
    return merged
