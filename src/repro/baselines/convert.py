"""Interpreting baseline outputs as translation tables.

The Table 3 comparison scores every method with the paper's MDL criterion,
which requires a :class:`~repro.core.table.TranslationTable`.  This module
performs the conversions the paper describes:

* association / significant / redescription rules are already cross-view
  rules — they only need deduplication;
* KRIMP code tables "are directly interpreted as bidirectional rules and
  put in a translation table"; itemsets that do not span both views cannot
  form a valid rule (both sides must be non-empty) and are dropped, with
  the count reported.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.rules import Direction, TranslationRule
from repro.core.table import TranslationTable
from repro.baselines.krimp import KrimpResult

__all__ = ["rules_to_translation_table", "krimp_to_translation_table"]


def rules_to_translation_table(
    rules: Iterable[TranslationRule | object],
) -> TranslationTable:
    """Build a translation table from any rule-like sequence.

    Accepts :class:`TranslationRule` instances or objects exposing
    ``to_translation_rule()`` (all baseline rule types do).  Duplicates are
    silently dropped — baselines may legitimately rediscover a rule.
    """
    table = TranslationTable()
    for rule in rules:
        if not isinstance(rule, TranslationRule):
            converter = getattr(rule, "to_translation_rule", None)
            if converter is None:
                raise TypeError(f"cannot convert {type(rule).__name__} to a rule")
            rule = converter()
        if rule not in table:
            table.add(rule)
    return table


def krimp_to_translation_table(
    result: KrimpResult, n_left: int
) -> tuple[TranslationTable, int]:
    """Convert a KRIMP code table (over joined data) to a translation table.

    Joint column ``j`` is a left item when ``j < n_left`` and right item
    ``j - n_left`` otherwise.  Spanning itemsets become bidirectional
    rules; single-view itemsets are dropped.

    Returns ``(table, n_dropped)``.
    """
    table = TranslationTable()
    dropped = 0
    for itemset in result.itemsets():
        lhs = tuple(item for item in itemset if item < n_left)
        rhs = tuple(item - n_left for item in itemset if item >= n_left)
        if not lhs or not rhs:
            dropped += 1
            continue
        rule = TranslationRule(lhs, rhs, Direction.BOTH)
        if rule not in table:
            table.add(rule)
    return table, dropped
