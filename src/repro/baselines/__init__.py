"""Baselines the paper compares TRANSLATOR against (Section 6.3).

* :mod:`~repro.baselines.assoc` — plain cross-view association rule
  mining (Agrawal et al., 1993), demonstrating the pattern explosion.
* :mod:`~repro.baselines.significant` — significant rule discovery in the
  style of MAGNUM OPUS (Webb, "Discovering significant patterns", 2007):
  Fisher exact tests, multiple-testing correction, optional holdout
  assessment, and merging of both directions into bidirectional rules.
* :mod:`~repro.baselines.redescription` — a REREMI-style redescription
  miner (Galbrun & Miettinen, 2012) restricted to monotone conjunctions.
* :mod:`~repro.baselines.krimp` — the KRIMP code-table algorithm (Vreeken
  et al., 2011) run on the joined two-view data.
* :mod:`~repro.baselines.convert` — interpreting baseline outputs as
  translation tables so they can be scored with the paper's MDL criterion
  (the Table 3 comparison).
"""

from repro.baselines.assoc import AssociationRule, mine_crossview_rules
from repro.baselines.significant import SignificantRuleMiner
from repro.baselines.redescription import Redescription, ReremiMiner
from repro.baselines.krimp import CodeTable, Krimp
from repro.baselines.convert import (
    krimp_to_translation_table,
    rules_to_translation_table,
)

__all__ = [
    "AssociationRule",
    "mine_crossview_rules",
    "SignificantRuleMiner",
    "Redescription",
    "ReremiMiner",
    "CodeTable",
    "Krimp",
    "krimp_to_translation_table",
    "rules_to_translation_table",
]
