"""The KRIMP algorithm (Vreeken, van Leeuwen & Siebes, 2011).

KRIMP induces a *code table* — a list of itemsets with Shannon codes
derived from their usage in a greedy cover of the database — by MDL: a
candidate itemset is kept only when adding it shrinks the total encoded
size ``L(D | CT) + L(CT)``.  The paper runs KRIMP on the *joined* two-view
data and then interprets the resulting code table as a translation table
(Section 6.3, "The KRIMP algorithm"), showing that itemset-based models do
not capture cross-view structure.

Implementation notes (faithful to the original):

* **Standard Cover Order** for code table elements: cardinality desc,
  support desc, lexicographically asc.
* **Standard Candidate Order** for candidates: support desc, cardinality
  desc, lexicographically asc.
* Greedy, non-overlapping cover per transaction.
* Laplace-style +1 smoothing is *not* used; singleton itemsets always
  remain in the code table and zero-usage non-singletons are pruned.
* ``L(CT)`` charges each in-use element its code length plus the cost of
  writing its items with the *standard code table* (singleton) codes.
* Optional post-acceptance pruning: elements whose usage dropped are
  re-tested and removed when that improves compression.
"""

from __future__ import annotations

import dataclasses
import math
import time

import numpy as np

from repro.mining.eclat import eclat

__all__ = ["CodeTable", "Krimp", "KrimpResult"]

Itemset = frozenset[int]


def _cover_order_key(entry: tuple[Itemset, int]) -> tuple[int, int, tuple[int, ...]]:
    itemset, support = entry
    return (-len(itemset), -support, tuple(sorted(itemset)))


class CodeTable:
    """A KRIMP code table over a Boolean transaction database.

    Maintains the element list in Standard Cover Order, the usage counts
    of the current cover, and the encoded sizes.
    """

    def __init__(self, matrix: np.ndarray) -> None:
        array = np.asarray(matrix)
        if array.dtype != bool:
            array = array.astype(bool)
        self.matrix = array
        self.n_transactions, self.n_items = array.shape
        self.transactions: list[Itemset] = [
            frozenset(np.flatnonzero(row).tolist()) for row in array
        ]
        supports = array.sum(axis=0)
        # Standard code table: singleton codes from item supports; items
        # that never occur keep a zero-usage singleton (they cost nothing).
        self._singleton_support = {item: int(supports[item]) for item in range(self.n_items)}
        self.elements: list[tuple[Itemset, int]] = sorted(
            (
                (frozenset((item,)), self._singleton_support[item])
                for item in range(self.n_items)
            ),
            key=_cover_order_key,
        )
        self.usage: dict[Itemset, int] = {}
        self._recover()

    # ------------------------------------------------------------------
    # Covering
    # ------------------------------------------------------------------
    def cover(self, transaction: Itemset) -> list[Itemset]:
        """Greedy non-overlapping cover of one transaction."""
        remaining = set(transaction)
        used: list[Itemset] = []
        for itemset, __ in self.elements:
            if len(itemset) > len(remaining):
                continue
            if itemset <= remaining:
                used.append(itemset)
                remaining -= itemset
                if not remaining:
                    break
        return used

    def _recover(self) -> None:
        """Recompute usage counts of all elements over the database."""
        usage: dict[Itemset, int] = {itemset: 0 for itemset, __ in self.elements}
        for transaction in self.transactions:
            for itemset in self.cover(transaction):
                usage[itemset] += 1
        self.usage = usage

    # ------------------------------------------------------------------
    # Encoded sizes
    # ------------------------------------------------------------------
    def _standard_code_lengths(self) -> dict[int, float]:
        total = sum(self._singleton_support.values())
        lengths: dict[int, float] = {}
        for item, support in self._singleton_support.items():
            lengths[item] = -math.log2(support / total) if support and total else 0.0
        return lengths

    def encoded_sizes(self) -> tuple[float, float]:
        """Return ``(L(D | CT), L(CT))`` in bits."""
        total_usage = sum(self.usage.values())
        if total_usage == 0:
            return 0.0, 0.0
        standard = self._standard_code_lengths()
        data_bits = 0.0
        table_bits = 0.0
        for itemset, __ in self.elements:
            count = self.usage[itemset]
            if count == 0:
                continue
            code_length = -math.log2(count / total_usage)
            data_bits += count * code_length
            table_bits += code_length + sum(standard[item] for item in itemset)
        return data_bits, table_bits

    def total_size(self) -> float:
        """``L(D, CT) = L(D | CT) + L(CT)``."""
        data_bits, table_bits = self.encoded_sizes()
        return data_bits + table_bits

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, itemset: Itemset, support: int) -> None:
        """Insert a non-singleton element in Standard Cover Order."""
        entry = (itemset, support)
        self.elements.append(entry)
        self.elements.sort(key=_cover_order_key)
        self._recover()

    def remove(self, itemset: Itemset) -> None:
        """Remove a non-singleton element."""
        if len(itemset) == 1:
            raise ValueError("singletons cannot be removed from a code table")
        self.elements = [entry for entry in self.elements if entry[0] != itemset]
        self._recover()

    def non_singletons(self) -> list[tuple[Itemset, int]]:
        """In-use non-singleton elements with their usage counts."""
        return [
            (itemset, self.usage[itemset])
            for itemset, __ in self.elements
            if len(itemset) > 1
        ]


@dataclasses.dataclass
class KrimpResult:
    """Outcome of running KRIMP on a database."""

    code_table: CodeTable
    n_candidates: int
    n_accepted: int
    baseline_bits: float
    final_bits: float
    runtime_seconds: float
    effective_minsup: int = 0

    @property
    def compression_ratio(self) -> float:
        """``L(D, CT) / L(D, ST)`` — KRIMP's own compression measure."""
        if self.baseline_bits == 0:
            return 1.0
        return self.final_bits / self.baseline_bits

    def itemsets(self) -> list[tuple[int, ...]]:
        """Accepted non-singleton itemsets, in cover order."""
        return [tuple(sorted(itemset)) for itemset, __ in self.code_table.non_singletons()]


class Krimp:
    """KRIMP driver: mine candidates, filter them by MDL.

    Parameters
    ----------
    minsup:
        Absolute minimum support for candidate itemsets.
    max_size:
        Optional cap on candidate cardinality.
    prune:
        Enable post-acceptance pruning (the paper's standard setting).
    max_candidates:
        Safety cap on the mined candidate count.
    adaptive:
        When the candidate mining would exceed ``max_candidates``, double
        ``minsup`` and retry instead of failing; the threshold actually
        used is reported as ``result.effective_minsup``.
    """

    def __init__(
        self,
        minsup: int = 2,
        max_size: int | None = None,
        prune: bool = True,
        max_candidates: int = 200_000,
        adaptive: bool = True,
    ) -> None:
        self.minsup = minsup
        self.max_size = max_size
        self.prune = prune
        self.max_candidates = max_candidates
        self.adaptive = adaptive

    def _mine_candidates(self, matrix: np.ndarray) -> tuple[list, int]:
        minsup = self.minsup
        n = matrix.shape[0]
        while True:
            try:
                return (
                    eclat(
                        matrix,
                        minsup,
                        max_size=self.max_size,
                        max_itemsets=self.max_candidates,
                    ),
                    minsup,
                )
            except RuntimeError:
                if not self.adaptive or minsup >= n:
                    raise
                minsup = min(n, 2 * minsup)

    def fit(self, matrix: np.ndarray) -> KrimpResult:
        """Run KRIMP on a Boolean transaction matrix."""
        start = time.perf_counter()
        code_table = CodeTable(matrix)
        baseline = code_table.total_size()
        mined, effective_minsup = self._mine_candidates(matrix)
        candidates = [
            (frozenset(itemset), support)
            for itemset, support in mined
            if len(itemset) > 1
        ]
        # Standard Candidate Order: support desc, cardinality desc, lex asc.
        candidates.sort(key=lambda entry: (-entry[1], -len(entry[0]), tuple(sorted(entry[0]))))
        current_size = baseline
        accepted = 0
        for itemset, support in candidates:
            code_table.insert(itemset, support)
            new_size = code_table.total_size()
            if new_size < current_size:
                current_size = new_size
                accepted += 1
                if self.prune:
                    current_size = self._prune(code_table, current_size)
            else:
                code_table.remove(itemset)
        return KrimpResult(
            code_table=code_table,
            n_candidates=len(candidates),
            n_accepted=len(code_table.non_singletons()),
            baseline_bits=baseline,
            final_bits=current_size,
            runtime_seconds=time.perf_counter() - start,
            effective_minsup=effective_minsup,
        )

    @staticmethod
    def _prune(code_table: CodeTable, current_size: float) -> float:
        """Remove elements whose removal improves total encoded size.

        Considers non-singleton elements in increasing usage order, as in
        the original post-acceptance pruning.
        """
        improved = True
        while improved:
            improved = False
            for itemset, usage in sorted(
                code_table.non_singletons(), key=lambda entry: entry[1]
            ):
                support = next(
                    support for element, support in code_table.elements if element == itemset
                )
                code_table.remove(itemset)
                new_size = code_table.total_size()
                if new_size < current_size:
                    current_size = new_size
                    improved = True
                    break
                code_table.insert(itemset, support)
        return current_size
