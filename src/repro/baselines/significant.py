"""Significant rule discovery — a MAGNUM OPUS stand-in (Webb, 2007).

MAGNUM OPUS is closed-source, so this module reimplements the selection
pressure the paper compares against: discover the cross-view rules whose
antecedent/consequent association is *statistically significant*, with
strict multiple-testing control, so that only a small set of individually
reliable, high-confidence rules survives.

Pipeline (per direction, then merged as the paper does):

1. enumerate candidate rules ``X -> y`` with an antecedent itemset from
   the source view (up to ``max_antecedent``) and a single-item consequent
   from the target view (MAGNUM OPUS's default search space);
2. test each with a one-sided Fisher exact test of the 2x2 contingency
   table of ``X`` vs ``y`` occurrences;
3. apply a Bonferroni-style correction for the size of the explored search
   space (Webb's layered correction);
4. require *productivity*: the rule's confidence must strictly exceed the
   confidence of every immediate generalisation (dropping one antecedent
   item) — this removes the redundant specialisations that cause rule
   explosion;
5. optionally validate the surviving rules on holdout data (Webb's
   holdout-assessment variant).

Finally the two directed rule sets are merged; rules found in both
directions become a single bidirectional rule (paper, Section 6.3).
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy.stats import fisher_exact

from repro.data.dataset import Side, TwoViewDataset
from repro.core.rules import Direction, TranslationRule
from repro.mining.eclat import eclat

__all__ = ["SignificantRule", "SignificantRuleMiner"]


@dataclasses.dataclass(frozen=True)
class SignificantRule:
    """A significant directed rule with its statistics.

    ``lhs``/``rhs`` follow the translation-rule convention (left view /
    right view); ``direction`` states which implication was tested.
    """

    lhs: tuple[int, ...]
    rhs: tuple[int, ...]
    direction: Direction
    support: int
    confidence: float
    p_value: float

    def to_translation_rule(self) -> TranslationRule:
        """Drop the statistics, keep the rule."""
        return TranslationRule(self.lhs, self.rhs, self.direction)


def _fisher_p(
    antecedent_mask: np.ndarray, consequent_mask: np.ndarray
) -> float:
    """One-sided Fisher exact p-value for positive association."""
    both = int((antecedent_mask & consequent_mask).sum())
    only_antecedent = int((antecedent_mask & ~consequent_mask).sum())
    only_consequent = int((~antecedent_mask & consequent_mask).sum())
    neither = int((~antecedent_mask & ~consequent_mask).sum())
    table = [[both, only_antecedent], [only_consequent, neither]]
    return float(fisher_exact(table, alternative="greater")[1])


class SignificantRuleMiner:
    """Mine statistically significant cross-view rules.

    Parameters
    ----------
    alpha:
        Family-wise significance level before correction (default 0.05).
    max_antecedent:
        Maximum antecedent itemset size (default 4, MAGNUM OPUS's default).
    minsup:
        Absolute minimum support of the antecedent (keeps the candidate
        space finite; default 5).
    min_confidence:
        Optional confidence floor applied before testing.
    holdout:
        When true, data is split 50/50; rules are discovered on the
        exploratory half and re-tested on the holdout half with a
        Bonferroni correction for the number of *selected* rules only
        (Webb's holdout assessment).
    seed:
        RNG seed for the holdout split.
    """

    def __init__(
        self,
        alpha: float = 0.05,
        max_antecedent: int = 4,
        minsup: int = 5,
        min_confidence: float = 0.0,
        holdout: bool = False,
        seed: int = 0,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.alpha = alpha
        self.max_antecedent = max_antecedent
        self.minsup = minsup
        self.min_confidence = min_confidence
        self.holdout = holdout
        self.seed = seed

    # ------------------------------------------------------------------
    def mine(self, dataset: TwoViewDataset) -> list[SignificantRule]:
        """Mine significant rules in both directions and merge them."""
        if self.holdout and dataset.n_transactions >= 10:
            exploratory, holdout = dataset.split(0.5, rng=self.seed)
        else:
            exploratory, holdout = dataset, None
        forward = self._mine_direction(exploratory, Side.RIGHT)
        backward = self._mine_direction(exploratory, Side.LEFT)
        if holdout is not None:
            forward = self._validate(holdout, forward, Side.RIGHT)
            backward = self._validate(holdout, backward, Side.LEFT)
        return self._merge(forward + backward)

    # ------------------------------------------------------------------
    def _candidate_antecedents(
        self, dataset: TwoViewDataset, source: Side
    ) -> list[tuple[tuple[int, ...], np.ndarray]]:
        matrix = dataset.view(source)
        itemsets = eclat(matrix, max(1, self.minsup), max_size=self.max_antecedent)
        return [
            (itemset, dataset.support_mask(source, itemset))
            for itemset, __ in itemsets
        ]

    def _mine_direction(
        self, dataset: TwoViewDataset, target: Side
    ) -> list[SignificantRule]:
        """Mine rules whose antecedent is in ``target.opposite``."""
        source = target.opposite
        antecedents = self._candidate_antecedents(dataset, source)
        target_matrix = dataset.view(target)
        n_consequents = dataset.n_side(target)
        n_tests = max(1, len(antecedents) * n_consequents)
        corrected_alpha = self.alpha / n_tests
        # Confidence of every immediate generalisation, for productivity.
        confidence_cache: dict[tuple[int, ...], dict[int, float]] = {}

        def direction_for(antecedent_side: Side) -> Direction:
            return Direction.FORWARD if antecedent_side is Side.LEFT else Direction.BACKWARD

        results: list[SignificantRule] = []
        for itemset, mask in antecedents:
            antecedent_support = int(mask.sum())
            if antecedent_support < self.minsup:
                continue
            confidences: dict[int, float] = {}
            covered = target_matrix[mask]
            joint_counts = covered.sum(axis=0)
            for consequent in range(n_consequents):
                joint = int(joint_counts[consequent])
                confidence = joint / antecedent_support
                confidences[consequent] = confidence
                if joint < self.minsup or confidence < self.min_confidence:
                    continue
                # Productivity: strictly better than all generalisations.
                if len(itemset) > 1 and not self._productive(
                    itemset, consequent, confidence, confidence_cache
                ):
                    continue
                p_value = _fisher_p(mask, target_matrix[:, consequent])
                if p_value >= corrected_alpha:
                    continue
                if source is Side.LEFT:
                    lhs, rhs = itemset, (consequent,)
                else:
                    lhs, rhs = (consequent,), itemset
                results.append(
                    SignificantRule(
                        lhs, rhs, direction_for(source), joint, confidence, p_value
                    )
                )
            confidence_cache[itemset] = confidences
        return results

    @staticmethod
    def _productive(
        itemset: tuple[int, ...],
        consequent: int,
        confidence: float,
        cache: dict[tuple[int, ...], dict[int, float]],
    ) -> bool:
        """Rule must beat every generalisation obtained by dropping one item.

        The ECLAT enumeration emits subsets before supersets along the
        search order, but not *all* immediate generalisations necessarily
        precede an itemset; missing cache entries are treated permissively
        (the generalisation was itself infrequent).
        """
        for drop in range(len(itemset)):
            generalisation = itemset[:drop] + itemset[drop + 1 :]
            parent_confidences = cache.get(generalisation)
            if parent_confidences is None:
                continue
            if confidence <= parent_confidences.get(consequent, 0.0):
                return False
        return True

    # ------------------------------------------------------------------
    def _validate(
        self, holdout: TwoViewDataset, rules: list[SignificantRule], target: Side
    ) -> list[SignificantRule]:
        """Webb's holdout assessment: re-test selected rules on fresh data."""
        if not rules:
            return []
        corrected_alpha = self.alpha / len(rules)
        source = target.opposite
        survivors: list[SignificantRule] = []
        for rule in rules:
            antecedent = rule.lhs if source is Side.LEFT else rule.rhs
            consequent = rule.rhs[0] if target is Side.RIGHT else rule.lhs[0]
            antecedent_mask = holdout.support_mask(source, antecedent)
            consequent_mask = holdout.view(target)[:, consequent]
            if not antecedent_mask.any():
                continue
            p_value = _fisher_p(antecedent_mask, consequent_mask)
            if p_value < corrected_alpha:
                survivors.append(rule)
        return survivors

    # ------------------------------------------------------------------
    @staticmethod
    def _merge(rules: list[SignificantRule]) -> list[SignificantRule]:
        """Merge rules found in both directions into bidirectional rules."""
        by_itemsets: dict[
            tuple[tuple[int, ...], tuple[int, ...]], list[SignificantRule]
        ] = {}
        for rule in rules:
            by_itemsets.setdefault((rule.lhs, rule.rhs), []).append(rule)
        merged: list[SignificantRule] = []
        for (lhs, rhs), group in by_itemsets.items():
            directions = {rule.direction for rule in group}
            if Direction.FORWARD in directions and Direction.BACKWARD in directions:
                merged.append(
                    SignificantRule(
                        lhs,
                        rhs,
                        Direction.BOTH,
                        max(rule.support for rule in group),
                        max(rule.confidence for rule in group),
                        min(rule.p_value for rule in group),
                    )
                )
            else:
                merged.extend(group)
        merged.sort(key=lambda rule: (rule.p_value, -rule.confidence, rule.lhs, rule.rhs))
        return merged
