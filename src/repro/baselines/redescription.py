"""Redescription mining — a REREMI stand-in (Galbrun & Miettinen, 2012).

Redescription mining looks for *pairs of queries*, one per view, that are
satisfied by (almost) the same set of objects; quality is the Jaccard
coefficient of the two support sets.  Following the paper's experimental
setup, queries are restricted to **monotone conjunctions** of Boolean
attributes, which makes every redescription interpretable as a
bidirectional high-confidence association rule.

The algorithm is REREMI's alternating greedy scheme:

1. **Initial pairs** — all singleton pairs ``({l}, {r})`` ranked by
   Jaccard; the top ``n_initial`` seed the beam.
2. **Alternating extension** — each beam entry is repeatedly extended
   with the single item (on either side) that maximises Jaccard; an
   extension is kept only when it strictly improves the coefficient.
3. **Selection** — extended candidates are deduplicated (by support
   signature), filtered with a binomial-tail p-value against the
   independence null, and the top ``max_results`` by Jaccard returned.

Like REREMI, selection is per-redescription ("ad-hoc pruning, driven
primarily by accuracy") — nothing discourages global redundancy, which is
exactly the behaviour the paper contrasts TRANSLATOR with.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy.stats import binom

from repro.data.dataset import Side, TwoViewDataset
from repro.core.rules import Direction, TranslationRule

__all__ = ["Redescription", "ReremiMiner"]


@dataclasses.dataclass(frozen=True)
class Redescription:
    """A mined redescription: one monotone conjunction per view."""

    lhs: tuple[int, ...]
    rhs: tuple[int, ...]
    jaccard: float
    support: int
    p_value: float

    def to_translation_rule(self) -> TranslationRule:
        """Interpret the redescription as a bidirectional rule."""
        return TranslationRule(self.lhs, self.rhs, Direction.BOTH)


def _jaccard(left_mask: np.ndarray, right_mask: np.ndarray) -> float:
    intersection = int((left_mask & right_mask).sum())
    union = int((left_mask | right_mask).sum())
    return intersection / union if union else 0.0


def redescription_p_value(
    n: int, left_support: int, right_support: int, intersection: int
) -> float:
    """Binomial-tail p-value of a redescription (standard RM significance).

    Under the independence null, each transaction lands in the
    intersection with probability ``(left_support/n) * (right_support/n)``;
    the p-value is the probability of seeing at least the observed
    intersection, ``P[Binomial(n, p) >= intersection]``.
    """
    if n == 0:
        return 1.0
    if intersection <= 0:
        return 1.0
    probability = (left_support / n) * (right_support / n)
    return float(binom.sf(intersection - 1, n, probability))


class ReremiMiner:
    """Alternating greedy redescription miner over Boolean two-view data.

    Parameters
    ----------
    n_initial:
        Number of top singleton pairs seeding the beam.
    beam_width:
        Beam width during extension.
    max_side_size:
        Maximum items per query side.
    min_support:
        Minimum intersection support of a reported redescription.
    max_p_value:
        Significance threshold on the binomial-tail p-value.
    max_results:
        Number of redescriptions returned (top by Jaccard).
    """

    def __init__(
        self,
        n_initial: int = 50,
        beam_width: int = 4,
        max_side_size: int = 4,
        min_support: int = 5,
        max_p_value: float = 0.01,
        max_results: int = 50,
    ) -> None:
        self.n_initial = n_initial
        self.beam_width = beam_width
        self.max_side_size = max_side_size
        self.min_support = min_support
        self.max_p_value = max_p_value
        self.max_results = max_results

    # ------------------------------------------------------------------
    def mine(self, dataset: TwoViewDataset) -> list[Redescription]:
        """Mine redescriptions of ``dataset``."""
        seeds = self._initial_pairs(dataset)
        found: dict[bytes, Redescription] = {}
        for lhs, rhs in seeds:
            redescription = self._extend(dataset, lhs, rhs)
            if redescription is None:
                continue
            left_mask = dataset.support_mask(Side.LEFT, redescription.lhs)
            right_mask = dataset.support_mask(Side.RIGHT, redescription.rhs)
            signature = np.packbits(left_mask & right_mask).tobytes()
            existing = found.get(signature)
            if existing is None or redescription.jaccard > existing.jaccard:
                found[signature] = redescription
        results = [
            redescription
            for redescription in found.values()
            if redescription.support >= self.min_support
            and redescription.p_value <= self.max_p_value
        ]
        results.sort(key=lambda redescription: (-redescription.jaccard, redescription.lhs))
        return results[: self.max_results]

    def to_rules(self, redescriptions: list[Redescription]) -> list[TranslationRule]:
        """Convert mined redescriptions to bidirectional translation rules."""
        rules: list[TranslationRule] = []
        seen: set[TranslationRule] = set()
        for redescription in redescriptions:
            rule = redescription.to_translation_rule()
            if rule not in seen:
                seen.add(rule)
                rules.append(rule)
        return rules

    # ------------------------------------------------------------------
    def _initial_pairs(
        self, dataset: TwoViewDataset
    ) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
        """Top singleton pairs by Jaccard."""
        scored: list[tuple[float, tuple[int, ...], tuple[int, ...]]] = []
        left = dataset.left
        right = dataset.right
        # Vectorised pairwise intersection counts: left.T @ right.
        intersections = left.astype(np.int32).T @ right.astype(np.int32)
        left_supports = left.sum(axis=0)
        right_supports = right.sum(axis=0)
        for left_item in range(dataset.n_left):
            if left_supports[left_item] == 0:
                continue
            for right_item in range(dataset.n_right):
                if right_supports[right_item] == 0:
                    continue
                intersection = int(intersections[left_item, right_item])
                if intersection < self.min_support:
                    continue
                union = int(
                    left_supports[left_item] + right_supports[right_item] - intersection
                )
                jaccard = intersection / union if union else 0.0
                if jaccard > 0:
                    scored.append((jaccard, (left_item,), (right_item,)))
        scored.sort(key=lambda entry: -entry[0])
        return [(lhs, rhs) for __, lhs, rhs in scored[: self.n_initial]]

    def _extend(
        self,
        dataset: TwoViewDataset,
        lhs: tuple[int, ...],
        rhs: tuple[int, ...],
    ) -> Redescription | None:
        """Alternating greedy beam extension of one seed pair."""
        n = dataset.n_transactions
        beam: list[tuple[float, tuple[int, ...], tuple[int, ...]]] = [
            (
                _jaccard(
                    dataset.support_mask(Side.LEFT, lhs),
                    dataset.support_mask(Side.RIGHT, rhs),
                ),
                lhs,
                rhs,
            )
        ]
        best = beam[0]
        improved = True
        while improved:
            improved = False
            next_beam: list[tuple[float, tuple[int, ...], tuple[int, ...]]] = []
            for jaccard, current_lhs, current_rhs in beam:
                left_mask = dataset.support_mask(Side.LEFT, current_lhs)
                right_mask = dataset.support_mask(Side.RIGHT, current_rhs)
                for side, itemset in ((Side.LEFT, current_lhs), (Side.RIGHT, current_rhs)):
                    if len(itemset) >= self.max_side_size:
                        continue
                    view = dataset.view(side)
                    base_mask = left_mask if side is Side.LEFT else right_mask
                    other_mask = right_mask if side is Side.LEFT else left_mask
                    for item in range(dataset.n_side(side)):
                        if item in itemset:
                            continue
                        candidate_mask = base_mask & view[:, item]
                        if int((candidate_mask & other_mask).sum()) < self.min_support:
                            continue
                        candidate_jaccard = _jaccard(candidate_mask, other_mask)
                        if candidate_jaccard <= jaccard:
                            continue
                        if side is Side.LEFT:
                            entry = (
                                candidate_jaccard,
                                tuple(sorted(itemset + (item,))),
                                current_rhs,
                            )
                        else:
                            entry = (
                                candidate_jaccard,
                                current_lhs,
                                tuple(sorted(itemset + (item,))),
                            )
                        next_beam.append(entry)
            if next_beam:
                next_beam.sort(key=lambda entry: -entry[0])
                beam = next_beam[: self.beam_width]
                if beam[0][0] > best[0]:
                    best = beam[0]
                    improved = True
        jaccard, best_lhs, best_rhs = best
        left_mask = dataset.support_mask(Side.LEFT, best_lhs)
        right_mask = dataset.support_mask(Side.RIGHT, best_rhs)
        intersection = int((left_mask & right_mask).sum())
        if intersection < self.min_support:
            return None
        p_value = redescription_p_value(
            n, int(left_mask.sum()), int(right_mask.sum()), intersection
        )
        return Redescription(best_lhs, best_rhs, jaccard, intersection, p_value)
