"""Binary, mmap-able compiled-model artifacts (the ``compiled.bin`` sidecar).

The JSON artifact (:mod:`repro.serve.artifact`) is the portable,
inspectable source of truth — but every server process that loads it
pays the same cold start: parse the rule list, rebuild the Boolean
masks, re-pack them into the uint64 matrices
:class:`~repro.serve.compiled.CompiledPredictor` runs on.  This module
writes those matrices out **once**, at publish time, in a fixed binary
layout that any number of worker processes can ``mmap`` afterwards:
construction becomes a handful of header reads plus zero-copy numpy
views, and N replicas on one machine share a single page-cache copy of
the model.

File layout (all integers little-endian)::

    offset  size    content
    0       8       magic  b"RPROBIN1"
    8       4       binary format version (currently 1)
    12      4       header length H, uint32
    16      32      SHA-256 over bytes [48, EOF) — header, padding, payload
    48      H       UTF-8 JSON header: model identity (name, version,
                    the JSON artifact's content hash), dimensions
                    (n_left, n_right), payload_nbytes, and a section
                    table [{name, dtype, shape, offset, nbytes}, ...]
    48+H    pad     zero padding to the next 64-byte boundary
    ...             section payloads, each offset 64-byte aligned:
                    per direction D in (R, L) the packed uint64
                    antecedent matrix ``D.ant_words`` (one row per
                    compiled rule over the source vocabulary), the
                    packed uint64 consequent matrix ``D.cons_words``
                    (over the target vocabulary), and the fixed-point
                    uint32 antecedent weight vector ``D.ant_weights``
                    (per-rule antecedent popcounts — the exact counts
                    the blas subset test compares against)

Integrity is all-or-nothing: :func:`map_artifact` validates the magic,
version, header and declared sizes, and (by default) re-hashes
``[48, EOF)`` against the stored digest, so a flipped bit, a truncated
tail or a tampered header raises
:class:`~repro.serve.artifact.ArtifactCorruptError` — the file can
never silently mis-decode into a *different* model.  The write is
crash-safe with the same temp-file + fsync + ``os.replace`` discipline
as :func:`repro.serve.artifact.save_artifact`.

``tests/test_binfmt.py`` fuzzes this contract (randomised tables
round-trip bit-identically against the JSON path; randomised
corruption is always rejected) and ``benchmarks/bench_cluster.py``
measures the cold-start gap (``BENCH_cluster.json``).
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import tempfile
from pathlib import Path

import numpy as np

from repro.core.bitset import n_words_for
from repro.data.dataset import Side
from repro.resilience.faults import fault_point
from repro.serve.artifact import (
    ArtifactCorruptError,
    ArtifactError,
    ModelArtifact,
    _fsync_directory,
)
from repro.serve.compiled import CompiledPredictor

__all__ = [
    "BINFMT_MAGIC",
    "BINFMT_VERSION",
    "SIDECAR_NAME",
    "MappedArtifact",
    "map_artifact",
    "verify_sidecar",
    "write_compiled",
]

#: First eight bytes of every compiled binary artifact.
BINFMT_MAGIC = b"RPROBIN1"
#: Current version of the binary layout.
BINFMT_VERSION = 1
#: File name of the binary sidecar inside a registry version directory.
SIDECAR_NAME = "compiled.bin"

_PRELUDE = struct.Struct("<8sII32s")
_ALIGN = 64
#: Permitted section dtypes; anything else in a header is damage.
_DTYPES = {"uint64": np.uint64, "uint32": np.uint32}
#: Upper bound on declared dimensions — rejects absurd headers before
#: any allocation happens (mirrors ``repro.stream.codec``).
_MAX_DIM = 100_000_000


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _direction_arrays(
    artifact: ModelArtifact, target: Side
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The three per-direction sections, via one throwaway compilation.

    The numpy backend is forced: the packed matrices are
    backend-independent (the backend only selects *kernels*), and
    publish must not require a C toolchain.
    """
    compiled = CompiledPredictor.from_table(
        artifact.table,
        target,
        artifact.n_left if target is Side.RIGHT else artifact.n_right,
        artifact.n_right if target is Side.RIGHT else artifact.n_left,
        backend="numpy",
    )
    from repro.core.bitset import popcount_rows

    weights = popcount_rows(compiled.antecedents.words).astype(np.uint32)
    return compiled.antecedents.words, compiled.consequents.words, weights


def write_compiled(artifact: ModelArtifact, path: str | Path) -> str:
    """Compile ``artifact`` for both directions and write the sidecar.

    Returns the hex SHA-256 digest stored in the prelude.  The write is
    atomic and durable (temp file, fsync, ``os.replace``, directory
    fsync), so a crash at any instant leaves either no sidecar or a
    complete one — never a torn file the registry would have to
    quarantine on its next load.
    """
    path = Path(path)
    sections: list[dict[str, object]] = []
    payloads: list[bytes] = []
    for target, prefix in ((Side.RIGHT, "R"), (Side.LEFT, "L")):
        ant, cons, weights = _direction_arrays(artifact, target)
        for name, array in (
            (f"{prefix}.ant_words", ant),
            (f"{prefix}.cons_words", cons),
            (f"{prefix}.ant_weights", weights),
        ):
            array = np.ascontiguousarray(array)
            sections.append(
                {
                    "name": name,
                    "dtype": array.dtype.name,
                    "shape": list(array.shape),
                    "nbytes": int(array.nbytes),
                }
            )
            payloads.append(array.tobytes())

    # Lay the sections out; offsets are absolute file positions and
    # depend on the header length, which in turn lists the offsets —
    # resolved by fixing the header's serialised length first via a
    # placeholder pass.
    header: dict[str, object] = {
        "binfmt_version": BINFMT_VERSION,
        "model": artifact.name,
        "version": artifact.version,
        "artifact_hash": artifact.content_hash,
        "n_left": artifact.n_left,
        "n_right": artifact.n_right,
        "sections": sections,
    }
    if artifact.left_schema is not None or artifact.right_schema is not None:
        # Optional item-provenance block.  Readers that predate it parse
        # only the fields they know, so old deployments map these
        # sidecars unchanged (covered by tests).
        header["schema"] = {
            "left": artifact.left_schema.to_payload() if artifact.left_schema else None,
            "right": (
                artifact.right_schema.to_payload() if artifact.right_schema else None
            ),
        }
    for __ in range(3):  # offsets may widen the header; re-fit until stable
        encoded = json.dumps(header, sort_keys=True).encode("utf-8")
        offset = _align(_PRELUDE.size + len(encoded))
        for section, payload in zip(sections, payloads):
            section["offset"] = offset
            offset = _align(offset + len(payload))
        header["payload_nbytes"] = offset - _align(_PRELUDE.size + len(encoded))
        candidate = json.dumps(header, sort_keys=True).encode("utf-8")
        if len(candidate) == len(encoded):
            encoded = candidate
            break
    payload_start = _align(_PRELUDE.size + len(encoded))

    body = bytearray(offset - _PRELUDE.size)
    body[: len(encoded)] = encoded
    for section, payload in zip(sections, payloads):
        start = int(section["offset"]) - _PRELUDE.size
        body[start : start + len(payload)] = payload
    digest = hashlib.sha256(bytes(body)).digest()
    blob = _PRELUDE.pack(BINFMT_MAGIC, BINFMT_VERSION, len(encoded), digest) + bytes(
        body
    )
    # Chaos hook: a fault plan may corrupt or truncate the bytes here,
    # simulating the torn write the verification layer must catch.
    blob = fault_point("registry.sidecar.bytes", data=blob)
    handle, temp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-sidecar-")
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(blob)
            stream.flush()
            os.fsync(stream.fileno())
        fault_point("registry.sidecar.replace")
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)
    assert payload_start == _align(_PRELUDE.size + len(encoded))
    return digest.hex()


def _corrupt(path: Path, reason: str) -> ArtifactCorruptError:
    return ArtifactCorruptError(
        f"compiled binary artifact {path} is damaged: {reason} — "
        "refusing to serve a corrupt or tampered model"
    )


def _header_int(meta: dict, field: str, path: Path) -> int:
    value = meta.get(field)
    if not isinstance(value, int) or isinstance(value, bool):
        raise _corrupt(path, f"header field {field!r} is {value!r}, not an integer")
    if not 0 <= value <= _MAX_DIM:
        raise _corrupt(path, f"header declares absurd {field}={value}")
    return value


class MappedArtifact:
    """A ``compiled.bin`` sidecar mapped into memory, sections as views.

    Build with :func:`map_artifact`.  Holds the ``mmap`` open for as
    long as any section view is alive (numpy keeps the buffer
    referenced through ``.base``, so dropping the ``MappedArtifact``
    itself is safe); :meth:`close` releases the mapping eagerly and
    refuses (``BufferError``) while views are still exported.

    Attributes
    ----------
    path:
        Where the sidecar was mapped from.
    meta:
        The parsed JSON header.
    content_hash:
        Hex SHA-256 digest stored in the prelude.
    """

    def __init__(
        self,
        path: Path,
        buffer: mmap.mmap,
        meta: dict,
        sections: dict[str, np.ndarray],
        content_hash: str,
    ) -> None:
        self.path = path
        self.meta = meta
        self.content_hash = content_hash
        self._buffer = buffer
        self._sections = sections

    # ------------------------------------------------------------------
    @property
    def buffer(self) -> mmap.mmap:
        """The raw mapping (read-only); useful for shares-memory checks."""
        return self._buffer

    @property
    def model(self) -> str:
        """Model name recorded at publish time."""
        return str(self.meta["model"])

    @property
    def version(self) -> int | None:
        """Registry version recorded at publish time."""
        return self.meta.get("version")  # type: ignore[return-value]

    @property
    def artifact_hash(self) -> str:
        """Content hash of the JSON artifact this sidecar was compiled from."""
        return str(self.meta["artifact_hash"])

    @property
    def n_left(self) -> int:
        """Left vocabulary size."""
        return int(self.meta["n_left"])  # validated at map time

    @property
    def n_right(self) -> int:
        """Right vocabulary size."""
        return int(self.meta["n_right"])

    def schema(self, side: Side):
        """The :class:`~repro.data.schema.ViewSchema` of one view, or ``None``.

        Parsed lazily from the header's optional ``"schema"`` block;
        sidecars written before the block existed simply return ``None``.
        """
        from repro.data.schema import ViewSchema

        block = self.meta.get("schema")
        if not isinstance(block, dict):
            return None
        payload = block.get("left" if side is Side.LEFT else "right")
        if payload is None:
            return None
        return ViewSchema.from_payload(payload)

    def section(self, name: str) -> np.ndarray:
        """One named section as a read-only zero-copy view."""
        try:
            return self._sections[name]
        except KeyError:
            raise ArtifactError(
                f"compiled binary artifact {self.path} has no section {name!r} "
                f"(have {sorted(self._sections)})"
            ) from None

    def direction_sections(self, target: Side) -> tuple[np.ndarray, np.ndarray]:
        """``(ant_words, cons_words)`` views for one prediction direction."""
        prefix = "R" if target is Side.RIGHT else "L"
        return (
            self.section(f"{prefix}.ant_words"),
            self.section(f"{prefix}.cons_words"),
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the mapping (raises ``BufferError`` while views live)."""
        self._sections = {}
        self._buffer.close()

    def __enter__(self) -> "MappedArtifact":
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            self.close()
        except BufferError:  # a caller kept a view alive; GC will finish
            pass

    def __repr__(self) -> str:
        return (
            f"MappedArtifact({self.model!r} v{self.version}, "
            f"{self.n_left}x{self.n_right} items, "
            f"{len(self._sections)} sections)"
        )


def map_artifact(path: str | Path, verify: bool = True) -> MappedArtifact:
    """``mmap`` a sidecar written by :func:`write_compiled`.

    With ``verify`` (the default) the stored SHA-256 is recomputed over
    everything past the prelude, so any flipped bit — header, padding
    or payload — raises
    :class:`~repro.serve.artifact.ArtifactCorruptError`; structural
    damage (bad magic, short file, absurd or inconsistent section
    table) is rejected either way.  An intact file of a *newer* binary
    format raises plain :class:`~repro.serve.artifact.ArtifactError`.

    The returned views are read-only and zero-copy: the OS pages the
    file in on demand and every process mapping the same file shares
    one physical copy.
    """
    path = Path(path)
    try:
        with open(path, "rb") as stream:
            try:
                buffer = mmap.mmap(stream.fileno(), 0, access=mmap.ACCESS_READ)
            except ValueError as error:  # zero-length file
                raise _corrupt(path, f"cannot map: {error}") from error
    except FileNotFoundError as error:
        raise ArtifactError(f"cannot read compiled artifact {path}: {error}") from error
    except OSError as error:
        raise ArtifactCorruptError(
            f"cannot read compiled artifact {path}: {error}"
        ) from error
    try:
        return _parse_mapping(path, buffer, verify)
    except BaseException:
        buffer.close()
        raise


def _parse_mapping(path: Path, buffer: mmap.mmap, verify: bool) -> MappedArtifact:
    size = len(buffer)
    if size < _PRELUDE.size:
        raise _corrupt(path, f"only {size} bytes, prelude needs {_PRELUDE.size}")
    magic, version, header_len, digest = _PRELUDE.unpack(buffer[: _PRELUDE.size])
    if magic != BINFMT_MAGIC:
        raise _corrupt(path, f"bad magic {magic!r}")
    if version != BINFMT_VERSION:
        raise ArtifactError(
            f"compiled binary artifact {path} uses format version {version}; "
            f"this library reads version {BINFMT_VERSION}"
        )
    if size - _PRELUDE.size < header_len:
        raise _corrupt(
            path,
            f"header declares {header_len} bytes, {size - _PRELUDE.size} present",
        )
    try:
        meta = json.loads(buffer[_PRELUDE.size : _PRELUDE.size + header_len])
    except ValueError as error:
        raise _corrupt(path, f"header is not valid JSON ({error})") from error
    if not isinstance(meta, dict):
        raise _corrupt(path, "header is not a JSON object")
    n_left = _header_int(meta, "n_left", path)
    n_right = _header_int(meta, "n_right", path)
    payload_nbytes = _header_int(meta, "payload_nbytes", path)
    payload_start = _align(_PRELUDE.size + header_len)
    expected_size = payload_start + payload_nbytes
    if size != expected_size:
        raise _corrupt(
            path,
            f"file holds {size} bytes, header declares {expected_size} "
            f"({'truncated tail' if size < expected_size else 'trailing bytes'})",
        )
    if verify:
        recomputed = hashlib.sha256(memoryview(buffer)[_PRELUDE.size :]).digest()
        if recomputed != digest:
            raise _corrupt(
                path,
                f"content hash mismatch: stored {digest.hex()!r}, "
                f"recomputed {recomputed.hex()!r}",
            )
    raw_sections = meta.get("sections")
    if not isinstance(raw_sections, list):
        raise _corrupt(path, "header section table is missing")
    sections: dict[str, np.ndarray] = {}
    for entry in raw_sections:
        if not isinstance(entry, dict):
            raise _corrupt(path, "section table entry is not an object")
        name = entry.get("name")
        dtype = _DTYPES.get(entry.get("dtype"))  # type: ignore[arg-type]
        shape = entry.get("shape")
        if (
            not isinstance(name, str)
            or dtype is None
            or not isinstance(shape, list)
            or not all(
                isinstance(dim, int) and not isinstance(dim, bool) and 0 <= dim <= _MAX_DIM
                for dim in shape
            )
        ):
            raise _corrupt(path, f"malformed section table entry {entry!r}")
        offset = _header_int(entry, "offset", path)
        nbytes = _header_int(entry, "nbytes", path)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if count * np.dtype(dtype).itemsize != nbytes:
            raise _corrupt(
                path, f"section {name!r} shape {shape} disagrees with nbytes {nbytes}"
            )
        if offset < payload_start or offset + nbytes > expected_size:
            raise _corrupt(
                path, f"section {name!r} spills outside the payload region"
            )
        view = np.frombuffer(buffer, dtype=dtype, count=count, offset=offset)
        sections[name] = view.reshape(shape)
    _check_model_sections(path, sections, n_left, n_right)
    return MappedArtifact(path, buffer, meta, sections, digest.hex())


def _check_model_sections(
    path: Path, sections: dict[str, np.ndarray], n_left: int, n_right: int
) -> None:
    """Cross-check the model sections against the declared vocabularies."""
    for prefix, n_source, n_target in (("R", n_left, n_right), ("L", n_right, n_left)):
        try:
            ant = sections[f"{prefix}.ant_words"]
            cons = sections[f"{prefix}.cons_words"]
            weights = sections[f"{prefix}.ant_weights"]
        except KeyError as error:
            raise _corrupt(path, f"model section {error} is missing") from None
        n_rules = ant.shape[0]
        if (
            ant.ndim != 2
            or cons.ndim != 2
            or weights.ndim != 1
            or cons.shape[0] != n_rules
            or weights.shape[0] != n_rules
            or ant.shape[1] != n_words_for(n_source)
            or cons.shape[1] != n_words_for(n_target)
        ):
            raise _corrupt(
                path,
                f"direction {prefix!r} sections have inconsistent shapes "
                f"(ant {ant.shape}, cons {cons.shape}, weights {weights.shape} "
                f"for {n_source}->{n_target} items)",
            )


def verify_sidecar(path: str | Path) -> str:
    """Fully verify a sidecar's integrity; returns its hex content hash.

    Raises :class:`~repro.serve.artifact.ArtifactCorruptError` (damaged
    bytes) or :class:`~repro.serve.artifact.ArtifactError` (intact but
    unusable) exactly like :func:`map_artifact`; used by the registry's
    ``latest``-pointer healing to never aim the pointer at a version
    whose binary sidecar would poison every worker that maps it.
    """
    with map_artifact(path, verify=True) as mapped:
        return mapped.content_hash
