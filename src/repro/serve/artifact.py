"""Versioned on-disk model artifacts.

A fitted :class:`~repro.core.table.TranslationTable` alone is not a
servable model: a prediction service also needs the vocabularies the
rule indices refer to, the fit configuration that produced the table,
and a way to detect corruption or tampering before answering traffic
with a damaged model.  :class:`ModelArtifact` bundles exactly that into
one schema-versioned JSON document:

* the table payload (:meth:`TranslationTable.to_payload`, itself
  schema-versioned),
* the left/right item-name vocabularies,
* free-form ``fit_params`` and ``metrics`` dicts (method, minsup,
  compression ratio, ...),
* the producing library version, and
* a SHA-256 **content hash** over the canonical payload (reusing
  :func:`repro.runtime.cache.content_key`) that :func:`load_artifact`
  verifies on every read.

Artifacts are plain JSON files — portable, inspectable, diffable — and
are what :class:`repro.serve.registry.ModelRegistry` versions and the
prediction server loads.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from pathlib import Path

from repro.core.table import TranslationTable
from repro.data.dataset import TwoViewDataset
from repro.data.schema import ViewSchema
from repro.resilience.faults import fault_point
from repro.runtime.cache import content_key

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "ArtifactCorruptError",
    "ArtifactError",
    "ModelArtifact",
    "load_artifact",
    "save_artifact",
]

#: Current schema version of the artifact JSON document.
ARTIFACT_SCHEMA_VERSION = 1


class ArtifactError(ValueError):
    """A model artifact is corrupt, mismatched or otherwise unusable."""


class ArtifactCorruptError(ArtifactError):
    """The artifact's *bytes* are damaged: torn write, bit rot, tampering.

    Distinct from other :class:`ArtifactError` causes (say an artifact
    written by a newer schema, which is perfectly intact) because the
    registry reacts differently: corrupt files are quarantined into
    ``_corrupt/``, schema mismatches are left alone.
    """


@dataclasses.dataclass(frozen=True)
class ModelArtifact:
    """A servable, self-describing snapshot of a fitted translation table.

    Attributes
    ----------
    name:
        Model name (the registry key, e.g. ``"car-select"``).
    table:
        The fitted rules.
    left_names, right_names:
        Item vocabularies; rule indices are columns into these.
    fit_params:
        How the table was fitted (method, minsup, seed, ...).
    metrics:
        Quality numbers recorded at fit time (compression ratio, ...).
    version:
        Registry version number; ``None`` until published.
    created_unix:
        Creation timestamp (seconds since the epoch).
    left_schema, right_schema:
        Optional :class:`~repro.data.schema.ViewSchema` item provenance
        (source columns, bin edges, units) captured from the fitted
        dataset.  When present, server responses can render predictions
        in original units; schema-less artifacts serialise exactly as
        before (the ``"schema"`` field is simply absent, so existing
        content hashes are unchanged and old readers ignore it).
    """

    name: str
    table: TranslationTable
    left_names: tuple[str, ...]
    right_names: tuple[str, ...]
    fit_params: dict = dataclasses.field(default_factory=dict)
    metrics: dict = dataclasses.field(default_factory=dict)
    version: int | None = None
    created_unix: float | None = None
    library_version: str | None = None
    left_schema: object = None
    right_schema: object = None

    # ------------------------------------------------------------------
    @classmethod
    def from_result(
        cls,
        name: str,
        dataset: TwoViewDataset,
        result,
        fit_params: dict | None = None,
    ) -> "ModelArtifact":
        """Build an artifact from a ``TranslatorResult`` and its dataset.

        ``result`` is any object with ``.table`` and ``.summary()`` (all
        TRANSLATOR fit results qualify); the summary row becomes the
        artifact's ``metrics``.
        """
        return cls(
            name=name,
            table=result.table,
            left_names=tuple(dataset.left_names),
            right_names=tuple(dataset.right_names),
            fit_params=dict(fit_params or {}),
            metrics=dict(result.summary()),
            created_unix=time.time(),
            left_schema=getattr(dataset, "left_schema", None),
            right_schema=getattr(dataset, "right_schema", None),
        )

    @property
    def n_left(self) -> int:
        """Left vocabulary size."""
        return len(self.left_names)

    @property
    def n_right(self) -> int:
        """Right vocabulary size."""
        return len(self.right_names)

    def with_version(self, version: int) -> "ModelArtifact":
        """Copy of the artifact stamped with a registry version."""
        return dataclasses.replace(self, version=version)

    # ------------------------------------------------------------------
    def payload(self) -> dict[str, object]:
        """Canonical JSON document, ``content_hash`` included."""
        from repro import __version__

        body: dict[str, object] = {
            "artifact_schema_version": ARTIFACT_SCHEMA_VERSION,
            "name": self.name,
            "version": self.version,
            "table": self.table.to_payload(),
            "vocab": {
                "left": list(self.left_names),
                "right": list(self.right_names),
            },
            "fit_params": self.fit_params,
            "metrics": self.metrics,
            "library_version": self.library_version or __version__,
            "created_unix": self.created_unix,
        }
        if self.left_schema is not None or self.right_schema is not None:
            body["schema"] = {
                "left": self.left_schema.to_payload() if self.left_schema else None,
                "right": self.right_schema.to_payload() if self.right_schema else None,
            }
        body["content_hash"] = content_key(body)
        return body

    @property
    def content_hash(self) -> str:
        """SHA-256 digest of the canonical payload (sans the hash field)."""
        return str(self.payload()["content_hash"])

    @classmethod
    def from_payload(cls, payload: dict, verify: bool = True) -> "ModelArtifact":
        """Rebuild an artifact from its JSON document.

        With ``verify`` (the default) the stored ``content_hash`` is
        recomputed over the rest of the document and any mismatch —
        truncation, bit rot, manual edits — raises :class:`ArtifactError`.
        """
        if not isinstance(payload, dict):
            raise ArtifactError(
                f"artifact payload must be a JSON object, got {type(payload).__name__}"
            )
        schema = payload.get("artifact_schema_version")
        if schema != ARTIFACT_SCHEMA_VERSION:
            raise ArtifactError(
                f"unsupported artifact_schema_version {schema!r} "
                f"(this library reads version {ARTIFACT_SCHEMA_VERSION})"
            )
        if verify:
            body = {
                key: value for key, value in payload.items() if key != "content_hash"
            }
            expected = content_key(body)
            stored = payload.get("content_hash")
            if stored != expected:
                raise ArtifactCorruptError(
                    f"artifact content hash mismatch: stored {stored!r}, "
                    f"recomputed {expected!r} — refusing to serve a "
                    "corrupt or tampered model"
                )
        try:
            vocab = payload["vocab"]
            schemas = payload.get("schema") or {}
            left_schema = (
                ViewSchema.from_payload(schemas["left"])
                if schemas.get("left") is not None
                else None
            )
            right_schema = (
                ViewSchema.from_payload(schemas["right"])
                if schemas.get("right") is not None
                else None
            )
            return cls(
                name=str(payload["name"]),
                table=TranslationTable.from_payload(payload["table"]),
                left_names=tuple(vocab["left"]),
                right_names=tuple(vocab["right"]),
                fit_params=dict(payload.get("fit_params") or {}),
                metrics=dict(payload.get("metrics") or {}),
                version=payload.get("version"),
                created_unix=payload.get("created_unix"),
                library_version=payload.get("library_version"),
                left_schema=left_schema,
                right_schema=right_schema,
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ArtifactError(f"malformed artifact payload: {error}") from error


def save_artifact(artifact: ModelArtifact, path: str | Path) -> str:
    """Write ``artifact`` to ``path`` as JSON; returns its content hash.

    The write is crash-safe against the *machine*, not just the
    process: the document goes to a temp file in the target directory,
    is flushed and **fsynced**, then ``os.replace``\\ d over ``path``
    (followed by a best-effort directory fsync).  A power loss at any
    instant leaves either the old file or the complete new one — never
    a torn artifact a ``LATEST`` pointer could be aimed at.
    """
    path = Path(path)
    payload = artifact.payload()
    encoded = (
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    ).encode("utf-8")
    # Chaos hook: a fault plan may corrupt or truncate the bytes here,
    # simulating the torn write this function's fsync discipline is
    # designed to confine (tests/test_resilience.py).
    encoded = fault_point("registry.artifact.bytes", data=encoded)
    handle, temp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-artifact-")
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(encoded)
            stream.flush()
            os.fsync(stream.fileno())
        fault_point("registry.artifact.replace")
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)
    return str(payload["content_hash"])


def _fsync_directory(directory: Path) -> None:
    """Best-effort directory fsync: make the rename itself durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir-fsync
        pass
    finally:
        os.close(fd)


def load_artifact(path: str | Path, verify: bool = True) -> ModelArtifact:
    """Read an artifact written by :func:`save_artifact`.

    Raises :class:`ArtifactCorruptError` on unreadable JSON or (with
    ``verify``) a content-hash mismatch, and plain
    :class:`ArtifactError` for intact-but-unusable documents (unknown
    schema version, missing fields).
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError as error:
        raise ArtifactError(f"cannot read artifact {path}: {error}") from error
    except (OSError, ValueError) as error:
        raise ArtifactCorruptError(
            f"cannot read artifact {path}: {error}"
        ) from error
    return ModelArtifact.from_payload(payload, verify=verify)
