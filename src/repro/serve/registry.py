"""Directory-backed model registry.

The registry organises :class:`~repro.serve.artifact.ModelArtifact`
files into *named models* with *immutable numbered versions* and a
mutable ``latest`` pointer — the minimum structure a prediction service
needs to roll models forward (publish a new version, flip the pointer)
and back (point ``latest`` at an older version) without ever rewriting
a served file.  Layout::

    <root>/
        <model-name>/
            v0001/artifact.json
            v0002/artifact.json
            LATEST            # text file holding e.g. "2"

Publishing writes the artifact under the next free version directory
and atomically updates ``LATEST`` (temp file + ``os.replace``, the same
discipline as :class:`repro.runtime.cache.ResultCache`).  Version
directories are never overwritten: re-publishing produces a new
version, and attempting to force a taken version raises.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import time
from pathlib import Path

from repro.resilience.faults import fault_point
from repro.serve.artifact import (
    ArtifactCorruptError,
    ArtifactError,
    ModelArtifact,
    load_artifact,
    save_artifact,
)
from repro.serve.binfmt import SIDECAR_NAME, verify_sidecar, write_compiled

__all__ = ["ModelRegistry"]

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_VERSION_DIR = re.compile(r"^v(\d{4,})$")

#: Directory (inside a model's directory) holding quarantined versions.
_CORRUPT_DIR = "_corrupt"

#: How many times a ``LATEST`` pointer read is retried before the
#: registry concludes the pointer is genuinely missing or damaged —
#: a hard cap, so a persistently torn pointer can never spin a reader.
_LATEST_READ_ATTEMPTS = 5


def _version_dirname(version: int) -> str:
    return f"v{version:04d}"


class ModelRegistry:
    """Named, versioned storage for model artifacts under one directory.

    Args:
        root: Registry root directory; created lazily on first publish.

    Example::

        >>> import tempfile
        >>> from repro import TranslationRule, TranslationTable
        >>> from repro.serve import ModelArtifact, ModelRegistry
        >>> registry = ModelRegistry(tempfile.mkdtemp())
        >>> artifact = ModelArtifact(
        ...     "demo", TranslationTable([TranslationRule((0,), (0,), "->")]),
        ...     ("a",), ("x",))
        >>> registry.publish(artifact).version
        1
        >>> registry.publish(artifact).version
        2
        >>> registry.latest_version("demo")
        2
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def model_dir(self, name: str) -> Path:
        """Directory of one named model (may not exist yet)."""
        if not _NAME_PATTERN.match(name):
            raise ValueError(
                f"invalid model name {name!r}: use letters, digits, '.', '_', '-'"
            )
        return self.root / name

    def artifact_path(self, name: str, version: int) -> Path:
        """Path of one version's ``artifact.json``."""
        return self.model_dir(name) / _version_dirname(version) / "artifact.json"

    def sidecar_path(self, name: str, version: int) -> Path:
        """Path of one version's binary ``compiled.bin`` sidecar.

        The sidecar lives *inside* the version directory, so quarantine
        (a whole-directory rename) always moves the JSON artifact and
        its compiled twin together — a quarantined version can never
        leave a live sidecar behind for a worker to map.
        """
        return self.model_dir(name) / _version_dirname(version) / SIDECAR_NAME

    # ------------------------------------------------------------------
    # Listing / resolution
    # ------------------------------------------------------------------
    def models(self) -> list[str]:
        """Sorted names of every model with at least one version.

        Stray directories that are not valid model names (``.git``, a
        dot-file dropped by a sync tool, ...) are ignored rather than
        failing the whole listing.
        """
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir()
            and _NAME_PATTERN.match(entry.name)
            and self.versions(entry.name)
        )

    def versions(self, name: str) -> list[int]:
        """Sorted published version numbers of one model."""
        directory = self.model_dir(name)
        if not directory.is_dir():
            return []
        found = []
        for entry in directory.iterdir():
            match = _VERSION_DIR.match(entry.name)
            if match and (entry / "artifact.json").is_file():
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_version(self, name: str) -> int:
        """Resolve the ``latest`` pointer of one model.

        Tolerates a concurrent publish racing the read: a transiently
        missing pointer (some platforms expose a brief gap while
        ``os.replace`` swaps the temp file in) is retried — at most
        :data:`_LATEST_READ_ATTEMPTS` times, never unboundedly — and a
        pointer naming a version newer than the initial directory scan
        triggers a re-scan instead of being dismissed as damage.

        A pointer that is *still* missing after the retries means it was
        never written (``publish(set_latest=False)``), so the highest
        published version is returned.  A pointer that persistently
        holds garbage, or names a version that does not exist, is
        corruption — pointers are written atomically, so no race
        explains it — and raises a clear
        :class:`~repro.serve.artifact.ArtifactError` rather than
        silently serving some other version (the pointer might have
        been an intentional rollback).  Raises ``KeyError`` for a model
        with no versions at all.
        """
        versions = self.versions(name)
        if not versions:
            raise KeyError(f"no published versions of model {name!r}")
        pointer = self.model_dir(name) / "LATEST"
        candidate = None
        failure: str | None = None
        for __ in range(_LATEST_READ_ATTEMPTS):
            # Retry immediately (no sleep: this also runs on the
            # server's event loop): the os.replace gap is shorter than
            # a read attempt.
            try:
                text = pointer.read_text(encoding="utf-8")
            except FileNotFoundError:
                failure = None
                continue
            except UnicodeDecodeError:
                # Flipped bits can leave bytes that aren't text at all —
                # damage, same as a non-numeric pointer.
                failure = "holds undecodable bytes, not a version number"
                continue
            except OSError as error:
                failure = f"unreadable ({error})"
                continue
            try:
                candidate = int(text.strip())
            except ValueError:
                failure = f"holds {text.strip()!r}, not a version number"
                continue
            break
        else:
            if failure is None:  # never written (or publisher died mid-swap)
                return versions[-1]
            raise ArtifactError(
                f"LATEST pointer of model {name!r} is damaged after "
                f"{_LATEST_READ_ATTEMPTS} read attempts: {failure}"
            )
        if candidate in versions:
            return candidate
        # A publisher may have added the pointed-at version after our
        # directory scan — trust the pointer if a re-scan confirms it.
        versions = self.versions(name) or versions
        if candidate in versions:
            return candidate
        raise ArtifactError(
            f"LATEST pointer of model {name!r} names version {candidate}, "
            f"which is not published (have {versions})"
        )

    def resolve(self, name: str, version: int | str | None = None) -> int:
        """Normalise a version spec (``None``/``"latest"``/number) to an int."""
        if version is None or version == "latest":
            return self.latest_version(name)
        number = int(version)
        if number not in self.versions(name):
            raise KeyError(f"model {name!r} has no version {number}")
        return number

    # ------------------------------------------------------------------
    # Publish / load
    # ------------------------------------------------------------------
    def publish(
        self,
        artifact: ModelArtifact,
        set_latest: bool = True,
        sidecar: bool = True,
    ) -> ModelArtifact:
        """Store ``artifact`` as the next version of ``artifact.name``.

        Returns the stamped artifact (``.version`` filled in).  Version
        directories are immutable — a concurrent publisher racing for
        the same number loses with ``FileExistsError`` and should retry.

        With ``sidecar`` (the default) the version also gets a binary
        ``compiled.bin`` twin (:func:`repro.serve.binfmt.write_compiled`)
        that workers ``mmap`` instead of re-parsing the JSON; both files
        land before ``LATEST`` moves, so the pointer never exposes a
        version whose sidecar is still being written.
        """
        versions = self.versions(artifact.name)
        version = (versions[-1] + 1) if versions else 1
        stamped = artifact.with_version(version)
        directory = self.model_dir(artifact.name) / _version_dirname(version)
        directory.mkdir(parents=True, exist_ok=False)
        save_artifact(stamped, directory / "artifact.json")
        if sidecar:
            write_compiled(stamped, directory / SIDECAR_NAME)
        # Chaos hook: a crash here leaves a fully published version that
        # LATEST does not point at yet — readers keep serving the
        # previous version, which is exactly the intended failure mode.
        fault_point("registry.publish.before_latest")
        if set_latest:
            self.set_latest(artifact.name, version)
        return stamped

    def set_latest(self, name: str, version: int) -> None:
        """Atomically point ``latest`` at a published ``version``.

        The pointer temp file is flushed and **fsynced** before the
        ``os.replace`` swap: without the fsync the rename can reach
        disk before the pointer's *contents* do, and a machine crash
        would then publish a pointer to garbage — atomic w.r.t. a
        process crash but not a power loss.
        """
        if version not in self.versions(name):
            raise KeyError(f"model {name!r} has no version {version}")
        directory = self.model_dir(name)
        handle, temp_name = tempfile.mkstemp(dir=directory, prefix=".tmp-LATEST-")
        try:
            data = fault_point(
                "registry.latest.bytes", data=f"{version}\n".encode("ascii")
            )
            with os.fdopen(handle, "wb") as stream:
                stream.write(data)
                stream.flush()
                os.fsync(stream.fileno())
            fault_point("registry.latest.replace")
            os.replace(temp_name, directory / "LATEST")
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def load(
        self, name: str, version: int | str | None = None, verify: bool = True
    ) -> ModelArtifact:
        """Load one model version (default: ``latest``), hash-verified.

        Raises ``KeyError`` for unknown names/versions and
        :class:`~repro.serve.artifact.ArtifactError` for corrupt files.
        A version whose *bytes* are damaged (torn write, bit rot — a
        :class:`~repro.serve.artifact.ArtifactCorruptError`) is
        **quarantined** into ``<model>/_corrupt/`` as a side effect, so
        one bad file costs one failed load instead of poisoning every
        subsequent ``latest`` resolution and :meth:`describe` row; if
        ``LATEST`` pointed at it, the pointer is healed back to the
        newest surviving version.
        """
        number = self.resolve(name, version)
        try:
            artifact = load_artifact(self.artifact_path(name, number), verify=verify)
        except ArtifactCorruptError as error:
            quarantined_to = self.quarantine(name, number)
            raise ArtifactCorruptError(
                f"{error} [version {number} of model {name!r} quarantined "
                f"to {quarantined_to}]"
            ) from error
        if artifact.name != name:
            raise ArtifactError(
                f"artifact at {self.artifact_path(name, number)} claims to be "
                f"model {artifact.name!r}, expected {name!r}"
            )
        return artifact

    def quarantine(self, name: str, version: int) -> Path:
        """Move a damaged version out of the serving tree.

        The version directory — the JSON artifact *and* its binary
        sidecar travel together, the sidecar lives inside it — is
        renamed into ``<model>/_corrupt/`` (timestamped, so repeated
        incidents never collide) where :meth:`versions` no longer sees
        it; the evidence is preserved for a post-mortem without
        breaking the registry.  A ``LATEST`` pointer naming the
        quarantined version is healed to the newest surviving version
        whose sidecar (if present) passes hash verification — survivors
        that fail it are quarantined in the same sweep, so the pointer
        never lands on a version that would poison every worker mapping
        it — or removed when none survive.  Returns the quarantine path.
        """
        destination = self._move_to_corrupt(name, version)
        pointer = self.model_dir(name) / "LATEST"
        try:
            pointed = int(pointer.read_text(encoding="utf-8").strip())
        except (OSError, ValueError):
            pointed = None
        if pointed == version:
            self._heal_latest(name)
        return destination

    def _move_to_corrupt(self, name: str, version: int) -> Path:
        """Rename one version directory into ``_corrupt/`` (timestamped)."""
        directory = self.model_dir(name) / _version_dirname(version)
        corrupt_root = self.model_dir(name) / _CORRUPT_DIR
        corrupt_root.mkdir(parents=True, exist_ok=True)
        destination = (
            corrupt_root / f"{_version_dirname(version)}-{int(time.time() * 1000)}"
        )
        if directory.exists():
            os.replace(directory, destination)
        return destination

    def _heal_latest(self, name: str) -> None:
        """Re-point ``LATEST`` at the newest *fully intact* survivor.

        Candidates are taken newest-first; one whose binary sidecar
        exists but fails verification is itself quarantined and the
        scan continues — a versions-only loop, so it terminates.  With
        no intact survivor left the pointer is removed.
        """
        pointer = self.model_dir(name) / "LATEST"
        while True:
            survivors = self.versions(name)
            if not survivors:
                try:
                    pointer.unlink()
                except OSError:  # pragma: no cover - raced unlink
                    pass
                return
            candidate = survivors[-1]
            sidecar = self.sidecar_path(name, candidate)
            if sidecar.exists():
                try:
                    verify_sidecar(sidecar)
                except ArtifactError:
                    self._move_to_corrupt(name, candidate)
                    continue
            self.set_latest(name, candidate)
            return

    def quarantined(self, name: str) -> list[str]:
        """Quarantine directory entries of one model (newest last)."""
        corrupt_root = self.model_dir(name) / _CORRUPT_DIR
        if not corrupt_root.is_dir():
            return []
        return sorted(entry.name for entry in corrupt_root.iterdir())

    def describe(self) -> list[dict[str, object]]:
        """One summary row per model (for ``/models`` and the CLI).

        Reads each latest artifact's JSON once and reports its *stored*
        content hash — no verification or re-hashing, so polling
        ``/models`` stays cheap; corruption is still caught on
        :meth:`load` before a model answers traffic.
        """
        rows = []
        for name in self.models():
            versions = self.versions(name)
            row: dict[str, object] = {"name": name, "versions": versions}
            quarantined = self.quarantined(name)
            if quarantined:
                row["quarantined"] = len(quarantined)
            try:
                latest = self.latest_version(name)
            except ArtifactError as error:
                # One damaged pointer must not take the whole listing
                # (and the /models endpoint) down with it.
                row["error"] = str(error)
                rows.append(row)
                continue
            row["latest"] = latest
            try:
                payload = json.loads(
                    self.artifact_path(name, latest).read_text(encoding="utf-8")
                )
                table = payload.get("table") or {}
                vocab = payload.get("vocab") or {}
                row.update(
                    n_rules=len(
                        table["rules"] if isinstance(table, dict) else table
                    ),
                    n_left=len(vocab.get("left") or ()),
                    n_right=len(vocab.get("right") or ()),
                    content_hash=payload.get("content_hash"),
                )
            except (OSError, ValueError, KeyError, TypeError) as error:
                row["error"] = f"unreadable artifact: {error}"
            rows.append(row)
        return rows

    def __repr__(self) -> str:
        return f"ModelRegistry(root={str(self.root)!r}, models={self.models()})"
