"""Replica router: the horizontal front tier over N prediction workers.

One :class:`~repro.serve.server.PredictionServer` is a single asyncio
process; the ROADMAP's "heavy traffic" story needs N of them behind one
address.  :class:`ReplicaRouter` is that address — a thin asyncio
HTTP/1.1 front that owns a pool of :class:`Replica` workers (in-process
servers for tests, spawned OS processes for deployments; both just
``host:port`` to the router) and gives them the collective behaviours a
single worker cannot have:

* **Least-loaded fan-out** — ``POST /predict`` (JSON *and* packed
  bodies: the body is forwarded verbatim, the router never parses it)
  goes to the admitted replica with the fewest in-flight requests.
* **Ejection and re-admission** — each replica sits behind its own
  :class:`~repro.resilience.policy.CircuitBreaker`: connection
  failures eject it (breaker opens), the breaker's reset timeout is
  the capped backoff, and a successful half-open probe (from the
  background health loop or a live request) re-admits it.
* **Rerouting** — a request that hits a dead or draining replica is
  transparently retried on another; the client sees one clean
  response or an honest 503, never a torn payload (responses with a
  body shorter than their ``Content-Length`` are treated as transport
  failures and rerouted).
* **Drain-and-swap rollout** — :meth:`ReplicaRouter.rolling_swap`
  replaces the pool one replica at a time: spawn successor, probe it
  healthy, admit it, stop routing to the predecessor, wait out its
  in-flight work, stop it.  Combined with the registry's atomic
  ``latest`` pointer (workers resolve it per request, bounded by
  their ``latest_ttl_seconds``) this rolls a new model or a new
  binary out with zero dropped requests;
  :meth:`ReplicaRouter.check_rollout` triggers the swap automatically
  when the registry's ``latest`` pointers move.

Endpoints::

    GET  /healthz   router liveness + pool size
    GET  /readyz    ready / degraded (someone ejected) / 503 (nobody)
    GET  /statz     per-model ModelStats summed across replicas,
                    plus per-replica health and router counters
    GET  /metrics   Prometheus text: router series + every admitted
                    replica's scrape relabelled with replica="wN"
    GET  /models    forwarded to one admitted replica
    POST /predict   forwarded least-loaded, rerouted on failure

Chaos coverage lives in ``tests/test_router.py``: a replica killed
mid-batch (via :mod:`repro.resilience.faults`) loses its in-flight
connections, the router reroutes them and ``/readyz`` walks through
``degraded`` and back as the breaker re-admits the restarted worker.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from collections.abc import Awaitable, Callable

from repro import obs as _obs
from repro.resilience.policy import CircuitBreaker, Deadline
from repro.serve.registry import ModelRegistry
from repro.serve.server import (
    PredictionServer,
    PredictionService,
    _RequestError,
    http_response_bytes,
    read_http_request,
)

__all__ = [
    "Replica",
    "ReplicaRouter",
    "local_replica_factory",
    "process_replica_factory",
]

logger = logging.getLogger(__name__)

#: Transport-level failures that mean "this replica did not answer" —
#: rerouted to another replica, never surfaced to the client.
_TRANSPORT_ERRORS = (
    ConnectionError,
    asyncio.IncompleteReadError,
    asyncio.TimeoutError,
    OSError,
)

#: Paths with their own router latency series; everything else shares
#: one ``other`` series so path spam cannot mint unbounded series.
_TIMED_ENDPOINTS = ("/healthz", "/readyz", "/statz", "/metrics", "/models", "/predict")


class Replica:
    """One prediction worker as the router sees it.

    The router does not care how the worker runs — in-process asyncio
    server, forked process, remote box — only that it answers HTTP on
    ``host:port`` and can be stopped via the optional async ``stop``
    callback (used by drain-and-swap).  Health is tracked by a
    dedicated :class:`~repro.resilience.policy.CircuitBreaker`:

    ========== =====================================================
    state      meaning
    ========== =====================================================
    healthy    breaker closed; takes traffic
    ejected    breaker open; skipped until the reset timeout passes
    probation  breaker half-open; one probe request may re-admit it
    draining   being swapped out; finishes in-flight work only
    ========== =====================================================
    """

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        stop: Callable[[], Awaitable[object]] | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.stop = stop
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=2, reset_timeout=0.5
        )
        self.inflight = 0
        self.requests = 0
        self.errors = 0
        self.draining = False

    @property
    def state(self) -> str:
        """``healthy`` / ``ejected`` / ``probation`` / ``draining``."""
        if self.draining:
            return "draining"
        return {
            CircuitBreaker.CLOSED: "healthy",
            CircuitBreaker.OPEN: "ejected",
            CircuitBreaker.HALF_OPEN: "probation",
        }[self.breaker.state]

    def describe(self) -> dict:
        """One ``/statz`` row for this replica."""
        return {
            "name": self.name,
            "address": f"{self.host}:{self.port}",
            "state": self.state,
            "inflight": self.inflight,
            "requests": self.requests,
            "errors": self.errors,
        }

    def __repr__(self) -> str:
        return f"Replica({self.name!r}, {self.host}:{self.port}, {self.state})"


#: Builds (and starts) one worker; the router passes the replica name.
ReplicaFactory = Callable[[str], Awaitable[Replica]]


class ReplicaRouter:
    """Fan ``/predict`` traffic across a pool of worker replicas.

    Args:
        factory: Async callable building one started worker per name —
            :func:`local_replica_factory` (same process; tests) or
            :func:`process_replica_factory` (spawned processes; the
            ``serve --workers N`` CLI).
        workers: Pool size to spawn on :meth:`start`.
        registry: Registry the workers serve from; needed only for
            :meth:`check_rollout` (watching ``latest`` pointers).
        host, port: Router bind address (``port=0`` picks freely).
        probe_interval: Seconds between background health sweeps
            (``0`` disables the loop; probes can be driven manually).
        request_timeout: Per-attempt budget for one replica to answer
            a forwarded request.
        read_timeout: Client-side budget for receiving a request.
        breaker_factory: Per-replica breaker recipe; the default
            ejects after 2 consecutive failures and begins probing
            for re-admission 0.5s later.
        metrics: The :class:`repro.obs.MetricsRegistry` backing the
            router's counters; ``GET /metrics`` serves it merged with
            every admitted replica's own scrape (each replica's series
            relabelled with ``replica="wN"``).
        tracer: Optional :class:`repro.obs.Tracer`; forwarded
            ``/predict`` requests then open a ``router.predict`` root
            span (or continue the client's ``X-Repro-Trace``) and
            propagate the header to the worker.
    """

    MAX_BODY_BYTES = PredictionServer.MAX_BODY_BYTES

    def __init__(
        self,
        factory: ReplicaFactory,
        workers: int = 2,
        registry: ModelRegistry | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        probe_interval: float = 0.5,
        request_timeout: float = 30.0,
        read_timeout: float = 30.0,
        breaker_factory: Callable[[], CircuitBreaker] | None = None,
        metrics: "_obs.MetricsRegistry | None" = None,
        tracer: "_obs.Tracer | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        self.factory = factory
        self.workers = workers
        self.registry = registry
        self.host = host
        self.port = port
        self.probe_interval = probe_interval
        self.request_timeout = request_timeout
        self.read_timeout = read_timeout
        self.breaker_factory = breaker_factory or (
            lambda: CircuitBreaker(failure_threshold=2, reset_timeout=0.5)
        )
        self.replicas: list[Replica] = []
        self.started_unix = time.time()
        self.metrics = metrics if metrics is not None else _obs.MetricsRegistry()
        self.tracer = tracer
        # Router-level counters surfaced via /statz; registry-backed so
        # the same numbers appear on /metrics (exposed to code and tests
        # as plain int attributes via the properties below).
        self._rerouted = self.metrics.counter(
            "repro_router_rerouted_total",
            "Requests retried on another replica after a failed attempt.",
        )
        self._rejected = self.metrics.counter(
            "repro_router_rejected_total",
            "Requests answered 503 because no replica was available.",
        )
        self._swaps = self.metrics.counter(
            "repro_router_swaps_total",
            "Completed rolling swaps of the replica pool.",
        )
        self.metrics.gauge(
            "repro_router_replicas", "Replicas currently in the pool."
        ).set_function(lambda: len(self.replicas))
        self.metrics.gauge(
            "repro_router_admitted",
            "Replicas currently eligible for traffic.",
        ).set_function(lambda: len(self.admitted()))
        self._request_seconds = self.metrics.histogram(
            "repro_router_request_seconds",
            "Wall-clock seconds per routed request, by endpoint.",
            labelnames=("endpoint",),
        )
        self._server: asyncio.AbstractServer | None = None
        self._inflight: set[asyncio.Task] = set()
        self._probe_task: asyncio.Task | None = None
        self._spawned = 0
        self._seen_latest: dict[str, int] = {}
        self._swap_lock = asyncio.Lock()
        self._draining = False

    # ------------------------------------------------------------------
    # Registry-backed counters (attribute API preserved)
    # ------------------------------------------------------------------
    @property
    def rerouted(self) -> int:
        """Requests retried on another replica after a failed attempt."""
        return int(self._rerouted.value)

    @rerouted.setter
    def rerouted(self, value: int) -> None:
        self._rerouted._set_total(int(value))

    @property
    def rejected(self) -> int:
        """Requests answered 503 because no replica was available."""
        return int(self._rejected.value)

    @rejected.setter
    def rejected(self, value: int) -> None:
        self._rejected._set_total(int(value))

    @property
    def swaps(self) -> int:
        """Completed rolling swaps of the replica pool."""
        return int(self._swaps.value)

    @swaps.setter
    def swaps(self, value: int) -> None:
        self._swaps._set_total(int(value))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _next_name(self) -> str:
        self._spawned += 1
        return f"w{self._spawned}"

    async def spawn_replica(self) -> Replica:
        """Build, admit and return one new worker via the factory."""
        replica = await self.factory(self._next_name())
        if replica.breaker is None:  # factory left health tracking to us
            replica.breaker = self.breaker_factory()
        self.replicas.append(replica)
        logger.info(
            "spawned replica %s at %s:%d",
            replica.name,
            replica.host,
            replica.port,
            extra={"replica": replica.name, "port": replica.port},
        )
        return replica

    async def start(self) -> None:
        """Spawn the worker pool and bind the router's own listener."""
        self._draining = False
        while len(self.replicas) < self.workers:
            await self.spawn_replica()
        if self.registry is not None:
            self._seen_latest = self._registry_latest()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.probe_interval > 0:
            self._probe_task = asyncio.ensure_future(self._probe_loop())

    async def stop(self, drain_timeout: float = 5.0) -> dict:
        """Drain the router, then stop every worker it owns."""
        self._draining = True
        if self._probe_task is not None:
            self._probe_task.cancel()
            try:
                await self._probe_task
            except asyncio.CancelledError:
                pass
            self._probe_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        deadline = Deadline(drain_timeout)
        while self._inflight and not deadline.expired():
            await asyncio.wait(
                set(self._inflight),
                timeout=deadline.remaining() or 0.001,
            )
        for task in list(self._inflight):
            task.cancel()
        if self._inflight:
            await asyncio.gather(*self._inflight, return_exceptions=True)
        stopped = 0
        for replica in list(self.replicas):
            if replica.stop is not None:
                try:
                    await replica.stop()
                except Exception:  # a dead worker is already "stopped"
                    pass
            stopped += 1
        self.replicas.clear()
        return {"stopped": stopped, "rerouted": self.rerouted}

    async def _serve_until_signalled(self) -> None:
        import signal

        await self.start()
        stop_requested = asyncio.Event()
        loop = asyncio.get_running_loop()
        registered = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_requested.set)
                registered.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # pragma: no cover - platform without signal support
        try:
            if registered:
                await stop_requested.wait()
                await self.stop()
            else:  # pragma: no cover - platform without signal support
                assert self._server is not None
                async with self._server:
                    await self._server.serve_forever()
        finally:
            for signum in registered:
                loop.remove_signal_handler(signum)

    def run(self) -> None:
        """Blocking entry point for ``repro-translator serve --workers N``."""
        try:
            asyncio.run(self._serve_until_signalled())
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass

    # ------------------------------------------------------------------
    # Replica selection + forwarding
    # ------------------------------------------------------------------
    def pick(self, exclude: set[Replica] | None = None) -> Replica | None:
        """Choose the replica for one request attempt, or ``None``.

        Healthy (breaker-closed) replicas win by least in-flight load;
        failing that, the first replica whose half-open breaker grants
        its probe slot gets the request as a live re-admission test.
        Draining and ejected replicas are never picked.
        """
        exclude = exclude or set()
        candidates = [
            r for r in self.replicas if r not in exclude and not r.draining
        ]
        healthy = [
            r for r in candidates if r.breaker.state == CircuitBreaker.CLOSED
        ]
        if healthy:
            return min(healthy, key=lambda r: r.inflight)
        for replica in candidates:
            if replica.breaker.allow():
                return replica
        return None

    async def forward(
        self,
        method: str,
        path: str,
        body: bytes,
        trace: "_obs.TraceContext | None" = None,
    ) -> tuple[int, bytes]:
        """Send one request to the pool; reroute until someone answers.

        Returns ``(status, response body bytes)``.  Transport failures
        (refused/reset connections, timeouts, short reads) and 503s
        from draining workers count against the replica's breaker and
        move the request to the next candidate; every replica
        exhausted yields an honest router-level 503.  With a tracer
        configured a ``router.predict`` span roots (or continues, when
        the client sent ``X-Repro-Trace``) the request's span tree and
        its context travels to the worker.
        """
        span = None
        if self.tracer is not None:
            span = self.tracer.span(
                f"router{path.replace('/', '.')}", parent=trace
            )
        try:
            return await self._forward_attempts(method, path, body, span)
        finally:
            if span is not None:
                span.finish()

    async def _forward_attempts(
        self, method: str, path: str, body: bytes, span
    ) -> tuple[int, bytes]:
        trace = span.context if span is not None else None
        tried: set[Replica] = set()
        first = True
        reroutes = 0
        while True:
            replica = self.pick(tried)
            if replica is None:
                self.rejected += 1
                if span is not None:
                    span.set_attribute("rejected", True)
                logger.warning(
                    "no replica available for %s %s after %d attempt(s)",
                    method,
                    path,
                    len(tried),
                    extra={"path": path, "attempts": len(tried)},
                )
                return 503, json.dumps(
                    {"error": "no replica available", "router": True}
                ).encode("utf-8")
            if not first:
                self.rerouted += 1
                reroutes += 1
            first = False
            replica.inflight += 1
            replica.requests += 1
            try:
                status, payload = await self._request_replica(
                    replica, method, path, body, trace=trace
                )
            except _TRANSPORT_ERRORS:
                replica.errors += 1
                replica.breaker.record_failure()
                tried.add(replica)
                continue
            finally:
                replica.inflight -= 1
            if status == 503:
                # The worker is alive but refusing (draining, breaker
                # of its own): not *this* replica's client's problem.
                replica.breaker.record_failure()
                tried.add(replica)
                continue
            replica.breaker.record_success()
            if span is not None:
                span.set_attribute("replica", replica.name)
                if reroutes:
                    span.set_attribute("reroutes", reroutes)
            return status, payload

    async def _request_replica(
        self,
        replica: Replica,
        method: str,
        path: str,
        body: bytes,
        trace: "_obs.TraceContext | None" = None,
    ) -> tuple[int, bytes]:
        """One HTTP exchange with one replica; raises on any tear."""
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(replica.host, replica.port),
            self.request_timeout,
        )
        try:
            trace_line = (
                f"{_obs.TRACE_HEADER}: {_obs.format_trace_header(trace)}\r\n"
                if trace is not None
                else ""
            )
            writer.write(
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {replica.host}\r\n"
                f"{trace_line}"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n".encode("ascii")
                + body
            )
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(-1), self.request_timeout)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if not raw:
            raise ConnectionError(f"replica {replica.name} sent no response")
        head, sep, payload = raw.partition(b"\r\n\r\n")
        if not sep:
            raise ConnectionError(f"replica {replica.name} sent torn headers")
        status_line = head.split(b"\r\n", 1)[0].decode("ascii", "replace")
        parts = status_line.split()
        try:
            status = int(parts[1])
        except (IndexError, ValueError):
            raise ConnectionError(
                f"replica {replica.name} sent bad status line {status_line!r}"
            )
        declared = None
        for line in head.split(b"\r\n")[1:]:
            header, _, value = line.partition(b":")
            if header.strip().lower() == b"content-length":
                try:
                    declared = int(value.strip())
                except ValueError:
                    raise ConnectionError(
                        f"replica {replica.name} sent bad Content-Length"
                    )
        if declared is not None and len(payload) != declared:
            # A reset mid-body: the bytes end early (or a duplicated
            # write runs long).  Either way the payload cannot be
            # trusted — reroute rather than relay a torn response.
            raise ConnectionError(
                f"replica {replica.name} sent {len(payload)} body bytes, "
                f"declared {declared}"
            )
        return status, payload

    # ------------------------------------------------------------------
    # Health probing
    # ------------------------------------------------------------------
    async def probe(self, replica: Replica) -> bool:
        """One health check; updates the breaker, returns the verdict.

        An **open** breaker is not probed — the breaker's reset timeout
        *is* the capped re-admission backoff, so a dead replica costs
        one connection attempt per cooldown, not one per sweep.
        """
        if replica.draining:
            return False
        state = replica.breaker.state
        if state == CircuitBreaker.OPEN:
            return False
        if state == CircuitBreaker.HALF_OPEN and not replica.breaker.allow():
            return False  # another probe already holds the slot
        try:
            status, __ = await self._request_replica(
                replica, "GET", "/healthz", b""
            )
        except _TRANSPORT_ERRORS:
            replica.breaker.record_failure()
            return False
        if status == 200:
            replica.breaker.record_success()
            return True
        replica.breaker.record_failure()
        return False

    async def probe_all(self) -> dict[str, bool]:
        """Sweep every replica once; returns ``{name: verdict}``."""
        results = {}
        for replica in list(self.replicas):
            results[replica.name] = await self.probe(replica)
        return results

    async def _probe_loop(self) -> None:
        while True:
            await asyncio.sleep(self.probe_interval)
            try:
                await self.probe_all()
                if self.registry is not None:
                    await self.check_rollout()
            except asyncio.CancelledError:
                raise
            except Exception:  # pragma: no cover - keep the loop alive
                pass

    # ------------------------------------------------------------------
    # Drain-and-swap rollout
    # ------------------------------------------------------------------
    def _registry_latest(self) -> dict[str, int]:
        assert self.registry is not None
        latest = {}
        for name in self.registry.models():
            try:
                latest[name] = self.registry.latest_version(name)
            except Exception:  # damaged pointer: not a rollout signal
                continue
        return latest

    async def check_rollout(self) -> bool:
        """Rolling-swap the pool iff a ``latest`` pointer moved.

        This is the registry-driven rollout: ``publish`` atomically
        flips ``LATEST``, the router notices on its next sweep and
        recycles the workers one at a time, so every replica re-maps
        the new version's sidecar with zero downtime.  Returns whether
        a swap ran.
        """
        if self.registry is None:
            return False
        current = self._registry_latest()
        if current == self._seen_latest:
            return False
        self._seen_latest = current
        await self.rolling_swap()
        return True

    async def rolling_swap(self, drain_timeout: float = 10.0) -> int:
        """Replace every replica, one at a time, without dropping work.

        For each incumbent: spawn a successor, require a passing health
        probe (a stillborn successor aborts the swap rather than
        shrinking the pool), admit it, mark the incumbent draining (the
        picker skips it; its in-flight requests finish), wait out the
        in-flight count, then stop it.  Returns replicas replaced.
        """
        async with self._swap_lock:
            swapped = 0
            for old in list(self.replicas):
                if old.draining:
                    continue
                successor = await self.factory(self._next_name())
                if not await self.probe(successor):
                    if successor.stop is not None:
                        try:
                            await successor.stop()
                        except Exception:
                            pass
                    raise RuntimeError(
                        f"rollout aborted: successor {successor.name} "
                        f"failed its health probe"
                    )
                self.replicas.append(successor)
                old.draining = True
                deadline = Deadline(drain_timeout)
                while old.inflight > 0 and not deadline.expired():
                    await asyncio.sleep(0.01)
                self.replicas.remove(old)
                if old.stop is not None:
                    try:
                        await old.stop()
                    except Exception:
                        pass
                swapped += 1
            self.swaps += 1
            return swapped

    # ------------------------------------------------------------------
    # Router endpoints
    # ------------------------------------------------------------------
    def admitted(self) -> list[Replica]:
        """Replicas currently eligible for traffic (closed or probing)."""
        return [
            r
            for r in self.replicas
            if not r.draining and r.breaker.state != CircuitBreaker.OPEN
        ]

    def healthz_payload(self) -> dict:
        """Router liveness for ``GET /healthz``."""
        return {
            "status": "ok",
            "role": "router",
            "replicas": len(self.replicas),
            "admitted": len(self.admitted()),
            "uptime_seconds": round(time.time() - self.started_unix, 3),
        }

    def readyz_payload(self) -> tuple[int, dict]:
        """Aggregate readiness: the pool's health, not one process's."""
        admitted = self.admitted()
        ejected = [r.name for r in self.replicas if r.state == "ejected"]
        if self._draining:
            status, code = "draining", 503
        elif not admitted:
            status, code = "unavailable", 503
        elif ejected:
            status, code = "degraded", 200
        else:
            status, code = "ready", 200
        return code, {
            "status": status,
            "replicas": {r.name: r.state for r in self.replicas},
            "ejected": ejected,
        }

    async def statz_payload(self) -> dict:
        """``GET /statz``: pool-wide serving stats.

        Per-model :class:`~repro.serve.server.ModelStats` counters are
        fetched from each admitted replica's ``/models`` endpoint and
        summed — the aggregate a dashboard wants, with the per-replica
        split alongside.  Unreachable replicas are reported, not fatal.
        """
        models: dict[str, dict[str, int]] = {}
        per_replica: list[dict] = []
        for replica in list(self.replicas):
            row = replica.describe()
            if replica in self.admitted():
                try:
                    __, payload = await self._request_replica(
                        replica, "GET", "/models", b""
                    )
                    document = json.loads(payload.decode("utf-8"))
                    row["models"] = {}
                    for entry in document.get("models", []):
                        stats = entry.get("stats") or {}
                        name = str(entry.get("name"))
                        row["models"][name] = stats
                        bucket = models.setdefault(name, {})
                        for key, value in stats.items():
                            if isinstance(value, (int, float)):
                                bucket[key] = bucket.get(key, 0) + value
                            else:
                                # Non-numeric stat values cannot be
                                # summed; surface them per replica
                                # instead of silently dropping them.
                                bucket.setdefault(
                                    "non_numeric", {}
                                ).setdefault(replica.name, {})[key] = value
                except (*_TRANSPORT_ERRORS, ValueError):
                    row["unreachable"] = True
            per_replica.append(row)
        return {
            "models": models,
            "replicas": per_replica,
            "router": {
                "rerouted": self.rerouted,
                "rejected": self.rejected,
                "swaps": self.swaps,
            },
        }

    async def metrics_text(self) -> str:
        """``GET /metrics``: router registry merged with replica scrapes.

        The router's own series come first, then each admitted
        replica's scrape with a ``replica="wN"`` label injected on every
        sample so per-worker series never collide.  A replica whose
        scrape is unreachable or malformed is skipped — the router's
        document must always be valid.
        """
        registries = [self.metrics]
        if all(_obs.REGISTRY is not r for r in registries):
            registries.append(_obs.REGISTRY)
        documents = [_obs.render_registries(registries)]
        for replica in list(self.replicas):
            if replica not in self.admitted():
                continue
            try:
                status, payload = await self._request_replica(
                    replica, "GET", "/metrics", b""
                )
                if status != 200:
                    continue
                documents.append(
                    _obs.inject_label(
                        payload.decode("utf-8"), "replica", replica.name
                    )
                )
            except (*_TRANSPORT_ERRORS, ValueError):
                continue
        return _obs.merge_expositions(documents)

    async def handle(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, bytes, str]:
        """Route one request; returns ``(status, body bytes, content type)``."""
        started = time.perf_counter()
        endpoint = path if path in _TIMED_ENDPOINTS else "other"
        try:
            return await self._handle_routed(method, path, body, headers)
        finally:
            self._request_seconds.labels(endpoint=endpoint).observe(
                time.perf_counter() - started
            )

    async def _handle_routed(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: dict[str, str] | None,
    ) -> tuple[int, bytes, str]:
        json_type = "application/json"
        if method == "GET" and path == "/healthz":
            payload = self.healthz_payload()
            return 200, json.dumps(payload).encode("utf-8"), json_type
        if method == "GET" and path == "/readyz":
            code, payload = self.readyz_payload()
            return code, json.dumps(payload).encode("utf-8"), json_type
        if method == "GET" and path == "/statz":
            payload = await self.statz_payload()
            return 200, json.dumps(payload).encode("utf-8"), json_type
        if method == "GET" and path == "/metrics":
            text = await self.metrics_text()
            return 200, text.encode("utf-8"), _obs.METRICS_CONTENT_TYPE
        if (method == "POST" and path == "/predict") or (
            method == "GET" and path == "/models"
        ):
            trace = None
            if headers:
                trace = _obs.parse_trace_header(
                    headers.get(_obs.TRACE_HEADER.lower())
                )
            status, payload_bytes = await self.forward(
                method, path, body, trace=trace
            )
            return status, payload_bytes, json_type
        return (
            404,
            json.dumps({"error": f"no route {method} {path}"}).encode("utf-8"),
            json_type,
        )

    # ------------------------------------------------------------------
    # Socket front (mirrors PredictionServer's shape)
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._inflight.add(task)
        content_type = "application/json"
        try:
            if self._draining:
                status, body = 503, json.dumps(
                    {"error": "router is draining"}
                ).encode("utf-8")
            else:
                try:
                    method, path, request_body, headers = await asyncio.wait_for(
                        read_http_request(reader, self.MAX_BODY_BYTES),
                        self.read_timeout,
                    )
                except asyncio.TimeoutError:
                    status, body = 408, json.dumps(
                        {"error": "request not received in time"}
                    ).encode("utf-8")
                except _RequestError as error:
                    status = error.status
                    body = json.dumps(error.payload).encode("utf-8")
                except (asyncio.IncompleteReadError, ConnectionError, ValueError):
                    status, body = 400, json.dumps(
                        {"error": "malformed HTTP request"}
                    ).encode("utf-8")
                else:
                    status, body, content_type = await self.handle(
                        method, path, request_body, headers
                    )
            writer.write(http_response_bytes(status, body, content_type))
            try:
                await writer.drain()
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except ConnectionError:  # pragma: no cover - client gone
                    pass
        finally:
            if task is not None:
                self._inflight.discard(task)


# ----------------------------------------------------------------------
# Replica factories
# ----------------------------------------------------------------------
def local_replica_factory(
    registry: ModelRegistry,
    host: str = "127.0.0.1",
    service_config: dict | None = None,
    server_config: dict | None = None,
) -> ReplicaFactory:
    """Replicas as in-process asyncio servers (tests, single-core boxes).

    Each call builds a fresh :class:`~repro.serve.server.PredictionService`
    + :class:`~repro.serve.server.PredictionServer` named after the
    replica (so chaos plans can target ``serve.w2.request``), starts it
    on a free port and wires graceful stop through.
    """

    async def factory(name: str) -> Replica:
        service = PredictionService(registry, **(service_config or {}))
        server = PredictionServer(
            service, host=host, port=0, name=name, **(server_config or {})
        )
        await server.start()

        async def stop() -> object:
            return await server.stop()

        replica = Replica(name, host, server.port, stop=stop)
        replica.server = server  # type: ignore[attr-defined]  # test access
        return replica

    return factory


def _process_replica_main(conn, registry_root: str, config: dict) -> None:
    """Worker-process entry point (top level for ``spawn`` pickling)."""
    import os

    registry = ModelRegistry(registry_root)
    name = config.get("name", "worker")
    obs_config = config.get("obs") or {}
    tracer = None
    if obs_config.get("trace_dir"):
        # One span file per worker: JSONL appends from separate
        # processes would interleave mid-record on a shared file.
        exporter = _obs.JsonlSpanExporter(
            os.path.join(obs_config["trace_dir"], f"spans-{name}.jsonl")
        )
        tracer = _obs.Tracer(exporter)
    if obs_config.get("instrument"):
        _obs.instrument(tracer=tracer)
    service = PredictionService(
        registry, tracer=tracer, **config.get("service", {})
    )
    server = PredictionServer(
        service,
        host=config.get("host", "127.0.0.1"),
        port=0,
        name=name,
        **config.get("server", {}),
    )

    async def main() -> None:
        await server.start()
        conn.send(server.port)
        conn.close()
        await server._serve_until_signalled()

    asyncio.run(main())


def process_replica_factory(
    registry_root: str,
    host: str = "127.0.0.1",
    service_config: dict | None = None,
    server_config: dict | None = None,
    spawn_timeout: float = 60.0,
    obs_config: dict | None = None,
) -> ReplicaFactory:
    """Replicas as spawned OS processes (the ``serve --workers N`` CLI).

    Workers use the ``spawn`` start method (no inherited event loops or
    locks), report their bound port back over a pipe, and stop
    gracefully on SIGTERM via the server's signal-drain path; a worker
    that ignores the drain is killed after a grace period.  Because
    every worker maps the same ``compiled.bin`` sidecar, N workers cost
    one page-cache copy of the model, not N heap copies.

    ``obs_config`` configures per-worker observability:
    ``{"instrument": True}`` installs the engine metric hooks in each
    worker (scraped through the router's ``/metrics``), and
    ``{"trace_dir": path}`` gives each worker a
    :class:`repro.obs.JsonlSpanExporter` at ``<path>/spans-<name>.jsonl``.
    """
    import multiprocessing

    context = multiprocessing.get_context("spawn")
    config_base = {
        "host": host,
        "service": dict(service_config or {}),
        "server": dict(server_config or {}),
        "obs": dict(obs_config or {}),
    }

    async def factory(name: str) -> Replica:
        parent_conn, child_conn = context.Pipe()
        process = context.Process(
            target=_process_replica_main,
            args=(child_conn, str(registry_root), {**config_base, "name": name}),
            daemon=True,
        )
        process.start()
        child_conn.close()

        def _receive_port() -> int:
            if not parent_conn.poll(spawn_timeout):
                raise TimeoutError(
                    f"worker {name} did not report a port in {spawn_timeout:g}s"
                )
            return int(parent_conn.recv())

        try:
            port = await asyncio.to_thread(_receive_port)
        except BaseException:
            process.terminate()
            raise

        async def stop() -> object:
            process.terminate()  # SIGTERM -> graceful drain in the worker
            await asyncio.to_thread(process.join, 10.0)
            if process.is_alive():  # pragma: no cover - drain ignored
                process.kill()
                await asyncio.to_thread(process.join, 5.0)
            return {"exitcode": process.exitcode}

        replica = Replica(name, host, port, stop=stop)
        replica.process = process  # type: ignore[attr-defined]  # CLI access
        return replica

    return factory
