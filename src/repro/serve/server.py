"""Async micro-batching prediction server.

The serving story of the ROADMAP ("heavy traffic from millions of
users") needs more than a fast predictor: concurrent requests must be
*coalesced* so the compiled kernel sees large batches, identical
requests must be answered from memory, and operators need per-model
stats.  This module provides that as three composable layers, all on
the standard library only (``asyncio`` + a minimal HTTP/1.1 codec):

* :class:`LRUCache` — a bounded response cache keyed on
  ``(model, version, request hash)``;
* :class:`MicroBatcher` — per-``(model, version, target)`` lanes that
  collect concurrently arriving rows for up to ``max_delay_ms`` (or
  until ``max_batch`` rows) and run **one** predictor call for the
  whole batch, scattering the slices back to each waiter;
* :class:`PredictionService` — the transport-free application layer
  (request validation, model/predictor caches, stats) — this is what
  tests drive directly — wrapped by :class:`PredictionServer`, the
  socket layer, for real deployments and the
  ``repro-translator serve`` CLI.

Endpoints::

    GET  /healthz   liveness + uptime
    GET  /readyz    readiness: ready / degraded / draining (503)
    POST /predict   {"model": .., "version": "latest"|int,
                     "target": "L"|"R", "rows": [[item index, ..], ..]}
    GET  /models    registry contents + per-model serving stats

``rows`` are sparse item-index lists over the source view's vocabulary;
responses mirror that shape for the predicted target view.  ``/predict``
alternatively accepts a **binary packed-bitset frame**
(:mod:`repro.stream.codec`, detected by its magic bytes) whose header
carries the request fields — the payload becomes the source matrix via
one vectorised unpack, skipping JSON entirely.

Fault tolerance (:mod:`repro.resilience`): client reads run under a
per-connection deadline (a stalled slow-loris sender gets 408, never a
pinned handler task); :meth:`PredictionServer.stop` *drains* — the
listener closes, in-flight requests finish within ``drain_timeout``,
late arrivals get 503 and ``/readyz`` reports the drain; registry
artifact loads sit behind a per-model
:class:`~repro.resilience.policy.CircuitBreaker` with **last-good
degradation** — when the registry turns up corrupt mid-serve, requests
keep being answered from the already-loaded model version, flagged
``stale``, instead of turning into 500s.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import logging
import time
from collections import OrderedDict
from collections.abc import Callable

import numpy as np

from repro import obs as _obs
from repro.core.bitset import resolve_backend
from repro.core.predict import predict_view
from repro.data.dataset import Side
from repro.resilience.faults import CrashPoint, fault_point
from repro.resilience.policy import CircuitBreaker, CircuitOpenError, Deadline
from repro.runtime.cache import content_key
from repro.serve.artifact import ArtifactError, ModelArtifact
from repro.serve.compiled import CompiledPredictor
from repro.serve.registry import ModelRegistry

__all__ = [
    "LRUCache",
    "MicroBatcher",
    "ModelStats",
    "PredictionServer",
    "PredictionService",
]

logger = logging.getLogger(__name__)


class LRUCache:
    """A bounded mapping evicting the least recently used entry.

    Args:
        capacity: Maximum number of entries; ``0`` disables caching.

    Example::

        >>> from repro.serve import LRUCache
        >>> cache = LRUCache(2)
        >>> cache.put("a", 1); cache.put("b", 2); cache.put("c", 3)
        >>> cache.get("a") is None  # evicted
        True
        >>> cache.get("c")
        3
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._entries: OrderedDict[object, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: object) -> object | None:
        """Return the cached value or ``None``, refreshing recency."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return None

    def put(self, key: object, value: object) -> None:
        """Insert ``key``, evicting the oldest entry beyond capacity."""
        if self.capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        """Membership test without touching recency or hit counters."""
        return key in self._entries

    def __setitem__(self, key: object, value: object) -> None:
        """Dict-style alias of :meth:`put`."""
        self.put(key, value)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()


class ModelStats:
    """Serving counters of one model (reported under ``/models``).

    The counters live in a :class:`repro.obs.MetricsRegistry` (one
    family per field, labelled by model) so the same numbers feed both
    the JSON payloads and the ``/metrics`` scrape — while the attribute
    API (``stats.requests += 1``, plain ``int`` reads, :meth:`as_dict`)
    stays exactly what the pre-registry dataclass exposed.
    """

    #: Field names in their (stable) JSON order; ``stale`` counts
    #: responses served from the last-good model version because the
    #: registry's current version could not be resolved or loaded.
    FIELDS = ("requests", "rows", "batches", "cache_hits", "errors", "stale")

    _HELP = {
        "requests": "Prediction requests received per model.",
        "rows": "Prediction rows received per model.",
        "batches": "Physical predictor batches run per model.",
        "cache_hits": "Responses answered from the response cache per model.",
        "errors": "Failed prediction requests per model.",
        "stale": "Responses served from a last-good (stale) model version.",
    }

    def __init__(
        self,
        model: str = "",
        registry: "_obs.MetricsRegistry | None" = None,
    ) -> None:
        if registry is None:
            registry = _obs.MetricsRegistry()
        self._cells = {
            field: registry.counter(
                f"repro_serve_model_{field}_total",
                self._HELP[field],
                labelnames=("model",),
            ).labels(model=model)
            for field in self.FIELDS
        }

    def as_dict(self) -> dict[str, int]:
        """Plain-dict form for JSON responses (stable field order)."""
        return {field: getattr(self, field) for field in self.FIELDS}

    def __repr__(self) -> str:
        fields = ", ".join(f"{f}={getattr(self, f)}" for f in self.FIELDS)
        return f"ModelStats({fields})"


def _stats_field(field: str):
    """Property backing one :class:`ModelStats` field with its counter cell."""

    def _get(self) -> int:
        return int(self._cells[field].value)

    def _set(self, value) -> None:
        self._cells[field]._set_total(int(value))

    return property(_get, _set, doc=ModelStats._HELP[field])


for _field in ModelStats.FIELDS:
    setattr(ModelStats, _field, _stats_field(_field))
del _field


class _Lane:
    """Pending work of one ``(model, version, target)`` batching lane."""

    __slots__ = ("pending", "n_rows", "kick", "spans")

    def __init__(self) -> None:
        self.pending: list[tuple[np.ndarray, asyncio.Future]] = []
        self.n_rows = 0
        self.kick = asyncio.Event()
        #: Trace contexts of the traced requests riding this lane; the
        #: flush span links to the first one as its parent and records
        #: the rest, so one client request yields a connected span tree
        #: even when its rows execute inside a shared batch.
        self.spans: list[_obs.TraceContext] = []


class MicroBatcher:
    """Coalesce concurrent per-lane prediction requests into one call.

    The first request of a lane starts a flush task that waits up to
    ``max_delay_ms`` for company; requests arriving meanwhile append to
    the lane, and a lane reaching ``max_batch`` rows flushes right
    away.  The flush concatenates every pending row matrix, invokes the
    lane's runner **once**, and scatters the result slices back to the
    waiting futures — so ``n`` concurrent clients cost one compiled
    predictor call instead of ``n``.

    Args:
        max_batch: Row count that triggers an immediate flush.
        max_delay_ms: Longest time a request waits for batch company.
        tracer: Optional :class:`repro.obs.Tracer`; when set, each flush
            of a lane carrying traced requests emits a ``serve.flush``
            span parented to the first traced request.
    """

    def __init__(
        self,
        max_batch: int = 256,
        max_delay_ms: float = 2.0,
        tracer: "_obs.Tracer | None" = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        self.max_batch = max_batch
        self.max_delay_ms = max_delay_ms
        self.tracer = tracer
        self._lanes: dict[object, _Lane] = {}
        self._flush_tasks: set[asyncio.Task] = set()
        self.batches = 0
        self.batched_rows = 0

    async def submit(
        self,
        key: object,
        rows: np.ndarray,
        run: Callable[[np.ndarray], np.ndarray],
        trace: "_obs.TraceContext | None" = None,
    ) -> np.ndarray:
        """Queue ``rows`` on lane ``key``; resolves to their predictions.

        ``run`` maps a concatenated ``(n, n_source)`` matrix to the
        ``(n, n_target)`` prediction matrix; all submissions of one lane
        must pass an equivalent runner.  ``trace`` links this request's
        span into the flush's span tree.
        """
        loop = asyncio.get_running_loop()
        lane = self._lanes.get(key)
        future: asyncio.Future = loop.create_future()
        if lane is None:
            lane = _Lane()
            self._lanes[key] = lane
            lane.pending.append((rows, future))
            lane.n_rows += rows.shape[0]
            task = asyncio.ensure_future(self._flush_after_delay(key, lane, run))
            self._flush_tasks.add(task)
            task.add_done_callback(self._flush_tasks.discard)
        else:
            lane.pending.append((rows, future))
            lane.n_rows += rows.shape[0]
        if trace is not None:
            lane.spans.append(trace)
        if lane.n_rows >= self.max_batch:
            lane.kick.set()
        return await future

    def _detach(self, key: object, lane: _Lane) -> None:
        """Remove the lane mapping so late arrivals start a fresh batch."""
        if self._lanes.get(key) is lane:
            del self._lanes[key]

    async def _flush_after_delay(self, key: object, lane: _Lane, run) -> None:
        try:
            try:
                await asyncio.wait_for(
                    lane.kick.wait(), timeout=self.max_delay_ms / 1000.0
                )
            except asyncio.TimeoutError:
                pass
            self._detach(key, lane)
            pending = lane.pending
            if not pending:
                return
            batch = np.concatenate([rows for rows, __ in pending], axis=0)
            flush_span = None
            if self.tracer is not None and lane.spans:
                flush_span = self.tracer.span(
                    "serve.flush",
                    parent=lane.spans[0],
                    attributes={
                        "rows": int(batch.shape[0]),
                        "requests": len(pending),
                        "linked_spans": [
                            ctx.span_id for ctx in lane.spans[1:]
                        ],
                    },
                )
            try:
                predictions = await asyncio.to_thread(run, batch)
            finally:
                if flush_span is not None:
                    flush_span.finish()
        except asyncio.CancelledError:
            # Server shutdown: never swallow or re-wrap the cancellation
            # — detach the lane, hand every still-pending waiter a clean
            # CancelledError instead of a hang, and let it propagate so
            # the flush task really ends cancelled (asyncio's
            # bookkeeping depends on it).
            self._detach(key, lane)
            for __, future in lane.pending:
                if not future.done():
                    future.cancel()
            raise
        except Exception as error:
            # Runner/model failure: deliver the real error to every
            # waiter and end the flush normally.
            self._detach(key, lane)
            for __, future in lane.pending:
                if not future.done():
                    future.set_exception(error)
            return
        except BaseException as error:
            # KeyboardInterrupt/SystemExit: deliver it to the waiters so
            # none hangs, then propagate — it must not be swallowed into
            # a normal task completion.
            self._detach(key, lane)
            for __, future in lane.pending:
                if not future.done():
                    future.set_exception(error)
            raise
        self.batches += 1
        self.batched_rows += batch.shape[0]
        offset = 0
        for rows, future in pending:
            size = rows.shape[0]
            if not future.done():
                future.set_result(predictions[offset : offset + size])
            offset += size

    async def shutdown(self) -> None:
        """Cancel outstanding flush tasks; their waiters get a clean
        ``CancelledError`` rather than hanging on a dead event loop.

        The gather collects the children's cancellations/errors without
        raising, while a cancellation aimed at the *caller* (say a
        timeout around server teardown) still propagates out of the
        ``await`` — shutdown never swallows its own cancellation.
        """
        tasks = [task for task in self._flush_tasks if not task.done()]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)


class PredictionService:
    """Transport-independent serving core: models, batching, caching, stats.

    Wraps a :class:`~repro.serve.registry.ModelRegistry` with lazily
    loaded artifacts, per-direction compiled predictors, a
    :class:`MicroBatcher` and an :class:`LRUCache` of responses keyed on
    ``(model, version, request hash)``.  :class:`PredictionServer` puts
    it on a socket; tests and benchmarks drive it directly via
    :meth:`predict` / :meth:`handle`.

    Args:
        registry: Where models come from.
        max_batch, max_delay_ms: Micro-batcher knobs.
        cache_size: Response-cache capacity (``0`` disables it).
        engine: ``"compiled"`` (default) or ``"loop"`` — the reference
            per-rule path, kept selectable for benchmarking and
            bit-identity spot checks.
        max_predictors: How many compiled predictors (and, at twice
            this, loaded artifacts) stay resident, evicted LRU.  A
            long-running server behind a streaming maintenance loop
            sees an unbounded parade of published versions; without the
            bound, every one of them would stay compiled in memory.
        latest_ttl_seconds: How long a ``latest`` resolution may be
            served from memory before the registry directory is
            consulted again; bounds the hot-swap staleness window after
            a publish without putting O(versions) directory scans on
            every request (cache hits included).
        backend: Word-op backend forwarded to every compiled predictor
            (``"numpy"``, ``"native"`` or ``"auto"``); affects the
            packed strategy only and is bit-identical either way.
        prefer_mapped: When the registry version has a binary
            ``compiled.bin`` sidecar (:mod:`repro.serve.binfmt`),
            build predictors as zero-copy ``mmap`` views over it
            instead of re-packing the JSON table — every worker
            process on the machine then shares one page-cache copy of
            the model.  A missing or damaged sidecar silently falls
            back to the JSON path; the answers are bit-identical.
        breaker_factory: Builds the per-model
            :class:`~repro.resilience.policy.CircuitBreaker` guarding
            registry artifact loads — after repeated load failures the
            registry directory is left alone for a cooldown and
            requests are answered from the last-good model (flagged
            ``stale``) instead of hammering a corrupt disk.
        metrics: The :class:`repro.obs.MetricsRegistry` backing this
            service's counters and the ``GET /metrics`` scrape.  Each
            service defaults to a private registry so replicas (and test
            fixtures) never share series.
        tracer: Optional :class:`repro.obs.Tracer`; when set, requests
            carrying an ``X-Repro-Trace`` header produce linked
            ``serve.predict`` / ``serve.flush`` spans.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        max_batch: int = 256,
        max_delay_ms: float = 2.0,
        cache_size: int = 1024,
        engine: str = "compiled",
        max_predictors: int = 32,
        latest_ttl_seconds: float = 1.0,
        backend: str = "auto",
        breaker_factory: Callable[[], CircuitBreaker] | None = None,
        prefer_mapped: bool = True,
        metrics: "_obs.MetricsRegistry | None" = None,
        tracer: "_obs.Tracer | None" = None,
    ) -> None:
        if engine not in ("compiled", "loop"):
            raise ValueError(f"unknown serving engine {engine!r}")
        if max_predictors < 1:
            raise ValueError("max_predictors must be positive")
        self.registry = registry
        self.engine = engine
        # Resolve eagerly so a misconfigured backend (e.g. "native" on a
        # compiler-less machine) fails at service construction, not as a
        # 500 on the first /predict that compiles a predictor.
        self.backend = resolve_backend(backend)
        self.prefer_mapped = prefer_mapped
        #: How many resident predictors were built from mmap sidecars
        #: vs recompiled from JSON (operator visibility via /statz).
        self.mapped_loads = 0
        self.compiled_loads = 0
        self.metrics = metrics if metrics is not None else _obs.MetricsRegistry()
        self.tracer = tracer
        self.batcher = MicroBatcher(
            max_batch=max_batch, max_delay_ms=max_delay_ms, tracer=tracer
        )
        self.response_cache = LRUCache(cache_size)
        self.stats: dict[str, ModelStats] = {}
        self.started_unix = time.time()
        self._request_seconds = self.metrics.histogram(
            "repro_serve_request_seconds",
            "Wall-clock seconds per HTTP request, by endpoint.",
            labelnames=("endpoint",),
        )
        self.metrics.gauge(
            "repro_serve_uptime_seconds", "Seconds since service start."
        ).set_function(lambda: time.time() - self.started_unix)
        self.metrics.gauge(
            "repro_serve_response_cache_entries",
            "Entries currently held in the response cache.",
        ).set_function(lambda: len(self.response_cache))
        self.latest_ttl_seconds = latest_ttl_seconds
        self._artifacts: LRUCache = LRUCache(2 * max_predictors)
        self._predictors: LRUCache = LRUCache(max_predictors)
        self._latest: dict[str, tuple[float, int]] = {}
        #: Set by the server when a graceful drain starts; /readyz then
        #: reports 503 so load balancers stop routing here.
        self.draining = False
        self._breaker_factory = breaker_factory or (
            lambda: CircuitBreaker(failure_threshold=3, reset_timeout=5.0)
        )
        self._breakers: dict[str, CircuitBreaker] = {}
        #: Last version of each model that loaded successfully — the
        #: degradation target when the registry turns up damaged.
        self._last_good: dict[str, int] = {}
        #: Models currently being served stale (cleared on recovery).
        self._degraded: set[str] = set()

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------
    def artifact(self, name: str, version: int) -> ModelArtifact:
        """Load (and memoise, LRU-bounded) one published model version.

        Disk loads run behind the model's circuit breaker: repeated
        :class:`~repro.serve.artifact.ArtifactError` failures open it,
        and while it is open un-cached loads are refused with
        :class:`~repro.resilience.policy.CircuitOpenError` instead of
        re-reading a known-bad registry on every request.  Cached
        artifacts are always served — a broken disk never takes away a
        model that is already in memory.
        """
        key = (name, version)
        cached = self._artifacts.get(key)
        if cached is None:
            breaker = self._breaker(name)
            breaker.guard(f"artifact loads of model {name!r}")
            try:
                cached = self.registry.load(name, version)
            except ArtifactError:
                breaker.record_failure()
                raise
            except Exception:
                # Unknown version (KeyError) etc.: not a registry-health
                # signal, so it neither trips nor resets the breaker.
                raise
            breaker.record_success()
            self._artifacts.put(key, cached)
            self._last_good[name] = version
        return cached  # type: ignore[return-value]

    def _breaker(self, name: str) -> CircuitBreaker:
        breaker = self._breakers.get(name)
        if breaker is None:
            breaker = self._breakers[name] = self._breaker_factory()
        return breaker

    def _serving_artifact(
        self, name: str, version: int
    ) -> tuple[ModelArtifact, int, bool]:
        """Resolve the artifact to answer with, degrading to last-good.

        Returns ``(artifact, version, stale)``.  When the requested
        version cannot be loaded (corrupt bytes, open breaker) but an
        earlier version of the model loaded fine before, that version
        answers instead and ``stale`` is ``True`` — the service keeps
        serving through registry damage rather than turning every
        request into a 500.
        """
        try:
            return self.artifact(name, version), version, False
        except (ArtifactError, CircuitOpenError):
            fallback = self._last_good.get(name)
            if fallback is None or fallback == version:
                raise
            artifact = self.artifact(name, fallback)
            return artifact, fallback, True

    def _note_degraded(self, name: str, stale: bool, stats: ModelStats) -> None:
        if stale:
            stats.stale += 1
            self._degraded.add(name)
        else:
            self._degraded.discard(name)

    def predictor(
        self, name: str, version: int, target: Side
    ) -> CompiledPredictor:
        """Compile (and memoise, LRU-bounded) one model version/direction.

        At most ``max_predictors`` compiled models stay resident; the
        least recently served version is dropped first, so a registry
        that accretes streaming refits doesn't grow the server's memory
        without bound (an evicted version recompiles on next use).
        """
        key = (name, version, target.value)
        cached = self._predictors.get(key)
        if cached is None:
            artifact = self.artifact(name, version)
            cached = self._mapped_predictor(artifact, name, version, target)
            if cached is None:
                n_source = (
                    artifact.n_left if target is Side.RIGHT else artifact.n_right
                )
                n_target = (
                    artifact.n_right if target is Side.RIGHT else artifact.n_left
                )
                cached = CompiledPredictor.from_table(
                    artifact.table, target, n_source, n_target, backend=self.backend
                )
                self.compiled_loads += 1
            self._predictors.put(key, cached)
        return cached  # type: ignore[return-value]

    def _mapped_predictor(
        self, artifact: ModelArtifact, name: str, version: int, target: Side
    ) -> CompiledPredictor | None:
        """Try the zero-copy mmap path; ``None`` means fall back to JSON.

        The sidecar must verify (hash over every payload byte) *and*
        name the exact JSON artifact being served — a sidecar from a
        different publish can never answer for this version.
        """
        if not self.prefer_mapped:
            return None
        from repro.serve.binfmt import map_artifact

        path = self.registry.sidecar_path(name, version)
        try:
            mapped = map_artifact(path)
        except (ArtifactError, OSError):
            return None
        if mapped.artifact_hash != artifact.content_hash:
            mapped.close()
            return None
        # The numpy views keep the mapping referenced; the predictor is
        # valid for as long as the LRU holds it.
        predictor = CompiledPredictor.from_mapped(
            mapped, target, backend=self.backend
        )
        self.mapped_loads += 1
        return predictor

    def _stats_for(self, name: str) -> ModelStats:
        stats = self.stats.get(name)
        if stats is None:
            stats = self.stats[name] = ModelStats(name, registry=self.metrics)
        return stats

    def _resolve_version(self, name: str, version) -> tuple[int, bool]:
        """Registry version resolution, memoised for the request hot path.

        Explicit versions already loaded are trusted (versions are
        immutable); ``latest`` is re-read from disk at most once per
        :attr:`latest_ttl_seconds` per model.  Returns ``(version,
        stale)`` — when a damaged ``LATEST`` pointer makes resolution
        raise :class:`~repro.serve.artifact.ArtifactError` but a
        last-good version is known, that version is returned with
        ``stale=True`` instead of failing the request.
        """
        if version is None or version == "latest":
            now = time.monotonic()
            cached = self._latest.get(name)
            if cached is not None and now - cached[0] < self.latest_ttl_seconds:
                return cached[1], False
            try:
                number = self.registry.latest_version(name)
            except ArtifactError:
                fallback = self._last_good.get(name)
                if fallback is None:
                    raise
                return fallback, True
            self._latest[name] = (now, number)
            return number, False
        number = int(version)
        if (name, number) in self._artifacts:
            return number, False
        return self.registry.resolve(name, number), False

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    async def predict(
        self, request: dict, trace: "_obs.TraceContext | None" = None
    ) -> dict:
        """Answer one ``/predict`` request body (already parsed).

        Raises ``ValueError`` for malformed requests and ``KeyError``
        for unknown models/versions; the HTTP layer maps those to 400
        and 404.  ``trace`` (parsed from ``X-Repro-Trace``) links the
        request's spans under the caller's trace.
        """
        if not isinstance(request, dict):
            raise ValueError("request body must be a JSON object")
        name = request.get("model")
        if not isinstance(name, str) or not name:
            raise ValueError("request must name a 'model'")
        target = Side(str(request.get("target", "R")).upper())
        rows = request.get("rows")
        if not isinstance(rows, list) or not all(
            isinstance(row, list) for row in rows
        ):
            raise ValueError("'rows' must be a list of item-index lists")
        render = request.get("render", False)
        if not isinstance(render, bool):
            raise ValueError("'render' must be a boolean")
        version, stale = self._resolve_version(name, request.get("version"))
        stats = self._stats_for(name)
        stats.requests += 1
        stats.rows += len(rows)
        span = None
        if self.tracer is not None and trace is not None:
            span = self.tracer.span(
                "serve.predict",
                parent=trace,
                attributes={"model": name, "rows": len(rows)},
            )
        try:
            artifact, version, load_stale = self._serving_artifact(name, version)
            stale = stale or load_stale
            self._note_degraded(name, stale, stats)
            cache_key = (
                name,
                version,
                content_key({"target": target.value, "rows": rows}),
            )
            cached = self._cached_response(cache_key, stats)
            if cached is not None:
                if stale:
                    cached["stale"] = True
                if render:
                    self._attach_rendered(cached, artifact, target)
                return cached
            # Lazy import: repro.stream's package init reaches back into
            # repro.serve, so a module-level import here would cycle.
            from repro.stream.source import rows_to_matrix

            n_source = artifact.n_left if target is Side.RIGHT else artifact.n_right
            matrix = rows_to_matrix(rows, n_source)
            response = await self._predict_matrix(
                name,
                version,
                target,
                matrix,
                stats,
                cache_key,
                trace=span.context if span is not None else None,
            )
            if stale:
                response["stale"] = True
            if render:
                self._attach_rendered(response, artifact, target)
            return response
        except asyncio.CancelledError:
            # Shutdown, not a model failure: propagate untouched and
            # uncounted (re-wrapping it would break task cancellation).
            raise
        except BaseException:
            stats.errors += 1
            raise
        finally:
            if span is not None:
                span.finish()

    async def predict_packed(
        self, body: bytes, trace: "_obs.TraceContext | None" = None
    ) -> dict:
        """Answer one binary packed-frame ``/predict`` request body.

        The body is a single-view frame from
        :func:`repro.stream.codec.encode_packed_rows` whose header
        carries the request fields (``model``, optional ``version`` and
        ``target``); the payload bytes become the source matrix without
        any per-row Python work.  Responses are the same JSON documents
        the JSON path produces.
        """
        from repro.stream.codec import decode_packed_rows, frame_payload

        meta, matrix, right = decode_packed_rows(body)
        if right is not None:
            raise ValueError("/predict expects a single-view packed frame")
        name = meta.get("model")
        if not isinstance(name, str) or not name:
            raise ValueError("packed frame header must name a 'model'")
        target = Side(str(meta.get("target", "R")).upper())
        render = bool(meta.get("render", False))
        version, stale = self._resolve_version(name, meta.get("version"))
        stats = self._stats_for(name)
        stats.requests += 1
        stats.rows += matrix.shape[0]
        span = None
        if self.tracer is not None and trace is not None:
            span = self.tracer.span(
                "serve.predict",
                parent=trace,
                attributes={"model": name, "rows": int(matrix.shape[0])},
            )
        try:
            artifact, version, load_stale = self._serving_artifact(name, version)
            stale = stale or load_stale
            self._note_degraded(name, stale, stats)
            # Hash the wire payload (canonical packed words, 8x fewer
            # bytes than the unpacked matrix); the shape disambiguates
            # frames whose payloads happen to coincide.
            cache_key = (
                name,
                version,
                "packed",
                target.value,
                matrix.shape,
                hashlib.sha256(frame_payload(body)).hexdigest(),
            )
            cached = self._cached_response(cache_key, stats)
            if cached is not None:
                if stale:
                    cached["stale"] = True
                if render:
                    self._attach_rendered(cached, artifact, target)
                return cached
            n_source = artifact.n_left if target is Side.RIGHT else artifact.n_right
            if matrix.shape[1] != n_source:
                raise ValueError(
                    f"packed frame carries {matrix.shape[1]} items, the "
                    f"source vocabulary has {n_source}"
                )
            response = await self._predict_matrix(
                name,
                version,
                target,
                matrix,
                stats,
                cache_key,
                trace=span.context if span is not None else None,
            )
            if stale:
                response["stale"] = True
            if render:
                self._attach_rendered(response, artifact, target)
            return response
        except asyncio.CancelledError:
            raise
        except BaseException:
            stats.errors += 1
            raise
        finally:
            if span is not None:
                span.finish()

    @staticmethod
    def _attach_rendered(response: dict, artifact, target: Side) -> None:
        """Add ``"rendered"`` labels for the predicted target items.

        Uses the artifact's target-side :class:`~repro.data.schema.ViewSchema`
        to express predictions in original units (``age ∈ [30, 45)``),
        falling back to the bare vocabulary names for schema-less
        artifacts.  Rendering is a pure function of the predictions, so
        it is applied after the response cache: the cache key (and the
        cached document) are identical with or without ``render``.
        """
        schema = (
            artifact.right_schema if target is Side.RIGHT else artifact.left_schema
        )
        names = (
            artifact.right_names if target is Side.RIGHT else artifact.left_names
        )
        response["rendered"] = [
            [
                schema.label(item) if schema is not None else names[item]
                for item in row
            ]
            for row in response["predictions"]
        ]

    def _cached_response(self, cache_key: object, stats: ModelStats) -> dict | None:
        """Response-cache lookup shared by the JSON and packed paths."""
        cached = self.response_cache.get(cache_key)
        if cached is None:
            return None
        stats.cache_hits += 1
        response = dict(cached)  # type: ignore[arg-type]
        response["cached"] = True
        return response

    async def _predict_matrix(
        self,
        name: str,
        version: int,
        target: Side,
        matrix: np.ndarray,
        stats: ModelStats,
        cache_key: object,
        trace: "_obs.TraceContext | None" = None,
    ) -> dict:
        if matrix.shape[0]:
            run = self._runner(name, version, target)

            def counted_run(batch: np.ndarray) -> np.ndarray:
                # Runs once per physical flush of this model's lane, so
                # per-model batch counts stay exact under concurrency.
                stats.batches += 1
                return run(batch)

            predictions = await self.batcher.submit(
                (name, version, target.value), matrix, counted_run, trace=trace
            )
        else:
            predictions = np.zeros((0, 0), dtype=bool)

        response = {
            "model": name,
            "version": version,
            "target": target.value,
            "predictions": [
                np.flatnonzero(prediction).tolist() for prediction in predictions
            ],
            "cached": False,
        }
        self.response_cache.put(cache_key, dict(response))
        return response

    def _runner(
        self, name: str, version: int, target: Side
    ) -> Callable[[np.ndarray], np.ndarray]:
        if self.engine == "compiled":
            return self.predictor(name, version, target).predict
        artifact = self.artifact(name, version)
        n_target = artifact.n_right if target is Side.RIGHT else artifact.n_left

        def run(matrix: np.ndarray) -> np.ndarray:
            return predict_view(
                matrix, artifact.table, target, n_target, engine="loop"
            )

        return run

    # ------------------------------------------------------------------
    # Introspection payloads
    # ------------------------------------------------------------------
    def healthz_payload(self) -> dict:
        """Liveness document for ``GET /healthz``."""
        return {
            "status": "ok",
            "engine": self.engine,
            "models": len(self.registry.models()),
            "uptime_seconds": round(time.time() - self.started_unix, 3),
        }

    def readyz_payload(self) -> dict:
        """Readiness document for ``GET /readyz``.

        Distinct from liveness: a *live* process may still be the wrong
        place to route traffic.  ``draining`` means a graceful stop is
        in progress (the endpoint returns 503 so load balancers eject
        this replica while in-flight requests finish); ``degraded``
        means requests are being answered from last-good model versions
        because the registry is damaged — still serving, but an
        operator should look.
        """
        degraded = sorted(self._degraded)
        if self.draining:
            status = "draining"
        elif degraded:
            status = "degraded"
        else:
            status = "ready"
        return {
            "status": status,
            "draining": self.draining,
            "degraded_models": degraded,
            "breakers": {
                name: breaker.state for name, breaker in self._breakers.items()
            },
            "stale_responses": {
                name: stats.stale
                for name, stats in self.stats.items()
                if stats.stale
            },
        }

    def models_payload(self) -> dict:
        """Registry contents + serving stats for ``GET /models``."""
        rows = self.registry.describe()
        for row in rows:
            row["stats"] = self._stats_for(str(row["name"])).as_dict()
        return {
            "models": rows,
            "cache": {
                "size": len(self.response_cache),
                "capacity": self.response_cache.capacity,
                "hits": self.response_cache.hits,
                "misses": self.response_cache.misses,
            },
            "batcher": {
                "batches": self.batcher.batches,
                "batched_rows": self.batcher.batched_rows,
                "max_batch": self.batcher.max_batch,
                "max_delay_ms": self.batcher.max_delay_ms,
            },
        }

    def metrics_text(self) -> str:
        """The ``GET /metrics`` exposition document.

        The service registry first (model counters, request latency),
        then the engine instrumentation registry (when installed) and
        the process default — deduplicated by family name, first wins.
        """
        registries = [self.metrics]
        inst = _obs.ACTIVE
        if inst is not None and all(inst.registry is not r for r in registries):
            registries.append(inst.registry)
        if all(_obs.REGISTRY is not r for r in registries):
            registries.append(_obs.REGISTRY)
        return _obs.render_registries(registries)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def handle(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict | str]:
        """Route one request; returns ``(status, response payload)``.

        The payload is a JSON-able dict for every route except
        ``GET /metrics``, whose payload is the Prometheus text document
        (a ``str`` — the transport picks the content type off that).
        """
        started = time.perf_counter()
        endpoint = path if path in ENDPOINTS else "other"
        try:
            return await self._handle_routed(method, path, body, headers)
        finally:
            self._request_seconds.labels(endpoint=endpoint).observe(
                time.perf_counter() - started
            )

    async def _handle_routed(
        self,
        method: str,
        path: str,
        body: bytes | None,
        headers: dict[str, str] | None,
    ) -> tuple[int, dict | str]:
        try:
            if method == "GET" and path == "/healthz":
                return 200, self.healthz_payload()
            if method == "GET" and path == "/readyz":
                payload = self.readyz_payload()
                return (503 if self.draining else 200), payload
            if method == "GET" and path == "/models":
                return 200, self.models_payload()
            if method == "GET" and path == "/metrics":
                return 200, self.metrics_text()
            if method == "POST" and path == "/predict":
                from repro.stream.codec import PACKED_MAGIC

                trace = None
                if headers:
                    trace = _obs.parse_trace_header(
                        headers.get(_obs.TRACE_HEADER.lower())
                    )
                if (body or b"").startswith(PACKED_MAGIC):
                    if trace is not None:
                        return 200, await self.predict_packed(body, trace=trace)
                    return 200, await self.predict_packed(body)
                try:
                    request = json.loads((body or b"").decode("utf-8") or "null")
                except ValueError:
                    return 400, {"error": "request body is not valid JSON"}
                # Untraced requests call predict(request) exactly as
                # before — callers wrap/replace predict with
                # single-argument callables.
                if trace is not None:
                    return 200, await self.predict(request, trace=trace)
                return 200, await self.predict(request)
            return 404, {"error": f"no route {method} {path}"}
        except KeyError as error:
            return 404, {"error": str(error.args[0] if error.args else error)}
        except CircuitOpenError as error:
            # The registry is known-bad and no last-good fallback exists
            # for this model: tell the client to back off rather than
            # pretending the request itself was wrong.
            return 503, {"error": str(error)}
        except ArtifactError as error:
            # Before ValueError: ArtifactError subclasses it, and a corrupt
            # published model is a server-side problem, not a bad request.
            return 500, {"error": str(error)}
        except ValueError as error:
            return 400, {"error": str(error)}
        except Exception as error:  # never leave a client without a reply
            return 500, {"error": f"{type(error).__name__}: {error}"}


class _RequestError(Exception):
    """A request failed before dispatch; carries the HTTP response."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(str(payload.get("error", "")))
        self.status = status
        self.payload = payload


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    413: "Payload Too Large",
    502: "Bad Gateway",
    503: "Service Unavailable",
}

#: Paths that get their own request-latency series; anything else is
#: bucketed under ``other`` so hostile path spam cannot mint series.
ENDPOINTS = ("/healthz", "/readyz", "/models", "/metrics", "/predict", "/statz")


def http_response_bytes(
    status: int, body: bytes, content_type: str = "application/json"
) -> bytes:
    """One complete ``Connection: close`` response as raw bytes."""
    reason = _REASONS.get(status, "Internal Server Error")
    return (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n".encode("ascii")
        + body
    )


class PredictionServer:
    """Socket layer: a minimal asyncio HTTP/1.1 front for the service.

    Args:
        service: The :class:`PredictionService` to expose.
        host, port: Bind address; ``port=0`` picks a free port (read it
            back from :attr:`port` after :meth:`start`).
        read_timeout: Per-connection budget (seconds) for receiving the
            request line, headers and body.  A stalled (slow-loris)
            client gets a 408 and its connection back — it can never
            pin a handler task forever.
        drain_timeout: Default grace period :meth:`stop` gives
            in-flight requests before cancelling the stragglers.

    Example::

        server = PredictionServer(PredictionService(registry), port=8100)
        server.run()   # blocks; SIGINT/SIGTERM drain gracefully
    """

    #: Largest accepted request body; protects the server from a client
    #: declaring an absurd Content-Length and streaming it.
    MAX_BODY_BYTES = 16 * 1024 * 1024

    def __init__(
        self,
        service: PredictionService,
        host: str = "127.0.0.1",
        port: int = 8100,
        read_timeout: float = 30.0,
        drain_timeout: float = 5.0,
        name: str = "server",
    ) -> None:
        if read_timeout <= 0:
            raise ValueError("read_timeout must be positive")
        if drain_timeout < 0:
            raise ValueError("drain_timeout must be non-negative")
        self.service = service
        self.host = host
        self.port = port
        self.read_timeout = read_timeout
        self.drain_timeout = drain_timeout
        #: Replica identity: the router names its workers ``w1..wN`` and
        #: chaos tests aim fault plans at ``serve.<name>.request``.
        self.name = name
        self._server: asyncio.AbstractServer | None = None
        self._inflight: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._draining = False
        self._crashed = False

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (non-blocking)."""
        self._draining = False
        self._crashed = False
        self.service.draining = False
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info(
            "replica %s listening on %s:%d",
            self.name,
            self.host,
            self.port,
            extra={"replica": self.name, "host": self.host, "port": self.port},
        )

    @property
    def inflight(self) -> int:
        """Connections currently being handled."""
        return len(self._inflight)

    @property
    def crashed(self) -> bool:
        """Whether an injected :class:`CrashPoint` killed this replica."""
        return self._crashed

    async def stop(self, drain_timeout: float | None = None) -> dict:
        """Gracefully drain and stop the server.

        The listener closes first (no new connections), then every
        in-flight request gets up to ``drain_timeout`` seconds (default:
        the constructor's) to finish normally — their responses are
        written and their connections closed cleanly, never reset.
        Only stragglers still running at the deadline are cancelled,
        and outstanding micro-batcher flushes are shut down last so no
        waiter hangs on a dead event loop.

        Returns a summary: ``{"inflight_at_stop", "completed",
        "cancelled"}``.
        """
        timeout = self.drain_timeout if drain_timeout is None else drain_timeout
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Flag the drain only after the listener is fully closed: every
        # task in _inflight was accepted before the drain and is owed a
        # real response; anything arriving later sees 503.
        self._draining = True
        self.service.draining = True
        inflight_at_stop = len(self._inflight)
        deadline = Deadline(timeout)
        while self._inflight and not deadline.expired():
            await asyncio.wait(
                set(self._inflight),
                timeout=deadline.remaining() or 0.001,
                return_when=asyncio.ALL_COMPLETED,
            )
        stragglers = set(self._inflight)
        for task in stragglers:
            task.cancel()
        if stragglers:
            await asyncio.gather(*stragglers, return_exceptions=True)
        await self.service.batcher.shutdown()
        summary = {
            "inflight_at_stop": inflight_at_stop,
            "completed": inflight_at_stop - len(stragglers),
            "cancelled": len(stragglers),
        }
        logger.info(
            "replica %s drained: %d in flight, %d completed, %d cancelled",
            self.name,
            inflight_at_stop,
            summary["completed"],
            summary["cancelled"],
            extra={"replica": self.name, **summary},
        )
        return summary

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def _serve_until_signalled(self) -> None:
        """Serve until SIGINT/SIGTERM, then drain gracefully."""
        import signal

        if self._server is None:
            await self.start()
        stop_requested = asyncio.Event()
        loop = asyncio.get_running_loop()
        registered = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_requested.set)
                registered.append(signum)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # pragma: no cover - platform without signal support
        try:
            if registered:
                await stop_requested.wait()
                await self.stop()
            else:  # pragma: no cover - platform without signal support
                await self.serve_forever()
        finally:
            for signum in registered:
                loop.remove_signal_handler(signum)

    def run(self) -> None:
        """Blocking entry point used by ``repro-translator serve``.

        SIGINT/SIGTERM trigger a graceful :meth:`stop` — in-flight
        requests finish (up to ``drain_timeout``) before the process
        exits, so a rolling restart never resets client connections.
        """
        try:
            asyncio.run(self._serve_until_signalled())
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass

    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._inflight.add(task)
        self._writers.add(writer)
        try:
            try:
                status, payload = await self._handle_one(reader)
            except CrashPoint:
                # An injected crash models kill -9 at replica scope: no
                # response, no goodbye — every open connection is reset
                # and the listener vanishes.  The exception stops here
                # (the "process" that died is this server, not the test
                # harness hosting it).
                self._die()
                return
            if isinstance(payload, str):
                # /metrics: the payload already is the wire document.
                body = payload.encode("utf-8")
                content_type = _obs.METRICS_CONTENT_TYPE
            else:
                body = json.dumps(payload).encode("utf-8")
                content_type = "application/json"
            writer.write(http_response_bytes(status, body, content_type))
            try:
                await writer.drain()
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except ConnectionError:  # pragma: no cover - client went away
                    pass
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._inflight.discard(task)

    def _die(self) -> None:
        """Simulate a hard replica death (chaos testing only).

        Mirrors what ``kill -9`` does to a worker process: the listener
        disappears mid-accept and every established connection — the
        one that hit the crash *and* any concurrent in-flight neighbour
        — is reset without a response.  The router above must observe
        connection resets/refusals, never a torn HTTP payload.
        """
        self._crashed = True
        if self._server is not None:
            self._server.close()
            self._server = None
        current = asyncio.current_task()
        for writer in list(self._writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        self._writers.clear()
        for task in list(self._inflight):
            if task is not current:
                task.cancel()

    async def _handle_one(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict]:
        if self._draining:
            # Connections are normally all accepted before stop() closes
            # the listener; this guard covers the pathological handler
            # task that first runs after the drain flag went up.
            return 503, {"error": "server is draining"}
        # Chaos hook: fault plans target one replica by name, e.g.
        # plan("serve.w2.request", kind="crash") kills w2 mid-batch.
        fault_point(f"serve.{self.name}.request")
        try:
            method, path, body, headers = await asyncio.wait_for(
                self._read_request(reader), self.read_timeout
            )
        except asyncio.TimeoutError:
            return 408, {
                "error": (
                    f"request not received within {self.read_timeout:g}s"
                )
            }
        except _RequestError as error:
            return error.status, error.payload
        except (asyncio.IncompleteReadError, ConnectionError, ValueError):
            return 400, {"error": "malformed HTTP request"}
        return await self.service.handle(method, path, body, headers)

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes, dict[str, str]]:
        """Read one request; the caller bounds this with ``read_timeout``."""
        return await read_http_request(reader, self.MAX_BODY_BYTES)


async def read_http_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> tuple[str, str, bytes, dict[str, str]]:
    """Parse one HTTP/1.1 request: ``(method, path, body, headers)``.

    Header names come back lower-cased (last value wins).  Shared by
    :class:`PredictionServer` and the replica router
    (:mod:`repro.serve.router`) so both fronts reject malformed input
    identically.  Raises :class:`_RequestError` carrying the HTTP
    response for protocol violations; the caller bounds the read time.
    """
    request_line = (await reader.readline()).decode("ascii", "replace").strip()
    parts = request_line.split()
    if len(parts) < 2:
        raise _RequestError(
            400, {"error": f"malformed request line {request_line!r}"}
        )
    method, path = parts[0].upper(), parts[1]
    content_length = 0
    headers: dict[str, str] = {}
    while True:
        line = (await reader.readline()).decode("ascii", "replace")
        if line in ("\r\n", "\n", ""):
            break
        header, _, value = line.partition(":")
        header = header.strip().lower()
        headers[header] = value.strip()
        if header == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                raise _RequestError(400, {"error": "invalid Content-Length"})
    if content_length > max_body_bytes:
        raise _RequestError(
            413,
            {"error": f"request body exceeds {max_body_bytes} bytes"},
        )
    body = await reader.readexactly(content_length) if content_length else b""
    return method, path, body, headers
