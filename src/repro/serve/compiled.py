"""Compiled translation-table predictor.

The reference :func:`repro.core.predict.predict_view` walks the table
rule by rule in Python — fine for a handful of held-out evaluations,
hopeless for a prediction service that must answer batches of requests.
This module *compiles* a :class:`~repro.core.table.TranslationTable`
for one prediction direction into two packed-bitset matrices (reusing
:mod:`repro.core.bitset`):

* an **antecedent matrix** — row ``r`` is rule ``r``'s antecedent
  itemset packed over the source vocabulary — and
* a **consequent matrix** — row ``r`` is rule ``r``'s consequent
  itemset packed over the target vocabulary.

Prediction is then a handful of matrix ops instead of a per-rule loop:
rule ``r`` fires on transaction ``t`` iff the antecedent is a subset of
the transaction, and ``t``'s predicted target view is the union of the
consequents of its firing rules.  Two execution strategies implement
that contract over the same compiled matrices:

``"blas"`` (default)
    Express the subset test as an exact integer count — rule ``r``
    fires iff ``|t & ant_r| == |ant_r|`` — and the union as a count as
    well — item ``j`` is predicted iff some firing rule emits it.  Both
    are ``float32`` matrix products of 0/1 operands derived from the
    packed matrices at compile time; every value involved is a small
    integer (bounded by the vocabulary/rule count, far below the 2**24
    float32 integer limit), so the results are **exact**, not
    approximate.  This rides BLAS and dominates the micro-batch serving
    regime (1..512 rows per call, see ``BENCH_serve.json``).

``"packed"``
    Evaluate the same subset test directly on the packed words
    (``row & ant == ant``) and the union as a broadcast OR of
    consequent words.  Touches 64x less memory per item than the dense
    paths — the right tool when vocabularies are wide and batches
    enormous — and doubles as the strategy-independent reference.

Outputs of both strategies are **bit-identical** to the per-rule loop:
all three compute the same subset test and the same consequent union,
only the evaluation order and arithmetic carrier differ.  The
equivalence is enforced by ``tests/test_serve.py`` on synthetic and
``car``-derived tables and re-checked by ``benchmarks/bench_serve.py``
on every benchmark run.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable

import numpy as np

from repro.core.bitset import BitMatrix, unpack_mask
from repro.core.rules import TranslationRule
from repro.core.table import TranslationTable
from repro.data.dataset import Side

__all__ = ["CompiledPredictor"]

# Rows per chunk for the packed strategy's (batch, rules, words)
# broadcasts; bounds peak memory at ~chunk * n_rules * n_words * 8 B.
_CHUNK_ROWS = 1024


class CompiledPredictor:
    """A translation table compiled for fast batched one-way prediction.

    Instances are immutable and safe to share across asyncio tasks and
    threads (all state is read-only numpy arrays), which is what the
    prediction server's micro-batcher relies on.

    Args:
        target: The view being predicted (rules firing the other way
            are excluded at compile time).
        n_source_items: Width of incoming source-view matrices.
        n_target_items: Width of the predicted target-view matrices.
        rules: The rules to compile; only those firing towards
            ``target`` are kept, and rules with an empty antecedent are
            skipped with a warning (they would fire on every row).

    Example::

        >>> from repro import Side, TranslationRule, TranslationTable
        >>> from repro.serve import CompiledPredictor
        >>> table = TranslationTable([TranslationRule((0,), (1,), "->")])
        >>> compiled = CompiledPredictor.from_table(table, Side.RIGHT, 2, 2)
        >>> compiled.predict([[True, False]]).tolist()
        [[False, True]]
    """

    __slots__ = (
        "target",
        "n_source_items",
        "n_target_items",
        "n_rules",
        "antecedents",
        "consequents",
        "_ant_operand",
        "_ant_sizes",
        "_cons_operand",
    )

    def __init__(
        self,
        target: Side,
        n_source_items: int,
        n_target_items: int,
        rules: Iterable[TranslationRule],
    ) -> None:
        self.target = target
        self.n_source_items = int(n_source_items)
        self.n_target_items = int(n_target_items)
        ant_masks = []
        cons_masks = []
        for rule in rules:
            if not rule.applies_towards(target):
                continue
            antecedent = tuple(rule.antecedent(target))
            if not antecedent:
                warnings.warn(
                    f"skipping rule {rule!r}: empty antecedent towards "
                    f"{target} would fire on every transaction",
                    stacklevel=2,
                )
                continue
            ant_mask = np.zeros(self.n_source_items, dtype=bool)
            ant_mask[list(antecedent)] = True
            cons_mask = np.zeros(self.n_target_items, dtype=bool)
            cons_mask[list(rule.consequent(target))] = True
            ant_masks.append(ant_mask)
            cons_masks.append(cons_mask)
        self.n_rules = len(ant_masks)
        if self.n_rules:
            ant_bool = np.array(ant_masks)
            cons_bool = np.array(cons_masks)
        else:
            ant_bool = np.zeros((0, self.n_source_items), dtype=bool)
            cons_bool = np.zeros((0, self.n_target_items), dtype=bool)
        #: Packed antecedent itemsets, one row per compiled rule.
        self.antecedents = BitMatrix.from_bool_rows(ant_bool)
        #: Packed consequent itemsets, one row per compiled rule.
        self.consequents = BitMatrix.from_bool_rows(cons_bool)
        # BLAS operands: 0/1 float32 forms of the packed matrices.
        self._ant_operand = np.ascontiguousarray(ant_bool.T, dtype=np.float32)
        self._ant_sizes = self._ant_operand.sum(axis=0)
        self._cons_operand = np.ascontiguousarray(cons_bool, dtype=np.float32)

    # ------------------------------------------------------------------
    @classmethod
    def from_table(
        cls,
        table: TranslationTable | Iterable[TranslationRule],
        target: Side,
        n_source_items: int,
        n_target_items: int,
    ) -> "CompiledPredictor":
        """Compile ``table`` for predicting ``target`` from the other view."""
        return cls(target, n_source_items, n_target_items, table)

    # ------------------------------------------------------------------
    def _validated(self, source_matrix: np.ndarray) -> np.ndarray:
        source_matrix = np.asarray(source_matrix, dtype=bool)
        if source_matrix.ndim != 2 or source_matrix.shape[1] != self.n_source_items:
            raise ValueError(
                f"source matrix must be (n, {self.n_source_items}), "
                f"got shape {source_matrix.shape}"
            )
        return source_matrix

    def matches(
        self, source_matrix: np.ndarray, strategy: str = "auto"
    ) -> np.ndarray:
        """``(n_rows, n_rules)`` Boolean matrix of which rules fire where.

        Rule ``r`` fires on row ``t`` iff its antecedent is a subset of
        the transaction — computed either as an exact float32 count
        (``"blas"``) or as ``row & ant == ant`` on the packed words
        (``"packed"``); ``"auto"`` picks BLAS.
        """
        source_matrix = self._validated(source_matrix)
        if strategy in ("auto", "blas"):
            counts = source_matrix.astype(np.float32) @ self._ant_operand
            return counts == self._ant_sizes
        if strategy != "packed":
            raise ValueError(f"unknown strategy {strategy!r}")
        rows = BitMatrix.from_bool_rows(source_matrix).words
        ant = self.antecedents.words
        fired = np.empty((rows.shape[0], self.n_rules), dtype=bool)
        for start in range(0, rows.shape[0], _CHUNK_ROWS):
            chunk = rows[start : start + _CHUNK_ROWS]
            conjunction = chunk[:, None, :] & ant[None, :, :]
            fired[start : start + _CHUNK_ROWS] = (
                conjunction == ant[None, :, :]
            ).all(axis=2)
        return fired

    def predict(
        self, source_matrix: np.ndarray, strategy: str = "auto"
    ) -> np.ndarray:
        """Predict the target view for a batch of source-view rows.

        Returns a ``(n_rows, n_target_items)`` Boolean matrix: the union
        of the consequents of every firing rule, exactly as the per-rule
        loop in :func:`repro.core.predict.predict_view` produces.
        """
        source_matrix = self._validated(source_matrix)
        fired = self.matches(source_matrix, strategy=strategy)
        if strategy in ("auto", "blas"):
            emitted = fired.astype(np.float32) @ self._cons_operand
            return emitted > 0
        n_rows = fired.shape[0]
        cons = self.consequents.words
        out_words = np.zeros((n_rows, cons.shape[1]), dtype=np.uint64)
        for start in range(0, n_rows, _CHUNK_ROWS):
            chunk = fired[start : start + _CHUNK_ROWS]
            if not chunk.any():
                continue
            selected = np.where(
                chunk[:, :, None], cons[None, :, :], np.uint64(0)
            )
            out_words[start : start + _CHUNK_ROWS] = np.bitwise_or.reduce(
                selected, axis=1
            )
        if self.n_target_items == 0:
            return np.zeros((n_rows, 0), dtype=bool)
        bits = np.unpackbits(
            np.ascontiguousarray(out_words).view(np.uint8),
            axis=1,
            bitorder="little",
        )
        return bits[:, : self.n_target_items].astype(bool)

    def predict_row(
        self, source_row: np.ndarray, strategy: str = "auto"
    ) -> np.ndarray:
        """Predict one source-view row; returns a 1-D Boolean array."""
        row = np.asarray(source_row, dtype=bool)
        return self.predict(row[None, :], strategy=strategy)[0]

    # ------------------------------------------------------------------
    def rule_masks(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """Unpacked (antecedent, consequent) Boolean masks of one rule."""
        return (
            unpack_mask(self.antecedents.row(index), self.n_source_items),
            unpack_mask(self.consequents.row(index), self.n_target_items),
        )

    def __repr__(self) -> str:
        return (
            f"CompiledPredictor(target={self.target}, rules={self.n_rules}, "
            f"{self.n_source_items}->{self.n_target_items} items)"
        )
