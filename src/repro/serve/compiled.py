"""Compiled translation-table predictor.

The reference :func:`repro.core.predict.predict_view` walks the table
rule by rule in Python — fine for a handful of held-out evaluations,
hopeless for a prediction service that must answer batches of requests.
This module *compiles* a :class:`~repro.core.table.TranslationTable`
for one prediction direction into two packed-bitset matrices (reusing
:mod:`repro.core.bitset`):

* an **antecedent matrix** — row ``r`` is rule ``r``'s antecedent
  itemset packed over the source vocabulary — and
* a **consequent matrix** — row ``r`` is rule ``r``'s consequent
  itemset packed over the target vocabulary.

Prediction is then a handful of matrix ops instead of a per-rule loop:
rule ``r`` fires on transaction ``t`` iff the antecedent is a subset of
the transaction, and ``t``'s predicted target view is the union of the
consequents of its firing rules.  Two execution strategies implement
that contract over the same compiled matrices:

``"blas"`` (default)
    Express the subset test as an exact integer count — rule ``r``
    fires iff ``|t & ant_r| == |ant_r|`` — and the union as a count as
    well — item ``j`` is predicted iff some firing rule emits it.  Both
    are ``float32`` matrix products of 0/1 operands derived from the
    packed matrices at compile time; every value involved is a small
    integer (bounded by the vocabulary/rule count, far below the 2**24
    float32 integer limit), so the results are **exact**, not
    approximate.  This rides BLAS and dominates the micro-batch serving
    regime (1..512 rows per call, see ``BENCH_serve.json``).

``"packed"``
    Evaluate the same subset test directly on the packed words
    (``row & ant == ant``) and the union as a weighted OR of consequent
    words.  Touches 64x less memory per item than the dense paths — the
    right tool when vocabularies are wide and batches enormous — and
    doubles as the strategy-independent reference.  The packed word ops
    dispatch through the :mod:`repro.core.bitset` backend layer
    (``backend="numpy"|"native"|"auto"``): with the native C kernel the
    whole bulk path collapses into one fused subset-test +
    consequent-union pass (:func:`repro.core.bitset.match_union_rows`)
    that never materialises the fired matrix.

The ``"blas"`` exactness contract holds while every count involved stays
at or below ``2**24`` (the largest integer float32 represents exactly).
Compilation guards this: a predictor whose source vocabulary or rule
count could exceed the bound warns once and routes ``"auto"`` to
``"packed"``; requesting ``"blas"`` explicitly on such a predictor
raises instead of silently returning approximate results.

``"auto"`` otherwise picks BLAS — except on a native-backed predictor
where the fused packed path is the measured winner: wide compiled
models (``n_rules x n_ant_words`` past a threshold, 8-19x faster at
every batch size) and bulk-sized batches on any model.  The dispatch is
purely a throughput decision; all strategies are bit-identical.

Outputs of both strategies are **bit-identical** to the per-rule loop:
all three compute the same subset test and the same consequent union,
only the evaluation order and arithmetic carrier differ.  The
equivalence is enforced by ``tests/test_serve.py`` on synthetic and
``car``-derived tables and re-checked by ``benchmarks/bench_serve.py``
on every benchmark run.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable

import numpy as np

from repro.core.bitset import (
    BitMatrix,
    match_union_rows,
    or_union_rows,
    popcount_rows,
    resolve_backend,
    subset_match_rows,
    unpack_mask,
)
from repro.core.rules import TranslationRule
from repro.core.table import TranslationTable
from repro.data.dataset import Side

__all__ = ["CompiledPredictor"]

#: Largest integer a float32 represents exactly; past it the blas
#: strategy's "exact float32" contract silently breaks.
_FLOAT32_EXACT_MAX = 2**24

#: ``strategy="auto"`` dispatch heuristic for native-backed predictors:
#: the fused packed path beats BLAS whenever the compiled model is wide
#: (``n_rules * n_ant_words`` at or above this — measured 8-19x there at
#: every batch size) ...
_NATIVE_PACKED_MIN_RULE_WORDS = 2048
#: ... or the batch is bulk-sized (measured parity-or-better from here
#: up even on narrow models).
_NATIVE_PACKED_MIN_ROWS = 256


def _unpack_rows(matrix: BitMatrix) -> np.ndarray:
    """Boolean ``(n_items, n_bits)`` form of a packed matrix's rows."""
    if matrix.n_items == 0 or matrix.n_bits == 0:
        return np.zeros((matrix.n_items, matrix.n_bits), dtype=bool)
    bits = np.unpackbits(
        np.ascontiguousarray(matrix.words).view(np.uint8),
        axis=1,
        bitorder="little",
    )
    return bits[:, : matrix.n_bits].astype(bool)


class CompiledPredictor:
    """A translation table compiled for fast batched one-way prediction.

    Instances are immutable and safe to share across asyncio tasks and
    threads (all state is read-only numpy arrays), which is what the
    prediction server's micro-batcher relies on.

    Args:
        target: The view being predicted (rules firing the other way
            are excluded at compile time).
        n_source_items: Width of incoming source-view matrices.
        n_target_items: Width of the predicted target-view matrices.
        rules: The rules to compile; only those firing towards
            ``target`` are kept, and rules with an empty antecedent are
            skipped with a warning (they would fire on every row).
        backend: Word-op backend of the ``packed`` strategy —
            ``"native"`` (fused C kernel), ``"numpy"``, or ``"auto"``
            (native when a C toolchain is available; falls back
            silently).  Both are bit-identical.

    Example::

        >>> from repro import Side, TranslationRule, TranslationTable
        >>> from repro.serve import CompiledPredictor
        >>> table = TranslationTable([TranslationRule((0,), (1,), "->")])
        >>> compiled = CompiledPredictor.from_table(table, Side.RIGHT, 2, 2)
        >>> compiled.predict([[True, False]]).tolist()
        [[False, True]]
    """

    __slots__ = (
        "target",
        "n_source_items",
        "n_target_items",
        "n_rules",
        "antecedents",
        "consequents",
        "backend",
        "blas_exact",
        "_ant_operand",
        "_ant_sizes",
        "_cons_operand",
    )

    def __init__(
        self,
        target: Side,
        n_source_items: int,
        n_target_items: int,
        rules: Iterable[TranslationRule],
        backend: str = "auto",
    ) -> None:
        self.target = target
        self.n_source_items = int(n_source_items)
        self.n_target_items = int(n_target_items)
        self.backend = resolve_backend(backend)
        ant_masks = []
        cons_masks = []
        for rule in rules:
            if not rule.applies_towards(target):
                continue
            antecedent = tuple(rule.antecedent(target))
            if not antecedent:
                warnings.warn(
                    f"skipping rule {rule!r}: empty antecedent towards "
                    f"{target} would fire on every transaction",
                    stacklevel=2,
                )
                continue
            ant_mask = np.zeros(self.n_source_items, dtype=bool)
            ant_mask[list(antecedent)] = True
            cons_mask = np.zeros(self.n_target_items, dtype=bool)
            cons_mask[list(rule.consequent(target))] = True
            ant_masks.append(ant_mask)
            cons_masks.append(cons_mask)
        self.n_rules = len(ant_masks)
        if self.n_rules:
            ant_bool = np.array(ant_masks)
            cons_bool = np.array(cons_masks)
        else:
            ant_bool = np.zeros((0, self.n_source_items), dtype=bool)
            cons_bool = np.zeros((0, self.n_target_items), dtype=bool)
        #: Packed antecedent itemsets, one row per compiled rule.
        self.antecedents = BitMatrix.from_bool_rows(ant_bool)
        #: Packed consequent itemsets, one row per compiled rule.
        self.consequents = BitMatrix.from_bool_rows(cons_bool)
        # BLAS operands (0/1 float32 forms of the packed matrices) are
        # derived lazily on first blas use — see _blas_operands — so
        # building a predictor, in particular a zero-copy mapped one,
        # never pays for a strategy it may not run.
        self._ant_operand = None
        self._ant_sizes = None
        self._cons_operand = None
        self._check_blas_exact()

    def _check_blas_exact(self) -> None:
        # Compile-time guard on the blas strategy's exactness contract:
        # every count it compares is bounded by the source vocabulary
        # (match counts) or the rule count (emission counts), so both
        # must stay within float32's exact-integer range.
        self.blas_exact = (
            self.n_source_items <= _FLOAT32_EXACT_MAX
            and self.n_rules <= _FLOAT32_EXACT_MAX
        )
        if not self.blas_exact:
            warnings.warn(
                f"compiled predictor has n_source_items={self.n_source_items}, "
                f"n_rules={self.n_rules}; counts past {_FLOAT32_EXACT_MAX} "
                f"(2**24) are not exact in float32, so strategy='auto' will "
                f"dispatch to 'packed' instead of 'blas'",
                stacklevel=3,
            )

    def _blas_operands(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Materialise (once) the float32 BLAS operands from the packed matrices.

        Unpacking reverses the exact byte layout the packing produced, so
        the operands are identical to the ones the eager constructor used
        to build.  Safe under the micro-batcher's worker threads: the
        computation is idempotent and the final attribute stores are
        atomic, so a rare double-materialisation costs time, not
        correctness.
        """
        if self._ant_operand is None:
            ant_bool = _unpack_rows(self.antecedents)
            cons_bool = _unpack_rows(self.consequents)
            sizes = popcount_rows(self.antecedents.words).astype(np.float32)
            self._cons_operand = np.ascontiguousarray(cons_bool, dtype=np.float32)
            self._ant_sizes = sizes
            self._ant_operand = np.ascontiguousarray(ant_bool.T, dtype=np.float32)
        return self._ant_operand, self._ant_sizes, self._cons_operand

    # ------------------------------------------------------------------
    @classmethod
    def from_mapped(
        cls,
        mapped,
        target: Side,
        backend: str = "auto",
    ) -> "CompiledPredictor":
        """Construct a predictor over a mapped binary artifact, zero-copy.

        ``mapped`` is a :class:`repro.serve.binfmt.MappedArtifact`; the
        antecedent/consequent matrices become numpy views straight into
        its ``mmap`` buffer — no unpacking, no repacking, no allocation
        proportional to the model — so N server processes mapping the
        same published sidecar share one page-cache copy of the compiled
        tables.  The packed strategy runs directly on the views; the
        blas operands, if that strategy is ever selected, materialise
        lazily (a private copy, as they are a different carrier).

        Bit-identical to compiling the JSON artifact's table with
        :meth:`from_table`: the sidecar stores exactly the matrices that
        compilation produces (enforced by ``tests/test_binfmt.py``).
        """
        sections = mapped.direction_sections(target)
        obj = cls.__new__(cls)
        obj.target = target
        if target is Side.RIGHT:
            obj.n_source_items = mapped.n_left
            obj.n_target_items = mapped.n_right
        else:
            obj.n_source_items = mapped.n_right
            obj.n_target_items = mapped.n_left
        obj.backend = resolve_backend(backend)
        ant_words, cons_words = sections
        obj.n_rules = int(ant_words.shape[0])
        # BitMatrix leaves an already-contiguous uint64 array untouched,
        # so these wrap the mmap views without copying.
        obj.antecedents = BitMatrix(ant_words, obj.n_source_items)
        obj.consequents = BitMatrix(cons_words, obj.n_target_items)
        obj._ant_operand = None
        obj._ant_sizes = None
        obj._cons_operand = None
        obj._check_blas_exact()
        return obj

    @classmethod
    def from_table(
        cls,
        table: TranslationTable | Iterable[TranslationRule],
        target: Side,
        n_source_items: int,
        n_target_items: int,
        backend: str = "auto",
    ) -> "CompiledPredictor":
        """Compile ``table`` for predicting ``target`` from the other view."""
        return cls(target, n_source_items, n_target_items, table, backend=backend)

    # ------------------------------------------------------------------
    def _resolve_strategy(self, strategy: str, n_rows: int = 0) -> str:
        """Normalise a strategy spec, enforcing the blas exactness guard.

        ``"auto"`` picks BLAS while its exactness guard holds — except on
        a native-backed predictor where the fused packed path is the
        measured winner: wide compiled models (many rules x many
        antecedent words) at any batch size, and bulk batches on any
        model.  Every strategy returns bit-identical predictions, so the
        dispatch is purely a throughput decision.
        """
        if strategy == "auto":
            if not self.blas_exact:
                return "packed"
            if self.backend == "native" and (
                self.n_rules * self.antecedents.n_words
                >= _NATIVE_PACKED_MIN_RULE_WORDS
                or n_rows >= _NATIVE_PACKED_MIN_ROWS
            ):
                return "packed"
            return "blas"
        if strategy == "blas" and not self.blas_exact:
            raise ValueError(
                f"strategy 'blas' is not exact for this predictor "
                f"(n_source_items={self.n_source_items}, "
                f"n_rules={self.n_rules} exceed the float32 exact-integer "
                f"bound {_FLOAT32_EXACT_MAX}); use 'packed' or 'auto'"
            )
        if strategy not in ("blas", "packed"):
            raise ValueError(f"unknown strategy {strategy!r}")
        return strategy

    def _validated(self, source_matrix: np.ndarray) -> np.ndarray:
        source_matrix = np.asarray(source_matrix, dtype=bool)
        if source_matrix.ndim != 2 or source_matrix.shape[1] != self.n_source_items:
            raise ValueError(
                f"source matrix must be (n, {self.n_source_items}), "
                f"got shape {source_matrix.shape}"
            )
        return source_matrix

    def matches(
        self, source_matrix: np.ndarray, strategy: str = "auto"
    ) -> np.ndarray:
        """``(n_rows, n_rules)`` Boolean matrix of which rules fire where.

        Rule ``r`` fires on row ``t`` iff its antecedent is a subset of
        the transaction — computed either as an exact float32 count
        (``"blas"``) or as ``row & ant == ant`` on the packed words
        (``"packed"``, dispatched through the compiled ``backend``);
        see :meth:`_resolve_strategy` for how ``"auto"`` dispatches.
        """
        source_matrix = self._validated(source_matrix)
        strategy = self._resolve_strategy(strategy, source_matrix.shape[0])
        if strategy == "blas":
            ant_operand, ant_sizes, __ = self._blas_operands()
            counts = source_matrix.astype(np.float32) @ ant_operand
            return counts == ant_sizes
        rows = BitMatrix.from_bool_rows(source_matrix).words
        return subset_match_rows(
            rows, self.antecedents.words, backend=self.backend
        )

    def predict(
        self, source_matrix: np.ndarray, strategy: str = "auto"
    ) -> np.ndarray:
        """Predict the target view for a batch of source-view rows.

        Returns a ``(n_rows, n_target_items)`` Boolean matrix: the union
        of the consequents of every firing rule, exactly as the per-rule
        loop in :func:`repro.core.predict.predict_view` produces.
        """
        source_matrix = self._validated(source_matrix)
        strategy = self._resolve_strategy(strategy, source_matrix.shape[0])
        if strategy == "blas":
            fired = self.matches(source_matrix, strategy="blas")
            __, __, cons_operand = self._blas_operands()
            emitted = fired.astype(np.float32) @ cons_operand
            return emitted > 0
        n_rows = source_matrix.shape[0]
        if self.backend == "native":
            # One fused pass: subset test + consequent union per row,
            # no (rows, rules) fired matrix in between.
            rows = BitMatrix.from_bool_rows(source_matrix).words
            out_words = match_union_rows(
                rows,
                self.antecedents.words,
                self.consequents.words,
                backend="native",
            )
        else:
            fired = self.matches(source_matrix, strategy="packed")
            out_words = or_union_rows(
                fired, self.consequents.words, backend="numpy"
            )
        if self.n_target_items == 0:
            return np.zeros((n_rows, 0), dtype=bool)
        bits = np.unpackbits(
            np.ascontiguousarray(out_words).view(np.uint8),
            axis=1,
            bitorder="little",
        )
        return bits[:, : self.n_target_items].astype(bool)

    def predict_row(
        self, source_row: np.ndarray, strategy: str = "auto"
    ) -> np.ndarray:
        """Predict one source-view row; returns a 1-D Boolean array."""
        row = np.asarray(source_row, dtype=bool)
        return self.predict(row[None, :], strategy=strategy)[0]

    # ------------------------------------------------------------------
    def rule_masks(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """Unpacked (antecedent, consequent) Boolean masks of one rule."""
        return (
            unpack_mask(self.antecedents.row(index), self.n_source_items),
            unpack_mask(self.consequents.row(index), self.n_target_items),
        )

    def __repr__(self) -> str:
        return (
            f"CompiledPredictor(target={self.target}, rules={self.n_rules}, "
            f"{self.n_source_items}->{self.n_target_items} items)"
        )
