"""Model serving: compiled predictors, artifacts, registry, server.

The paper's TRANSLATE application (Section 2.3) turns a fitted
translation table into a cross-view *predictor*; this package turns
that predictor into a deployable service, in four layers:

* :mod:`~repro.serve.compiled` — :class:`CompiledPredictor` compiles a
  table into packed-bitset antecedent/consequent matrices so batched
  prediction is a handful of vectorised word ops, bit-identical to the
  per-rule reference loop;
* :mod:`~repro.serve.artifact` / :mod:`~repro.serve.registry` —
  schema-versioned, content-hashed JSON model artifacts organised into
  named models with immutable versions and a ``latest`` pointer;
  :mod:`~repro.serve.binfmt` adds the binary ``compiled.bin`` sidecar
  written at publish time — a hash-verified mmap layout that workers
  map zero-copy, sharing one page-cache copy of each model;
* :mod:`~repro.serve.server` — an asyncio HTTP service with a
  micro-batcher that coalesces concurrent requests into single
  compiled-predictor calls, an LRU response cache and per-model stats;
* :mod:`~repro.serve.router` — the horizontal front tier:
  ``serve --workers N`` puts N worker replicas behind one address with
  least-loaded fan-out, breaker-driven ejection/re-admission and
  drain-and-swap rollouts keyed off the registry's ``latest`` pointer.

CLI: ``repro-translator publish | serve | predict-batch``.  See
``docs/serving.md`` for the artifact format and the endpoint/knob
reference, ``docs/scaling.md`` for the binary layout and router
topology, and ``benchmarks/bench_serve.py`` / ``bench_cluster.py`` for
throughput numbers (``BENCH_serve.json`` / ``BENCH_cluster.json``).
"""

from repro.serve.artifact import (
    ARTIFACT_SCHEMA_VERSION,
    ArtifactCorruptError,
    ArtifactError,
    ModelArtifact,
    load_artifact,
    save_artifact,
)
from repro.serve.binfmt import (
    SIDECAR_NAME,
    MappedArtifact,
    map_artifact,
    verify_sidecar,
    write_compiled,
)
from repro.serve.compiled import CompiledPredictor
from repro.serve.registry import ModelRegistry
from repro.serve.router import (
    Replica,
    ReplicaRouter,
    local_replica_factory,
    process_replica_factory,
)
from repro.serve.server import (
    LRUCache,
    MicroBatcher,
    ModelStats,
    PredictionServer,
    PredictionService,
)

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "ArtifactCorruptError",
    "ArtifactError",
    "CompiledPredictor",
    "LRUCache",
    "MappedArtifact",
    "MicroBatcher",
    "ModelArtifact",
    "ModelRegistry",
    "ModelStats",
    "PredictionServer",
    "PredictionService",
    "Replica",
    "ReplicaRouter",
    "SIDECAR_NAME",
    "load_artifact",
    "local_replica_factory",
    "map_artifact",
    "process_replica_factory",
    "save_artifact",
    "verify_sidecar",
    "write_compiled",
]
