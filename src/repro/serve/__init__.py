"""Model serving: compiled predictors, artifacts, registry, server.

The paper's TRANSLATE application (Section 2.3) turns a fitted
translation table into a cross-view *predictor*; this package turns
that predictor into a deployable service, in three layers:

* :mod:`~repro.serve.compiled` — :class:`CompiledPredictor` compiles a
  table into packed-bitset antecedent/consequent matrices so batched
  prediction is a handful of vectorised word ops, bit-identical to the
  per-rule reference loop;
* :mod:`~repro.serve.artifact` / :mod:`~repro.serve.registry` —
  schema-versioned, content-hashed JSON model artifacts organised into
  named models with immutable versions and a ``latest`` pointer;
* :mod:`~repro.serve.server` — an asyncio HTTP service with a
  micro-batcher that coalesces concurrent requests into single
  compiled-predictor calls, an LRU response cache and per-model stats.

CLI: ``repro-translator publish | serve | predict-batch``.  See
``docs/serving.md`` for the artifact format and the endpoint/knob
reference, and ``benchmarks/bench_serve.py`` for throughput numbers
(``BENCH_serve.json``).
"""

from repro.serve.artifact import (
    ARTIFACT_SCHEMA_VERSION,
    ArtifactCorruptError,
    ArtifactError,
    ModelArtifact,
    load_artifact,
    save_artifact,
)
from repro.serve.compiled import CompiledPredictor
from repro.serve.registry import ModelRegistry
from repro.serve.server import (
    LRUCache,
    MicroBatcher,
    ModelStats,
    PredictionServer,
    PredictionService,
)

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "ArtifactCorruptError",
    "ArtifactError",
    "CompiledPredictor",
    "LRUCache",
    "MicroBatcher",
    "ModelArtifact",
    "ModelRegistry",
    "ModelStats",
    "PredictionServer",
    "PredictionService",
    "load_artifact",
    "save_artifact",
]
